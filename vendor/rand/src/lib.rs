//! Offline vendored mini-`rand`.
//!
//! The build environment has no network access and no crates cache, so the
//! real `rand` crate cannot be fetched. This crate implements the small
//! API subset the workspace actually uses — `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_bool`, `Rng::gen_range` over numeric ranges — on
//! top of the public-domain xoshiro256++ generator seeded via splitmix64.
//!
//! Streams differ from upstream `rand`, but every consumer in this
//! workspace only relies on *seeded determinism*, never on matching
//! upstream's exact draws.

pub mod rngs {
    /// Deterministic 256-bit generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // splitmix64 expansion of the 64-bit seed into 256 bits of state.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro must not start from the all-zero state.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        StdRng { s }
    }
}

#[inline]
fn unit_f64(v: u64) -> f64 {
    // Uniform in [0, 1) with 53 bits of precision.
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn from_u64(v: u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }
}
impl Standard for u32 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        (v >> 32) as u32
    }
}
impl Standard for bool {
    #[inline]
    fn from_u64(v: u64) -> Self {
        v & 1 == 1
    }
}
impl Standard for f64 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        unit_f64(v)
    }
}
impl Standard for f32 {
    #[inline]
    fn from_u64(v: u64) -> Self {
        (v >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range `Rng::gen_range` can sample from (subset of `SampleRange`).
///
/// The element type is an associated type (not a second generic parameter)
/// so `{float}` / `{integer}` literal fallback still works at call sites
/// like `gen_range(-0.05..0.05)`.
pub trait SampleRange {
    type Output;
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_with(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = next() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_with(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = next() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_with(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(next()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_with(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let u = unit_f64(next()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value of a `Standard`-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample_with(&mut next)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(1.0f64..50.0);
            assert!((1.0..50.0).contains(&v));
            let i = rng.gen_range(0u32..3);
            assert!(i < 3);
            let k = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }
}
