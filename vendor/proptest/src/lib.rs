//! Offline vendored mini-`proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This crate reimplements the subset the
//! workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {...} }`
//! * range strategies (`0u64..1000`, `1usize..=4`, `0.0f64..60.0`),
//!   tuples of strategies, `Just`, `.prop_map`, `prop_oneof!`,
//!   `prop::bool::ANY`, `prop::collection::vec`, `prop::sample::select`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test's module path and the attempt index, so
//! every run explores the same inputs (upstream randomizes and persists
//! regressions); there is no shrinking — the failure report prints the
//! attempt index and the generated arguments instead.

use std::fmt;

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256++, seeded by splitmix64 — independent from
// the vendored `rand` so the two crates stay decoupled)
// ---------------------------------------------------------------------------

/// Per-case deterministic random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Derives the RNG for one test case from the test identity and the
    /// attempt number. FNV-1a over the name keeps distinct tests on
    /// distinct streams.
    pub fn for_case(test_name: &str, attempt: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h ^ (u64::from(attempt) << 32 | u64::from(attempt)))
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this input out; the runner draws a new one.
    Reject(String),
    /// A `prop_assert*!` failed; the runner panics with this message.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration (`cases` is the number of *accepted* inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default.
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe for `generate`, so `BoxedStrategy` is just a boxed trait
/// object; the combinators carry `Self: Sized` bounds.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, whence }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// Ranges --------------------------------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (end - start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

// Tuples --------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// Namespaced helpers (the `prop::` tree) ------------------------------------

pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (s, e) = (*self.start(), *self.end());
            s + rng.below((e - s + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniform clones from a fixed pool.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        pool: Vec<T>,
    }

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(pool: Vec<T>) -> Select<T> {
        assert!(!pool.is_empty(), "select() needs a non-empty pool");
        Select { pool }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.pool.len() as u64) as usize;
            self.pool[idx].clone()
        }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($a), stringify!($b), left, right
                        ),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($a), stringify!($b), left, right,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($a), stringify!($b), left
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test harness macro. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a plain `#[test]` that runs `cases` accepted inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ::std::default::Default::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases {
                attempt += 1;
                if attempt > max_attempts {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                }
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __case_desc = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&::std::format!("{:?}", &$arg));
                        s.push_str("; ");
                    )+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest {} failed at attempt {} with {}\n{}",
                        stringify!($name), attempt, __case_desc, msg
                    ),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_case("x", 1);
        let mut b = crate::TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.0f64..2.5, k in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.5).contains(&y));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
        }

        #[test]
        fn vec_and_select(xs in prop::collection::vec(0u32..10, 1..8),
                          pick in prop::sample::select(vec![1u8, 2, 3])) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_reports_attempt_and_args() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            fn always_fails(x in 0u32..5) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
