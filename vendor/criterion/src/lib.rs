//! Offline vendored mini-`criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the `criterion 0.5`
//! API subset the workspace's benches use. No statistics, plots, or
//! baselines — each benchmark runs `sample_size` timed iterations after a
//! single warm-up and reports mean/min per-iteration time.
//!
//! In test mode (`cargo test` passes `--test` to `harness = false` bench
//! binaries) every benchmark body executes exactly once so benches are
//! smoke-tested without burning wall-clock time.

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier (`BenchmarkId::new("group", param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }

    fn label(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: String::new() }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Collected per-iteration durations for the report.
    timings: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let _ = routine();
            return;
        }
        // One warm-up iteration, then timed samples.
        let _ = routine();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.timings.push(start.elapsed());
            drop(out);
        }
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        if self.test_mode {
            let _ = routine(setup());
            return;
        }
        let _ = routine(setup());
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.timings.push(start.elapsed());
            drop(out);
        }
    }
}

/// Batch sizing hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label());
        let test_mode = self.criterion.test_mode;
        let mut bencher =
            Bencher { test_mode, sample_size: self.sample_size, timings: Vec::new() };
        f(&mut bencher);
        if let Some(r) = report(&label, test_mode, &bencher.timings) {
            self.criterion.records.push(r);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Throughput hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// One finished benchmark's timings, kept by the [`Criterion`] object so
/// drivers (e.g. `gts bench`) can serialize results instead of scraping
/// stdout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// `group/function/parameter` label.
    pub label: String,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: u128,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Timed iterations taken.
    pub samples: usize,
}

fn report(label: &str, test_mode: bool, timings: &[Duration]) -> Option<BenchRecord> {
    if test_mode {
        println!("bench {label}: ok (test mode, 1 iteration)");
        return None;
    }
    if timings.is_empty() {
        println!("bench {label}: no samples");
        return None;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label}: mean {:?}, min {:?} over {} iterations",
        mean,
        min,
        timings.len()
    );
    Some(BenchRecord {
        label: label.to_string(),
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        samples: timings.len(),
    })
}

/// The harness entry object handed to each bench function.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Anything with `--test` wins.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, default_sample_size: 10, records: Vec::new() }
    }
}

impl Criterion {
    /// Overrides the default sample size for subsequently created
    /// benchmarks/groups (groups may still override it themselves).
    pub fn with_sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Drains the records collected so far (empty in test mode).
    pub fn take_records(&mut self) -> Vec<BenchRecord> {
        std::mem::take(&mut self.records)
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.to_string(), criterion: self, sample_size }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let test_mode = self.test_mode;
        let mut bencher = Bencher {
            test_mode,
            sample_size: self.default_sample_size,
            timings: Vec::new(),
        };
        f(&mut bencher);
        if let Some(r) = report(name, test_mode, &bencher.timings) {
            self.records.push(r);
        }
        self
    }
}

/// Re-export for code written against criterion's `black_box` (std's hint
/// has identical semantics here).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
