//! Offline vendored mini-`parking_lot`.
//!
//! Thin wrappers over `std::sync` that expose parking_lot's non-poisoning
//! API (`lock()` / `read()` / `write()` return guards directly). A poisoned
//! std lock means a holder panicked; matching parking_lot, we simply keep
//! going with the inner data.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Mutex with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
