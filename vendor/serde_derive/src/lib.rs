//! Offline vendored mini-`serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-tree traits. Implemented with hand-rolled `proc_macro` token
//! walking (no `syn`/`quote` — they cannot be fetched offline either).
//!
//! Supported shapes: structs with named fields, tuple structs (newtype or
//! `#[serde(transparent)]`), enums with unit / newtype / struct variants
//! (externally tagged, like real serde). Supported attributes:
//! `transparent`, `rename_all`, `default`, `skip_serializing_if`, `rename`.
//! Generic types are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

#[derive(Default, Debug, Clone)]
struct SerdeAttrs {
    transparent: bool,
    rename_all: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
    rename: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String, // positional fields use their index as name
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    attrs: SerdeAttrs,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: SerdeAttrs,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let attrs = parse_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            _ => Body::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };

    Item { name, attrs, body }
}

/// Consumes leading `#[...]` groups, returning the merged serde attributes.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        parse_one_attr(g.stream(), &mut out);
        *i += 2;
    }
    out
}

/// Merges `serde(...)` arguments from one `#[...]` body into `out`.
fn parse_one_attr(stream: TokenStream, out: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comments, cfg, derive, ...
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let key = match &args[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        // `kebab-case`-style idents arrive as ident/punct/ident triples only
        // inside *string literals*, so plain idents are enough for keys.
        let mut value: Option<String> = None;
        if matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                value = Some(unquote(&lit.to_string()));
                j += 2;
            }
        }
        match key.as_str() {
            "transparent" => out.transparent = true,
            "default" => out.default = true,
            "rename_all" => out.rename_all = value.clone(),
            "skip_serializing_if" => out.skip_serializing_if = value.clone(),
            "rename" => out.rename = value.clone(),
            // Unknown keys (deny_unknown_fields, ...) are accepted and
            // ignored; this stub only implements what the workspace uses.
            _ => {}
        }
        j += 1;
        // Skip a trailing comma.
        if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                *i += 1;
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// `a: T, pub b: U, ...` — names + per-field attrs; types are skipped
/// (generated code recovers them through inference).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        // Skip `:` and the type, up to the next top-level comma. Generics in
        // the type (`Vec<f64>`) never contain top-level commas because `<...>`
        // comes through as punct sequences — so track angle depth.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// `(T, U)` — positional fields with optional attrs.
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut index = 0usize;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        let mut saw_any = false;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => saw_any = true,
            }
            i += 1;
        }
        if saw_any {
            fields.push(Field { name: index.to_string(), attrs });
            index += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present, then the comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, attrs, fields });
    }
    variants
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// serde's `rename_all` word-splitting: break before every uppercase letter,
/// then re-join in the requested case.
fn apply_rename(name: &str, rule: Option<&str>) -> String {
    let Some(rule) = rule else { return name.to_string() };
    match rule {
        "lowercase" => name.to_lowercase(),
        "UPPERCASE" => name.to_uppercase(),
        "snake_case" | "kebab-case" => {
            let sep = if rule == "snake_case" { '_' } else { '-' };
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push(sep);
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        "camelCase" => {
            let mut chars = name.chars();
            match chars.next() {
                Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        }
        other => panic!("serde_derive: unsupported rename_all rule `{other}`"),
    }
}

fn field_key(f: &Field, container: &SerdeAttrs) -> String {
    if let Some(r) = &f.attrs.rename {
        return r.clone();
    }
    apply_rename(&f.name, container.rename_all.as_deref())
}

/// Fields of enum variants: `rename_all` on an enum renames *variants*, not
/// their fields, so only an explicit field `rename` applies.
fn variant_field_key(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

fn variant_key(v: &Variant, container: &SerdeAttrs) -> String {
    if let Some(r) = &v.attrs.rename {
        return r.clone();
    }
    apply_rename(&v.name, container.rename_all.as_deref())
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let key = field_key(f, &item.attrs);
                let push = format!(
                    "obj.push((::std::string::String::from(\"{key}\"), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    s += &format!("if !{pred}(&self.{}) {{ {push} }}\n", f.name);
                } else {
                    s += &push;
                }
            }
            s += "::serde::Value::Object(obj)";
            s
        }
        Body::Struct(Fields::Tuple(fields)) => {
            if fields.len() == 1 {
                // Newtype: transparent by default, matching real serde.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..fields.len())
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
        }
        Body::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(v, &item.attrs);
                match &v.fields {
                    Fields::Unit => {
                        arms += &format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{key}\")),\n",
                            v = v.name
                        );
                    }
                    Fields::Tuple(fs) if fs.len() == 1 => {
                        arms += &format!(
                            "{name}::{v}(x) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{key}\"), ::serde::Serialize::to_value(x))]),\n",
                            v = v.name
                        );
                    }
                    Fields::Tuple(fs) => {
                        let binds: Vec<String> = (0..fs.len()).map(|i| format!("x{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms += &format!(
                            "{name}::{v}({b}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{key}\"), ::serde::Value::Array(::std::vec![{e}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            e = elems.join(", ")
                        );
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut vobj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fs {
                            let fkey = variant_field_key(f);
                            inner += &format!(
                                "vobj.push((::std::string::String::from(\"{fkey}\"), ::serde::Serialize::to_value({})));\n",
                                f.name
                            );
                        }
                        arms += &format!(
                            "{name}::{v} {{ {b} }} => {{ {inner} ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{key}\"), ::serde::Value::Object(vobj))]) }}\n",
                            v = v.name,
                            b = binds.join(", ")
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut s = format!("let obj = ::serde::__private::expect_obj(v, \"{name}\")?;\n");
            s += &format!("::std::result::Result::Ok({name} {{\n");
            for f in fields {
                let key = field_key(f, &item.attrs);
                let missing = if f.attrs.default || item.attrs.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(::serde::__private::missing_field(\"{name}\", \"{key}\"))"
                    )
                };
                s += &format!(
                    "{fname}: match ::serde::__private::get(obj, \"{key}\") {{ ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, ::std::option::Option::None => {missing} }},\n",
                    fname = f.name
                );
            }
            s += "})";
            s
        }
        Body::Struct(Fields::Tuple(fields)) => {
            if fields.len() == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let mut s = format!(
                    "let arr = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                     if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::msg(format!(\"{name}: expected {n} elements, got {{}}\", arr.len()))); }}\n",
                    n = fields.len()
                );
                let elems: Vec<String> = (0..fields.len())
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                    .collect();
                s += &format!("::std::result::Result::Ok({name}({}))", elems.join(", "));
                s
            }
        }
        Body::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            // Externally tagged: unit variants are plain strings, data
            // variants are single-key objects.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let key = variant_key(v, &item.attrs);
                match &v.fields {
                    Fields::Unit => {
                        unit_arms += &format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        );
                    }
                    Fields::Tuple(fs) if fs.len() == 1 => {
                        data_arms += &format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),\n",
                            v = v.name
                        );
                    }
                    Fields::Tuple(fs) => {
                        let mut s = format!(
                            "\"{key}\" => {{ let arr = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", payload))?;\n\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::msg(::std::string::String::from(\"{name}::{v}: wrong tuple arity\"))); }}\n",
                            n = fs.len(),
                            v = v.name
                        );
                        let elems: Vec<String> = (0..fs.len())
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        s += &format!(
                            "::std::result::Result::Ok({name}::{v}({e})) }}\n",
                            v = v.name,
                            e = elems.join(", ")
                        );
                        data_arms += &s;
                    }
                    Fields::Named(fs) => {
                        let mut s = format!(
                            "\"{key}\" => {{ let vobj = ::serde::__private::expect_obj(payload, \"{name}::{v}\")?;\n::std::result::Result::Ok({name}::{v} {{\n",
                            v = v.name
                        );
                        for f in fs {
                            let fkey = variant_field_key(f);
                            let missing = if f.attrs.default {
                                "::std::default::Default::default()".to_string()
                            } else {
                                format!(
                                    "return ::std::result::Result::Err(::serde::__private::missing_field(\"{name}::{v}\", \"{fkey}\"))",
                                    v = v.name
                                )
                            };
                            s += &format!(
                                "{fname}: match ::serde::__private::get(vobj, \"{fkey}\") {{ ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, ::std::option::Option::None => {missing} }},\n",
                                fname = f.name
                            );
                        }
                        s += "}) }\n";
                        data_arms += &s;
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::__private::unknown_variant(\"{name}\", other)),\n}},\n\
                 ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (tag, payload) = (&o[0].0, &o[0].1);\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::__private::unknown_variant(\"{name}\", other)),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}\n"
    )
}
