//! Offline vendored mini-`serde_json`.
//!
//! JSON text printing and parsing over the vendored `serde` value tree.
//! Implements the API subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`Error`], [`Value`].
//!
//! Output conventions match upstream `serde_json`: compact form inserts no
//! whitespace, pretty form indents by two spaces, floats print via Rust's
//! shortest-roundtrip `{}` formatting, and non-finite floats serialize as
//! `null` (upstream errors instead; the only non-finite values this
//! workspace serializes are sentinel infinities that never round-trip).

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is shortest-roundtrip, but prints integral
                // values without a decimal point ("1"); add ".0" so the
                // value reads as a float, matching serde_json.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        let v: u32 = from_str("5").unwrap();
        assert_eq!(v, 5);
        let f: f64 = from_str("2.0").unwrap();
        assert_eq!(f, 2.0);
    }

    #[test]
    fn round_trips_containers() {
        let xs = vec![1u32, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, xs);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn pretty_indents_by_two() {
        let xs = vec![1u32, 2];
        assert_eq!(to_string_pretty(&xs).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn escapes_and_unescapes() {
        let s = "a\"b\\c\nd";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{oops").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
