//! Offline vendored mini-`crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! crossbeam's `Sender`/`Receiver` are `Sync` and the receiver is
//! cloneable (MPMC); the std receiver is neither, so both ends are wrapped
//! in the locks needed to present the same interface. Throughput is not a
//! concern: the workspace drives a handful of scheduler events per second
//! through these channels.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The two std sender flavours behind the unified [`Sender`]: plain
    /// `mpsc::Sender` for [`unbounded`] channels, `mpsc::SyncSender` for
    /// [`bounded`] ones (its `send` blocks while the queue is full, which
    /// is exactly crossbeam's bounded-channel backpressure).
    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Mutex<SenderInner<T>>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value. On a [`bounded`] channel this blocks while the
        /// queue is full (holding the sender lock, so concurrent senders
        /// queue behind the block — fine for single-producer use).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            match &*guard {
                SenderInner::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderInner::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }
    }

    /// Receiving half of an unbounded channel (cloneable; clones share the
    /// queue, each message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Drains everything currently in the queue without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: Arc::new(Mutex::new(SenderInner::Unbounded(tx))) },
            Receiver { inner: Arc::new(Mutex::new(rx)) },
        )
    }

    /// Creates a bounded MPMC channel holding at most `cap` queued
    /// messages; `send` blocks until space frees up, so a producer can
    /// never run further ahead of its consumers than the capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender { inner: Arc::new(Mutex::new(SenderInner::Bounded(tx))) },
            Receiver { inner: Arc::new(Mutex::new(rx)) },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_fires_when_empty() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn disconnect_reported_on_send() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_delivers_in_order_under_backpressure() {
            // Capacity 2 with 100 messages forces the producer to block
            // repeatedly; everything must still arrive exactly once, in
            // order.
            let (tx, rx) = bounded::<u32>(2);
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_send_errors_after_receiver_drops() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
