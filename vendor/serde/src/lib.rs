//! Offline vendored mini-`serde`.
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be fetched. This crate keeps the workspace's source-level API —
//! `use serde::{Serialize, Deserialize}`, `#[derive(Serialize, Deserialize)]`,
//! `#[serde(...)]` attributes — but implements it over a simple JSON-like
//! value tree instead of serde's visitor architecture. `serde_json` (also
//! vendored) prints and parses that tree.
//!
//! Supported attribute surface (everything this workspace uses):
//! container: `transparent`, `rename_all = "lowercase" | "snake_case" |
//! "kebab-case"`; field: `default`, `skip_serializing_if = "path"`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// A JSON-like value tree — the serialization data model.
///
/// Integers keep their own variants so `u64` ids survive round-trips that
/// would lose precision through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if a.len() != N {
            return Err(DeError::msg(format!("expected {N} elements, got {}", a.len())));
        }
        let items: Vec<T> = a.iter().map(T::from_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::msg("array length mismatch"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if a.len() != 2 {
            return Err(DeError::msg(format!("expected 2-tuple, got {} elems", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<K: ToString + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers the derive macro expands to
// ---------------------------------------------------------------------------

/// Internal support for `serde_derive`-generated code. Not a public API.
pub mod __private {
    use super::{DeError, Value};

    /// Field lookup in an object body.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn expect_obj<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        v.as_object()
            .ok_or_else(|| DeError::msg(format!("{ty}: expected object, got {}", v.kind())))
    }

    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError::msg(format!("{ty}: missing field `{field}`"))
    }

    pub fn unknown_variant(ty: &str, got: &str) -> DeError {
        DeError::msg(format!("{ty}: unknown variant `{got}`"))
    }
}
