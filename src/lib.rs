//! Umbrella crate: re-exports the full `gts-core` public API.
//!
//! See `gts_core` for documentation; this package exists to host the
//! workspace-level examples and integration tests.
pub use gts_core::*;
