//! Cloud-scale scheduling: generate a Poisson workload (§5.3), run it
//! through all four policies on a 5-machine cluster and compare — the
//! Fig. 10 experiment as a library consumer would write it.
//!
//! ```text
//! cargo run --example cloud_scheduler [-- <n_jobs> <n_machines> <seed>]
//! ```

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_jobs: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(100);
    let n_machines: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1001);

    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));

    // λ = 10 jobs/minute; Binomial(3, ½) batch classes, Binomial(2, ½)
    // network types — the paper's generator configuration.
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    println!(
        "workload: {n_jobs} jobs over {:.1} min on {n_machines} machines ({} GPUs)\n",
        trace.last().map(|j| j.arrival_s / 60.0).unwrap_or(0.0),
        cluster.n_gpus()
    );

    println!(
        "{:<14} {:>12} {:>12} {:>11} {:>10} {:>14}",
        "policy", "makespan(s)", "mean wait(s)", "mean QoS", "SLO viol.", "decision(µs)"
    );
    for kind in PolicyKind::ALL {
        let res = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(kind),
            trace.clone(),
        );
        println!(
            "{:<14} {:>12.0} {:>12.1} {:>11.3} {:>10} {:>14.1}",
            kind.to_string(),
            res.makespan_s,
            res.mean_waiting_s(),
            res.mean_qos_slowdown(),
            res.slo_violations,
            res.mean_decision_s * 1e6,
        );
    }

    // Drill into the worst-served jobs under FCFS vs TOPO-AWARE-P.
    println!("\nworst five jobs by slowdown (QoS + waiting):");
    for kind in [PolicyKind::Fcfs, PolicyKind::TopoAwareP] {
        let res = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(kind),
            trace.clone(),
        );
        let worst: Vec<String> = res
            .qos_wait_slowdowns_sorted()
            .into_iter()
            .take(5)
            .map(|(id, s)| format!("{id}:{s:.2}"))
            .collect();
        println!("  {:<14} {}", kind.to_string(), worst.join("  "));
    }
}
