//! The full §5.1 operations loop: discover the topology from
//! `nvidia-smi topo --matrix` and `numactl --hardware` output, schedule a
//! job on the discovered machine, and emit the exact launch command the
//! prototype would exec (`CUDA_DEVICE_ORDER`, `CUDA_VISIBLE_DEVICES`,
//! `numactl` binding).
//!
//! ```text
//! cargo run --example discovery_to_launch
//! ```

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

const NVIDIA_SMI_TOPO: &str = "\
        GPU0    GPU1    GPU2    GPU3    CPU Affinity
GPU0     X      NV2     SYS     SYS     0-7
GPU1    NV2      X      SYS     SYS     0-7
GPU2    SYS     SYS      X      NV2     8-15
GPU3    SYS     SYS     NV2      X      8-15
";

const NUMACTL_HARDWARE: &str = "\
available: 2 nodes (0-1)
node 0 cpus: 0 1 2 3 4 5 6 7
node 0 size: 261788 MB
node 1 cpus: 8 9 10 11 12 13 14 15
node 1 size: 261788 MB
node distances:
node   0   1
  0:  10  40
  1:  40  10
";

fn main() {
    // 1. Discovery, exactly as the paper's startup sequence does it.
    let machine = parse_topo_matrix(NVIDIA_SMI_TOPO).expect("valid nvidia-smi output");
    let numa = NumaInfo::parse(NUMACTL_HARDWARE).expect("valid numactl output");
    println!(
        "discovered: {} GPUs on {} sockets; NUMA remote distance {}",
        machine.n_gpus(),
        machine.n_sockets(),
        numa.distance(0, 1)
    );

    // 2. Schedule against the discovered machine.
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    let mut state = ClusterState::new(cluster, profiles);
    let policy = Policy::new(PolicyKind::TopoAwareP);

    for (id, n_gpus) in [(0u64, 2u32), (1, 1)] {
        let job = JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, n_gpus)
            .with_min_utility(if n_gpus > 1 { 0.5 } else { 0.3 });
        let d = policy.decide(&state, &job).expect("machine has room");
        state.place(job, d.gpus, d.utility);

        // 3. Enforcement: the launch recipe for the placed job.
        let alloc = state.allocation(JobId(id)).expect("just placed").clone();
        let topo = state.cluster().machine(MachineId(0));
        let plan = launch_plan(&alloc, topo, Some(&numa));
        println!(
            "\njob J{id} → GPUs {:?} (utility {:.2})\n  $ {}",
            alloc.gpus_on(MachineId(0)),
            alloc.utility,
            plan.command_line("caffe train --solver=alexnet_solver.prototxt")
        );
    }
}
