//! Trace-driven workflow (§5.3, Appendix A.3): generate a workload, save it
//! as a JSON trace, reload it and replay it through the simulator — the
//! exact interchange the paper uses between its prototype logs and its
//! large-scale simulation.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // 1. Generate and persist a workload trace.
    let jobs = WorkloadGenerator::with_defaults(7).generate(40);
    let trace = Trace::new("generator seed=7, λ=10/min", jobs);
    let dir = std::env::temp_dir().join("gpu-topo-aware-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("workload.json");
    trace.save(&path)?;
    println!("wrote {} jobs spanning {:.0}s to {}", trace.len(), trace.span_s(), path.display());

    // 2. A manifest for one job, as the prototype's watch directory
    //    would receive it.
    let manifest = JobManifest { jobs: vec![trace.jobs[0].clone()] };
    println!("\nfirst job as a submission manifest:\n{}", manifest.to_json());

    // 3. Reload and replay.
    let reloaded = Trace::load(&path)?;
    assert_eq!(reloaded, trace, "JSON round-trip must be lossless");

    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 3));
    let res = simulate(
        cluster,
        profiles,
        Policy::new(PolicyKind::TopoAwareP),
        reloaded.jobs,
    );

    println!(
        "replay: {} jobs completed, makespan {:.0}s, mean wait {:.1}s, {} SLO violations",
        res.records.len(),
        res.makespan_s,
        res.mean_waiting_s(),
        res.slo_violations
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
