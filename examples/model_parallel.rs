//! Model parallelism (§2): when the *network* is partitioned across GPUs,
//! the communication graph is no longer uniform — a layer pipeline only
//! talks along the chain. The paper flags this as the case where topology
//! awareness matters even more; this example shows the mapper exploiting
//! the structure.
//!
//! ```text
//! cargo run --example model_parallel
//! ```

use gpu_topo_aware::perf::placement::graph_iter_time;
use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    let state = ClusterState::new(cluster, profiles);
    let policy = Policy::new(PolicyKind::TopoAware);

    // A 4-stage AlexNet pipeline: stage i feeds stage i+1.
    let pipeline = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 4)
        .with_comm_graph(JobGraph::pipeline(4, 4.0));
    // The same resources asked for by a data-parallel job.
    let dataparallel = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 4);

    let d = policy.decide(&state, &pipeline).expect("idle machine");
    let mapping: Vec<GpuId> = d.gpus.iter().map(|g| g.gpu).collect();
    println!("pipeline stages → GPUs: {mapping:?}");

    let topo = power8_minsky();
    let graph = JobGraph::pipeline(4, 4.0);
    let cross = graph
        .edges()
        .filter(|&(i, j, _)| topo.socket_of(mapping[i]) != topo.socket_of(mapping[j]))
        .count();
    println!("chain edges crossing the socket boundary: {cross} (1 is optimal)");

    let good = graph_iter_time(&topo, NnModel::AlexNet, 1, &graph, &mapping);
    let interleaved = [GpuId(0), GpuId(2), GpuId(1), GpuId(3)];
    let bad = graph_iter_time(&topo, NnModel::AlexNet, 1, &graph, &interleaved);
    println!(
        "\nper-iteration comm: mapped {:.1} ms vs interleaved {:.1} ms ({:.2}x worse)",
        good.comm_s * 1e3,
        bad.comm_s * 1e3,
        bad.comm_s / good.comm_s
    );

    let dp = PlacementPerf::evaluate(&topo, &mapping)
        .iter_time(NnModel::AlexNet, 1);
    println!(
        "data-parallel on the same GPUs: {:.1} ms comm — the pipeline's sparse graph\n\
         is cheaper, exactly why §2 expects topology awareness to matter more there",
        dp.comm_s * 1e3
    );
    let _ = dataparallel;
}
