//! Cluster operations day-2 walkthrough: racked fleets, disaggregated
//! multi-node jobs, machine failures and job cancellation — the extensions
//! layered on top of the paper's scheduler.
//!
//! ```text
//! cargo run --example cluster_operations
//! ```

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() {
    // A 2-rack × 3-Minsky fleet: cross-rack traffic pays the aggregation
    // layer (halved network bandwidth in the model).
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 2, 3));
    println!(
        "fleet: {} machines in {} racks, {} GPUs",
        cluster.n_machines(),
        cluster.n_racks(),
        cluster.n_gpus()
    );

    // A workload where every fifth job is *wider than any machine* and
    // therefore must spill across machines (the §7 future-work extension).
    let mut jobs = WorkloadGenerator::with_defaults(4242).generate(30);
    for (i, j) in jobs.iter_mut().enumerate() {
        if i % 5 == 0 {
            j.n_gpus = 6;
            j.constraints = Constraints { single_node: false, anti_collocate: false };
            j.min_utility = 0.3;
        }
    }

    // Machine 1 will fail twenty minutes in; its jobs restart elsewhere.
    let config = SimConfig::new(Policy::new(PolicyKind::TopoAwareP))
        .with_machine_failures(vec![(1200.0, MachineId(1))]);
    let res = Simulation::new(Arc::clone(&cluster), Arc::clone(&profiles), config).run(jobs);

    println!(
        "\ncompleted {} jobs, makespan {:.0}s, {} SLO violations",
        res.records.len(),
        res.makespan_s,
        res.slo_violations
    );
    for (t, m) in &res.failures {
        println!("machine failure applied: {m} at t={t:.0}s");
    }
    let restarted: Vec<String> = res
        .records
        .iter()
        .filter(|r| r.restarts > 0)
        .map(|r| format!("{} (x{})", r.spec.id, r.restarts))
        .collect();
    println!("restarted jobs: {}", if restarted.is_empty() { "none".into() } else { restarted.join(", ") });

    println!("\nwide (6-GPU) jobs and where they ran:");
    for r in res.records.iter().filter(|r| r.spec.n_gpus == 6) {
        let mut machines: Vec<String> = r.gpus.iter().map(|g| g.machine.to_string()).collect();
        machines.sort();
        machines.dedup();
        let mut racks: Vec<u32> = r.gpus.iter().map(|g| cluster.rack_of(g.machine)).collect();
        racks.sort_unstable();
        racks.dedup();
        println!(
            "  {}: machines {} — {} rack(s), slowdown {:.2}",
            r.spec.id,
            machines.join("+"),
            racks.len(),
            r.qos_slowdown()
        );
    }

    // Live cancellation through the scheduler API.
    let mut scheduler = Scheduler::new(
        ClusterState::new(Arc::clone(&cluster), profiles),
        SchedulerConfig::new(Policy::new(PolicyKind::TopoAwareP)),
    );
    scheduler.submit(JobSpec::new(100, NnModel::AlexNet, BatchClass::Tiny, 2));
    scheduler.run_iteration();
    println!("\ncancelling J100: {:?}", scheduler.cancel(JobId(100)));
}
