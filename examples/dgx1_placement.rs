//! Placement on an NVIDIA DGX-1 (Fig. 1 right): the hybrid cube-mesh gives
//! some GPU pairs single-hop NVLink and forces others over PCIe switches
//! and the inter-socket bus — the mapper must tell them apart.
//!
//! ```text
//! cargo run --example dgx1_placement
//! ```

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() {
    let machine = dgx1();
    println!("machine: {} ({} GPUs)", machine.name(), machine.n_gpus());

    // The NVLink adjacency of the cube-mesh.
    println!("\nNVLink adjacency (distance 1 pairs):");
    for a in machine.gpus() {
        let peers: Vec<String> = machine
            .gpus()
            .filter(|&b| b != a && machine.distance(a, b) == 1.0)
            .map(|b| b.to_string())
            .collect();
        println!("  {a}: {}", peers.join(" "));
    }

    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    let mut state = ClusterState::new(cluster, profiles);
    let policy = Policy::new(PolicyKind::TopoAware);

    // Place jobs of growing width and watch the mapper respect the quads.
    for (id, n_gpus) in [(0u64, 2u32), (1, 4), (2, 2)] {
        let job = JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, n_gpus)
            .with_min_utility(0.5);
        let d = policy.decide(&state, &job).expect("the DGX-1 has room");
        let local: Vec<GpuId> = d.gpus.iter().map(|g| g.gpu).collect();
        let topo = state.cluster().machine(MachineId(0));
        let all_nvlinked = local
            .iter()
            .all(|&a| local.iter().all(|&b| a == b || topo.distance(a, b) == 1.0));
        println!(
            "\njob {id} ({n_gpus} GPUs) → {:?}  utility {:.3}  fully NVLinked: {all_nvlinked}",
            local, d.utility
        );
        state.place(job, d.gpus, d.utility);
    }

    // An 8-GPU job takes the whole box; its worst pair rides the bus.
    let mut state = ClusterState::new(
        Arc::new(ClusterTopology::homogeneous(dgx1(), 1)),
        state.profiles_arc(),
    );
    let big = JobSpec::new(9, NnModel::GoogLeNet, BatchClass::Medium, 8);
    let d = policy.decide(&state, &big).expect("empty box");
    let local: Vec<GpuId> = d.gpus.iter().map(|g| g.gpu).collect();
    let topo = dgx1();
    let perf = PlacementPerf::evaluate(&topo, &local);
    println!(
        "\njob 9 (8 GPUs) → whole machine; worst-pair route: {:?} at {:.0} GB/s",
        perf.route, perf.bottleneck_gbs
    );
    state.place(big, d.gpus, d.utility);
}
