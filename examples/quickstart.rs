//! Quickstart: ask the topology-aware scheduler where a training job
//! should run on an IBM Power8 "Minsky".
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Describe the hardware: 2 sockets × 2 Tesla P100 over dual NVLink
    //    (Fig. 1 left in the paper). Profiles are the §4.2 measurement
    //    campaign run against the calibrated performance model.
    let machine = power8_minsky();
    println!("machine: {} ({} GPUs, {} sockets)", machine.name(), machine.n_gpus(), machine.n_sockets());
    for a in machine.gpus() {
        for b in machine.gpus() {
            if a < b {
                println!(
                    "  {a} ↔ {b}: distance {:>4}  {}  {:>4.0} GB/s",
                    machine.distance(a, b),
                    if machine.is_p2p(a, b) { "P2P       " } else { "host-route" },
                    machine.pair_bandwidth_gbs(a, b),
                );
            }
        }
    }

    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    let mut state = ClusterState::new(cluster, profiles);

    // 2. A communication-heavy job: AlexNet, batch 1 per GPU, 2 GPUs.
    let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5);

    // 3. Decide. The DRB mapper packs it onto the NVLink pair.
    let policy = Policy::new(PolicyKind::TopoAwareP);
    let decision = policy.decide(&state, &job).expect("an idle machine always fits");
    println!("\njob {} ({} × {} GPUs, batch {}):", job.id, job.model, job.n_gpus, job.batch);
    println!("  placed on {:?} with utility {:.3}", decision.gpus, decision.utility);
    state.place(job.clone(), decision.gpus.clone(), decision.utility);

    // 4. A second identical job now faces interference; the mapper steers
    //    it to the other socket.
    let job2 = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5);
    let d2 = policy.decide(&state, &job2).expect("two GPUs remain");
    println!("job {}: placed on {:?} with utility {:.3}", job2.id, d2.gpus, d2.utility);

    // 5. What the jobs will actually experience, per the calibrated model.
    let topo = state.cluster().machine(MachineId(0));
    let local: Vec<GpuId> = decision.gpus.iter().map(|g| g.gpu).collect();
    let perf = PlacementPerf::evaluate(topo, &local);
    let iter = perf.iter_time(job.model, job.batch.representative_batch());
    println!(
        "\nper-iteration: {:.1} ms compute + {:.1} ms allreduce = {:.1} ms ({} route)",
        iter.compute_s * 1e3,
        iter.comm_s * 1e3,
        iter.total_s() * 1e3,
        match perf.route {
            RouteClass::P2p => "P2P",
            RouteClass::HostRouted => "host",
        }
    );
}
