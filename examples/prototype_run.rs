//! Run the Table 1 scenario through the *prototype* runtime: real threads,
//! a scheduler daemon, per-job workers and a bandwidth monitor, compressed
//! 500× in time (§5.1/§5.2 re-enacted).
//!
//! ```text
//! cargo run --example prototype_run [-- <policy>]   # fcfs|bf|ta|tap
//! ```

use gpu_topo_aware::job::scenario::table1;
use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("fcfs") => PolicyKind::Fcfs,
        Some("bf") => PolicyKind::BestFit,
        Some("ta") => PolicyKind::TopoAware,
        _ => PolicyKind::TopoAwareP,
    };

    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));

    println!("running Table 1 under {kind} at 500× time compression...\n");
    let proto = Prototype::new(
        cluster,
        profiles,
        ProtoConfig::with_scale(Policy::new(kind), TimeScale::new(0.002)),
    );
    let res = proto.run(table1());

    let mut records = res.records.clone();
    records.sort_by_key(|r| r.spec.id);
    println!(
        "{:<5} {:>8} {:>9} {:>9} {:>9} {:>8} {:>6}",
        "job", "arrive", "placed", "finished", "wait(s)", "slowdown", "SLO"
    );
    for r in &records {
        println!(
            "{:<5} {:>8.1} {:>9.1} {:>9.1} {:>9.1} {:>8.2} {:>6}",
            r.spec.id.to_string(),
            r.spec.arrival_s,
            r.placed_at_s,
            r.finished_at_s,
            r.waiting_s(),
            r.qos_slowdown(),
            if r.slo_violated { "VIOL" } else { "ok" }
        );
    }
    println!(
        "\nmakespan {:.1}s, {} SLO violations",
        res.makespan_s, res.slo_violations
    );
    println!(
        "link monitor: peak P2P {:.1} GB/s, peak GPU-CPU-GPU {:.1} GB/s over {} samples",
        res.peak_p2p_gbs(),
        res.peak_host_gbs(),
        res.bandwidth.len()
    );
}
