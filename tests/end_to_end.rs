//! Cross-crate integration: workload generation → scheduling → simulation
//! under every policy, checking the paper's qualitative claims on several
//! seeds and cluster shapes.

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn setup(n_machines: usize) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    (
        Arc::new(ClusterTopology::homogeneous(machine, n_machines)),
        profiles,
    )
}

#[test]
fn every_policy_completes_every_placeable_job() {
    let (cluster, profiles) = setup(4);
    for seed in [1u64, 2, 3] {
        let trace = WorkloadGenerator::with_defaults(seed).generate(80);
        for kind in PolicyKind::ALL {
            let res = simulate(
                Arc::clone(&cluster),
                Arc::clone(&profiles),
                Policy::new(kind),
                trace.clone(),
            );
            assert_eq!(
                res.records.len() + res.unplaceable.len(),
                80,
                "seed {seed} {kind}: jobs lost"
            );
            assert!(res.unplaceable.is_empty(), "seed {seed} {kind}");
        }
    }
}

#[test]
fn topo_aware_p_never_violates_slos() {
    // TOPO-AWARE-P postpones instead of accepting sub-threshold placements,
    // so it must end every run with zero violations (the paper's headline
    // SLO claim).
    let (cluster, profiles) = setup(3);
    for seed in [10u64, 20, 30, 40] {
        let trace = WorkloadGenerator::with_defaults(seed).generate(60);
        let res = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(PolicyKind::TopoAwareP),
            trace,
        );
        assert_eq!(res.slo_violations, 0, "seed {seed}");
        for r in &res.records {
            assert!(!r.slo_violated, "seed {seed}: {}", r.spec.id);
            assert!(r.utility + 1e-9 >= r.spec.min_utility, "seed {seed}: {}", r.spec.id);
        }
    }
}

#[test]
fn topology_aware_placements_dominate_greedy_on_qos() {
    let (cluster, profiles) = setup(5);
    let mut tap_wins = 0;
    let mut total = 0;
    for seed in [100u64, 200, 300] {
        let trace = WorkloadGenerator::with_defaults(seed).generate(100);
        let fcfs = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(PolicyKind::Fcfs),
            trace.clone(),
        );
        let tap = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(PolicyKind::TopoAwareP),
            trace,
        );
        total += 1;
        if tap.mean_qos_slowdown() <= fcfs.mean_qos_slowdown() + 1e-9 {
            tap_wins += 1;
        }
    }
    assert_eq!(tap_wins, total, "TOPO-AWARE-P lost on mean QoS slowdown");
}

#[test]
fn gpus_are_never_double_booked_across_the_stack() {
    let (cluster, profiles) = setup(2);
    let trace = WorkloadGenerator::with_defaults(77).generate(50);
    for kind in PolicyKind::ALL {
        let res = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(kind),
            trace.clone(),
        );
        for (i, a) in res.timeline.iter().enumerate() {
            for b in &res.timeline[i + 1..] {
                let overlap = a.start_s < b.end_s - 1e-9 && b.start_s < a.end_s - 1e-9;
                if overlap {
                    for g in &a.gpus {
                        assert!(!b.gpus.contains(g), "{kind}: {g} double-booked");
                    }
                }
            }
        }
    }
}

#[test]
fn heterogeneous_cluster_of_minsky_and_dgx1() {
    // Mixed fleet: the scheduler must route 8-GPU jobs to the DGX-1s and
    // still serve small jobs anywhere.
    let minsky = Arc::new(power8_minsky());
    let dgx = Arc::new(dgx1());
    let cluster = Arc::new(ClusterTopology::from_machines(vec![
        Arc::clone(&minsky),
        Arc::clone(&dgx),
    ]));
    let profiles = Arc::new(ProfileLibrary::generate(&minsky, 42));

    let jobs = vec![
        JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 8).arriving_at(0.0).with_iterations(50),
        JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 2)
            .arriving_at(1.0)
            .with_iterations(50)
            .with_min_utility(0.5),
    ];
    let res = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAware), jobs);
    assert_eq!(res.records.len(), 2);
    let j0 = res.record(JobId(0)).unwrap();
    assert!(j0.gpus.iter().all(|g| g.machine == MachineId(1)), "8-GPU job must use the DGX-1");
    let j1 = res.record(JobId(1)).unwrap();
    assert!(j1.gpus.iter().all(|g| g.machine == MachineId(0)), "small job should avoid the busy DGX-1");
}

#[test]
fn oversized_multi_node_job_spills_across_machines() {
    // The disaggregated-GPU extension: a 6-GPU job on 4-GPU machines runs
    // when (and only when) it allows multi-node execution.
    let (cluster, profiles) = setup(2);
    let mut spillable = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 6)
        .arriving_at(0.0)
        .with_iterations(20);
    spillable.constraints = Constraints { single_node: false, anti_collocate: false };
    let pinned = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 6)
        .arriving_at(0.0)
        .with_iterations(20); // single-node: impossible on 4-GPU machines

    let res = simulate(
        Arc::clone(&cluster),
        Arc::clone(&profiles),
        Policy::new(PolicyKind::TopoAware),
        vec![spillable, pinned],
    );
    assert_eq!(res.records.len(), 1);
    assert_eq!(res.unplaceable.len(), 1);
    assert_eq!(res.unplaceable[0].id, JobId(1));

    let r = res.record(JobId(0)).unwrap();
    let m0 = r.gpus.iter().filter(|g| g.machine == MachineId(0)).count();
    let m1 = r.gpus.iter().filter(|g| g.machine == MachineId(1)).count();
    assert_eq!(m0.max(m1), 4, "topology-aware spill fills a whole machine first");
    assert_eq!(m0 + m1, 6);
}

#[test]
fn anti_collocated_jobs_run_across_machines_end_to_end() {
    let (cluster, profiles) = setup(3);
    let mut job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 3)
        .arriving_at(0.0)
        .with_iterations(20);
    job.constraints = Constraints { single_node: false, anti_collocate: true };
    let res = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAware), vec![job]);
    assert_eq!(res.records.len(), 1);
    let machines: std::collections::HashSet<MachineId> =
        res.records[0].gpus.iter().map(|g| g.machine).collect();
    assert_eq!(machines.len(), 3, "tasks must spread across 3 machines");
    // Network-bound gradient exchange makes execution far slower than the
    // single-node ideal — the cost the constraint explicitly accepts.
    assert!(res.records[0].qos_slowdown() > 0.5);
}
