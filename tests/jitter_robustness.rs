//! Cloud-variability robustness: the paper's conclusions must not hinge on
//! exact execution times ("because of the cloud's high variability, our
//! model does not need to be optimal; high-quality decisions will be
//! accurate enough", §4.2). We add ±10 % per-job execution jitter and check
//! the headline orderings still hold.

use gpu_topo_aware::job::scenario::table1;
use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn setup(n: usize) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    (Arc::new(ClusterTopology::homogeneous(machine, n)), profiles)
}

fn run_jittered(
    cluster: &Arc<ClusterTopology>,
    profiles: &Arc<ProfileLibrary>,
    kind: PolicyKind,
    trace: Vec<JobSpec>,
    seed: u64,
) -> SimResult {
    let config = SimConfig::new(Policy::new(kind)).with_jitter(0.10, seed);
    Simulation::new(Arc::clone(cluster), Arc::clone(profiles), config).run(trace)
}

#[test]
fn jitter_is_deterministic_and_bounded() {
    let (cluster, profiles) = setup(1);
    let a = run_jittered(&cluster, &profiles, PolicyKind::TopoAwareP, table1(), 9);
    let b = run_jittered(&cluster, &profiles, PolicyKind::TopoAwareP, table1(), 9);
    assert_eq!(a.makespan_s, b.makespan_s, "same seed → same run");

    let c = run_jittered(&cluster, &profiles, PolicyKind::TopoAwareP, table1(), 10);
    assert_ne!(a.makespan_s, c.makespan_s, "different seed → different run");

    // Every job's execution stays within the jitter envelope of the exact
    // model (interference aside, so compare against a generous band).
    let exact = simulate(
        Arc::clone(&cluster),
        Arc::clone(&profiles),
        Policy::new(PolicyKind::TopoAwareP),
        table1(),
    );
    for r in &a.records {
        let e = exact.record(r.spec.id).unwrap();
        let ratio = r.execution_s() / e.execution_s();
        assert!((0.8..1.25).contains(&ratio), "{}: ratio {ratio}", r.spec.id);
    }
}

#[test]
fn fig8_ordering_survives_jitter() {
    let (cluster, profiles) = setup(1);
    for seed in [1u64, 2, 3, 4, 5] {
        let tap = run_jittered(&cluster, &profiles, PolicyKind::TopoAwareP, table1(), seed);
        let bf = run_jittered(&cluster, &profiles, PolicyKind::BestFit, table1(), seed);
        assert!(
            tap.makespan_s < bf.makespan_s,
            "seed {seed}: TA-P {:.1} !< BF {:.1}",
            tap.makespan_s,
            bf.makespan_s
        );
        assert_eq!(tap.slo_violations, 0, "seed {seed}");
    }
}

#[test]
fn scenario1_slo_guarantee_survives_jitter() {
    let (cluster, profiles) = setup(3);
    let trace = WorkloadGenerator::with_defaults(77).generate(50);
    for seed in [11u64, 22, 33] {
        let res = run_jittered(&cluster, &profiles, PolicyKind::TopoAwareP, trace.clone(), seed);
        assert_eq!(res.records.len(), 50, "seed {seed}");
        assert_eq!(res.slo_violations, 0, "seed {seed}");
    }
}
