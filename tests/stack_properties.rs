//! Property-based invariants over the whole stack: random workloads, random
//! cluster shapes, every policy.

use gpu_topo_aware::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn simulate_random(
    seed: u64,
    n_jobs: usize,
    n_machines: usize,
    kind: PolicyKind,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    simulate(cluster, profiles, Policy::new(kind), trace)
}

fn simulate_random_traced(
    seed: u64,
    n_jobs: usize,
    n_machines: usize,
    kind: PolicyKind,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    Simulation::new(cluster, profiles, SimConfig::new(Policy::new(kind)).with_trace())
        .run(trace)
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

/// Drives a scheduler by hand over a generated workload, auditing after
/// every mutation, and verifies the cluster drains back to empty.
fn drive_and_audit(kind: PolicyKind, seed: u64) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 2));
    let capacity = cluster.n_gpus();
    let mut s = Scheduler::new(
        ClusterState::new(cluster, profiles),
        SchedulerConfig::new(Policy::new(kind)),
    );
    s.set_tracing(true);

    for (i, job) in WorkloadGenerator::with_defaults(seed)
        .generate(20)
        .into_iter()
        .enumerate()
    {
        s.set_now(i as f64);
        s.submit(job);
        s.run_iteration();
        s.audit().unwrap_or_else(|e| panic!("{kind:?}: audit after submit: {e}"));
    }
    // Retire running jobs lowest-id first until everything drains.
    while let Some(id) = s.state().running().map(|a| a.spec.id).min() {
        s.complete(id);
        s.run_iteration();
        s.audit().unwrap_or_else(|e| panic!("{kind:?}: audit after completion: {e}"));
    }

    assert_eq!(s.state().n_running(), 0, "{kind:?}: jobs left running");
    assert_eq!(s.state().total_free(), capacity, "{kind:?}: GPUs leaked");
    assert!(s.queue().is_empty(), "{kind:?}: jobs stranded in the queue");

    // Every job's lifecycle closes: exactly one Placed and one Released.
    let trace = s.take_trace();
    let count = |want: fn(&TraceEvent) -> Option<JobId>, id: JobId| {
        trace.iter().filter(|e| want(e) == Some(id)).count()
    };
    for id in (0..20).map(JobId) {
        let placed = count(
            |e| match e {
                TraceEvent::Placed { job, .. } => Some(*job),
                _ => None,
            },
            id,
        );
        let released = count(
            |e| match e {
                TraceEvent::Released { job, .. } => Some(*job),
                _ => None,
            },
            id,
        );
        assert_eq!(placed, 1, "{kind:?}: {id} placed {placed} times");
        assert_eq!(released, 1, "{kind:?}: {id} released {released} times");
    }
}

#[test]
fn every_policy_passes_the_audit_and_drains_the_cluster() {
    for kind in PolicyKind::ALL {
        drive_and_audit(kind, 7);
    }
}

/// One traced simulation with an explicit evaluation-engine setting.
/// Even-numbered seeds also script a failure/recovery cycle so the engine
/// is exercised across `fail_machine`/`recover_machine` invalidations.
/// The cross-event cache is pinned off so the comparison isolates the
/// memoized+parallel engine itself; `eval_cache_is_bit_identical_to_
/// uncached_runs` below covers the cache layer.
fn simulate_with_eval(
    seed: u64,
    n_machines: usize,
    kind: PolicyKind,
    eval: EvalParams,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let trace = WorkloadGenerator::with_defaults(seed).generate(24);
    let mut config = SimConfig::new(Policy::new(kind))
        .with_trace()
        .with_eval(eval)
        .with_eval_cache(false);
    if seed.is_multiple_of(2) {
        config = config
            .with_machine_failures(vec![(50.0, MachineId(1))])
            .with_machine_recoveries(vec![(400.0, MachineId(1))]);
    }
    Simulation::new(cluster, profiles, config).run(trace)
}

/// The memoized+parallel evaluation engine must be bit-identical to the
/// sequential reference: same placements, same trace events, same metrics,
/// for every policy across many seeds, including machine-failure runs.
/// (`mean_decision_s` is wall-clock and legitimately differs.)
#[test]
fn evaluation_engine_is_bit_identical_to_sequential_reference() {
    for kind in PolicyKind::ALL {
        for seed in 0..8u64 {
            let n_machines = 2 + (seed as usize % 3);
            let seq = simulate_with_eval(seed, n_machines, kind, EvalParams::sequential());
            let par = simulate_with_eval(seed, n_machines, kind, EvalParams::parallel(4));
            let ctx = format!("{kind:?} seed {seed} ({n_machines} machines)");
            assert_eq!(seq.policy, par.policy, "{ctx}: policy");
            assert_eq!(seq.records, par.records, "{ctx}: records");
            assert_eq!(seq.unplaceable, par.unplaceable, "{ctx}: unplaceable");
            assert_eq!(seq.timeline, par.timeline, "{ctx}: timeline");
            assert_eq!(seq.utility_series, par.utility_series, "{ctx}: utility series");
            assert_eq!(
                seq.makespan_s.to_bits(),
                par.makespan_s.to_bits(),
                "{ctx}: makespan {} vs {}",
                seq.makespan_s,
                par.makespan_s
            );
            assert_eq!(seq.slo_violations, par.slo_violations, "{ctx}: SLO violations");
            assert_eq!(seq.failures, par.failures, "{ctx}: failures");
            assert_eq!(seq.events, par.events, "{ctx}: events");
            assert_eq!(seq.trace, par.trace, "{ctx}: decision trace");
        }
    }
}

/// One traced simulation with an explicit event-loop selection. Even seeds
/// script a failure/recovery cycle (exercising teardown, resubmission, and
/// dirty-set marking across machines); seeds divisible by 3 add execution
/// jitter so per-job rates are irrational multiples of each other and the
/// completion heap sees no artificial ties.
fn simulate_with_loop(
    seed: u64,
    n_machines: usize,
    kind: PolicyKind,
    incremental: bool,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let trace = WorkloadGenerator::with_defaults(seed).generate(24);
    let mut config = SimConfig::new(Policy::new(kind))
        .with_trace()
        .with_incremental(incremental);
    if seed.is_multiple_of(2) {
        config = config
            .with_machine_failures(vec![(50.0, MachineId(1))])
            .with_machine_recoveries(vec![(400.0, MachineId(1))]);
    }
    if seed.is_multiple_of(3) {
        config = config.with_jitter(0.08, seed.wrapping_mul(0x9E37_79B9) + 1);
    }
    Simulation::new(cluster, profiles, config).run(trace)
}

/// The incremental event loop (machine-scoped slowdown refresh, completion
/// heap, schedule cursors) must be bit-identical to the recompute-everything
/// reference loop: same records, same trace, same events, same makespan
/// bits, for every policy across many seeds, including machine-failure and
/// jitter runs. (`mean_decision_s` is wall-clock and legitimately differs.)
#[test]
fn incremental_event_loop_is_bit_identical_to_reference() {
    for kind in PolicyKind::ALL {
        for seed in 0..8u64 {
            let n_machines = 2 + (seed as usize % 3);
            let reference = simulate_with_loop(seed, n_machines, kind, false);
            let inc = simulate_with_loop(seed, n_machines, kind, true);
            let ctx = format!("{kind:?} seed {seed} ({n_machines} machines)");
            assert_eq!(reference.policy, inc.policy, "{ctx}: policy");
            assert_eq!(reference.records, inc.records, "{ctx}: records");
            assert_eq!(reference.unplaceable, inc.unplaceable, "{ctx}: unplaceable");
            assert_eq!(reference.timeline, inc.timeline, "{ctx}: timeline");
            assert_eq!(reference.utility_series, inc.utility_series, "{ctx}: utility series");
            assert_eq!(
                reference.makespan_s.to_bits(),
                inc.makespan_s.to_bits(),
                "{ctx}: makespan {} vs {}",
                reference.makespan_s,
                inc.makespan_s
            );
            assert_eq!(reference.slo_violations, inc.slo_violations, "{ctx}: SLO violations");
            assert_eq!(reference.failures, inc.failures, "{ctx}: failures");
            assert_eq!(reference.events, inc.events, "{ctx}: events");
            assert_eq!(reference.trace, inc.trace, "{ctx}: decision trace");
        }
    }
}

/// One traced simulation with an explicit cross-event-cache selection, on
/// the evaluation engine path (the cache never engages on the sequential
/// reference). Even seeds script a failure/recovery cycle so cached class
/// keys survive `fail_machine`/`recover_machine` rebuilds; seeds divisible
/// by 3 add execution jitter so completion times (and therefore the arrival
/// interleavings the cache sees) vary per seed.
fn simulate_with_cache(
    seed: u64,
    n_machines: usize,
    kind: PolicyKind,
    eval_cache: bool,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let trace = WorkloadGenerator::with_defaults(seed).generate(24);
    let mut config = SimConfig::new(Policy::new(kind))
        .with_trace()
        .with_eval(EvalParams::parallel(4))
        .with_eval_cache(eval_cache);
    if seed.is_multiple_of(2) {
        config = config
            .with_machine_failures(vec![(50.0, MachineId(1))])
            .with_machine_recoveries(vec![(400.0, MachineId(1))]);
    }
    if seed.is_multiple_of(3) {
        config = config.with_jitter(0.08, seed.wrapping_mul(0x9E37_79B9) + 1);
    }
    Simulation::new(cluster, profiles, config).run(trace)
}

/// The cross-event placement cache must be invisible in every output: same
/// records, same trace events, same metrics, for every policy across many
/// seeds, including machine-failure and jitter runs. The only permitted
/// difference is the `EvalCacheStats` trace footer, which is stripped
/// before comparison. (`mean_decision_s` is wall-clock and legitimately
/// differs.)
#[test]
fn eval_cache_is_bit_identical_to_uncached_runs() {
    let strip_stats = |trace: Vec<TraceEvent>| -> Vec<TraceEvent> {
        trace
            .into_iter()
            .filter(|e| !matches!(e, TraceEvent::EvalCacheStats { .. }))
            .collect()
    };
    for kind in PolicyKind::ALL {
        for seed in 0..8u64 {
            let n_machines = 2 + (seed as usize % 3);
            let cold = simulate_with_cache(seed, n_machines, kind, false);
            let cached = simulate_with_cache(seed, n_machines, kind, true);
            let ctx = format!("{kind:?} seed {seed} ({n_machines} machines)");
            assert_eq!(cold.policy, cached.policy, "{ctx}: policy");
            assert_eq!(cold.records, cached.records, "{ctx}: records");
            assert_eq!(cold.unplaceable, cached.unplaceable, "{ctx}: unplaceable");
            assert_eq!(cold.timeline, cached.timeline, "{ctx}: timeline");
            assert_eq!(cold.utility_series, cached.utility_series, "{ctx}: utility series");
            assert_eq!(
                cold.makespan_s.to_bits(),
                cached.makespan_s.to_bits(),
                "{ctx}: makespan {} vs {}",
                cold.makespan_s,
                cached.makespan_s
            );
            assert_eq!(cold.slo_violations, cached.slo_violations, "{ctx}: SLO violations");
            assert_eq!(cold.failures, cached.failures, "{ctx}: failures");
            assert_eq!(cold.events, cached.events, "{ctx}: events");
            assert_eq!(
                strip_stats(cold.trace),
                strip_stats(cached.trace),
                "{ctx}: decision trace"
            );
        }
    }
}

/// One simulation on a rack-partitioned cluster with an explicit shard
/// count. Untraced on purpose: the sharded two-level decision path only
/// engages when tracing is off (traced runs always take the flat reference
/// path), so a traced comparison would be trivially identical. Even seeds
/// script a failure/recovery cycle so shard aggregates survive
/// `fail_machine`/`recover_machine`; seeds divisible by 3 add execution
/// jitter so arrival interleavings vary per seed.
fn simulate_with_shards(
    seed: u64,
    n_racks: usize,
    kind: PolicyKind,
    shards: usize,
) -> SimResult {
    simulate_with_shards_eval(seed, n_racks, kind, shards, EvalParams::parallel(4))
}

/// [`simulate_with_shards`] with explicit [`EvalParams`] so the shard
/// fan-out / bound-pruning knobs can be pinned per run, independent of the
/// process environment.
fn simulate_with_shards_eval(
    seed: u64,
    n_racks: usize,
    kind: PolicyKind,
    shards: usize,
    eval: EvalParams,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, n_racks, 2));
    let trace = WorkloadGenerator::with_defaults(seed).generate(24);
    let mut config = SimConfig::new(Policy::new(kind)).with_eval(eval).with_shards(shards);
    if seed.is_multiple_of(2) {
        config = config
            .with_machine_failures(vec![(50.0, MachineId(1))])
            .with_machine_recoveries(vec![(400.0, MachineId(1))]);
    }
    if seed.is_multiple_of(3) {
        config = config.with_jitter(0.08, seed.wrapping_mul(0x9E37_79B9) + 1);
    }
    Simulation::new(cluster, profiles, config).run(trace)
}

/// Asserts two runs are bit-identical in everything but wall-clock.
#[track_caller]
fn assert_runs_identical(ctx: &str, reference: &SimResult, run: &SimResult) {
    assert_eq!(reference.policy, run.policy, "{ctx}: policy");
    assert_eq!(reference.records, run.records, "{ctx}: records");
    assert_eq!(reference.unplaceable, run.unplaceable, "{ctx}: unplaceable");
    assert_eq!(reference.timeline, run.timeline, "{ctx}: timeline");
    assert_eq!(reference.utility_series, run.utility_series, "{ctx}: utility series");
    assert_eq!(
        reference.makespan_s.to_bits(),
        run.makespan_s.to_bits(),
        "{ctx}: makespan {} vs {}",
        reference.makespan_s,
        run.makespan_s
    );
    assert_eq!(reference.slo_violations, run.slo_violations, "{ctx}: SLO violations");
    assert_eq!(reference.failures, run.failures, "{ctx}: failures");
    assert_eq!(reference.events, run.events, "{ctx}: events");
    assert_eq!(reference.trace, run.trace, "{ctx}: decision trace");
}

/// The sharded two-level scheduler (per-rack admission aggregates + shard-
/// local placement) must be bit-identical to the single-shard reference:
/// same records, same events, same metrics, for every policy across many
/// seeds, including machine-failure and jitter runs. (`mean_decision_s` is
/// wall-clock and legitimately differs.)
#[test]
fn sharded_scheduler_is_bit_identical_to_single_shard() {
    for kind in PolicyKind::ALL {
        for seed in 0..8u64 {
            let n_racks = 2 + (seed as usize % 3);
            let single = simulate_with_shards(seed, n_racks, kind, 1);
            let sharded = simulate_with_shards(seed, n_racks, kind, n_racks);
            let ctx = format!("{kind:?} seed {seed} ({n_racks} racks)");
            assert_runs_identical(&ctx, &single, &sharded);
        }
    }
}

/// The parallel shard fan-out and the branch-and-bound shard pruning (both
/// individually and combined) must be bit-identical to the single-shard
/// reference: same records, same events, same metrics, for every policy
/// across many seeds, including machine-failure and jitter runs. Uses 4+
/// racks so cold decisions clear the fan-out's minimum batch size, and
/// pins the knobs through [`EvalParams`] so the matrix is exercised
/// in-process regardless of `GTS_SHARD_PAR`/`GTS_SHARD_BOUND` in the
/// environment. Debug builds additionally shadow-evaluate every pruned
/// shard inside the decision path and assert the bound held.
#[test]
fn parallel_pruned_shards_are_bit_identical_to_single_shard() {
    for kind in PolicyKind::ALL {
        for seed in 0..8u64 {
            let n_racks = 4 + (seed as usize % 3);
            let single = simulate_with_shards(seed, n_racks, kind, 1);
            for par in [false, true] {
                for bound in [false, true] {
                    let eval =
                        EvalParams::parallel(4).with_shard_par(par).with_shard_bound(bound);
                    let run = simulate_with_shards_eval(seed, n_racks, kind, n_racks, eval);
                    let ctx = format!(
                        "{kind:?} seed {seed} ({n_racks} racks, par={par}, bound={bound})"
                    );
                    assert_runs_identical(&ctx, &single, &run);
                }
            }
        }
    }
}

/// Cross-event decision replay (`GTS_DECISION_REPLAY`, DESIGN.md §12) must
/// be bit-identical to full re-evaluation: same records, same events, same
/// metrics, for every policy across many seeds — including machine-failure/
/// recovery and jitter runs, where snapshots go stale mid-queue — and
/// under every combination of the shard fan-out and bound-pruning knobs
/// (the cached per-shard floor seeds the bound prune, so the interaction
/// matters). The knobs are pinned through [`EvalParams`] so the matrix is
/// exercised in-process regardless of the environment; debug builds
/// additionally shadow every replayed retry with a from-scratch decision
/// inside the decision path and assert GPU-for-GPU, bit-for-bit equality.
#[test]
fn decision_replay_is_bit_identical_to_full_reeval() {
    for kind in PolicyKind::ALL {
        for seed in 0..8u64 {
            let n_racks = 4 + (seed as usize % 3);
            let single = simulate_with_shards(seed, n_racks, kind, 1);
            for replay in [false, true] {
                for par in [false, true] {
                    for bound in [false, true] {
                        let eval = EvalParams::parallel(4)
                            .with_shard_par(par)
                            .with_shard_bound(bound)
                            .with_decision_replay(replay);
                        let run = simulate_with_shards_eval(seed, n_racks, kind, n_racks, eval);
                        let ctx = format!(
                            "{kind:?} seed {seed} ({n_racks} racks, replay={replay}, \
                             par={par}, bound={bound})"
                        );
                        assert_runs_identical(&ctx, &single, &run);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulation_conserves_jobs(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 30, 2, kind);
        prop_assert_eq!(res.records.len() + res.unplaceable.len(), 30);
    }

    #[test]
    fn records_are_causally_ordered(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 30, 2, kind);
        for r in &res.records {
            prop_assert!(r.placed_at_s + 1e-9 >= r.spec.arrival_s, "{} placed before arrival", r.spec.id);
            prop_assert!(r.finished_at_s > r.placed_at_s, "{} finished before starting", r.spec.id);
            // Execution can never beat the ideal placement.
            prop_assert!(
                r.execution_s() + 1e-6 >= r.ideal_duration_s,
                "{}: executed {} < ideal {}",
                r.spec.id, r.execution_s(), r.ideal_duration_s
            );
        }
    }

    #[test]
    fn postponing_policy_never_violates(seed in 0u64..1000) {
        let res = simulate_random(seed, 30, 2, PolicyKind::TopoAwareP);
        prop_assert_eq!(res.slo_violations, 0);
    }

    #[test]
    fn allocations_respect_request_size(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 25, 3, kind);
        for r in &res.records {
            prop_assert_eq!(r.gpus.len(), r.spec.n_gpus as usize);
            // All experiment jobs are single-node.
            let machines: std::collections::HashSet<_> = r.gpus.iter().map(|g| g.machine).collect();
            prop_assert_eq!(machines.len(), 1, "single-node constraint broken");
            // No duplicate GPUs.
            let mut gpus = r.gpus.clone();
            gpus.sort();
            gpus.dedup();
            prop_assert_eq!(gpus.len(), r.spec.n_gpus as usize);
        }
    }

    #[test]
    fn makespan_bounds_every_completion(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 20, 2, kind);
        for r in &res.records {
            prop_assert!(r.finished_at_s <= res.makespan_s + 1e-9);
        }
    }

    #[test]
    fn trace_pairs_place_and_release_per_completed_job(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random_traced(seed, 25, 2, kind);
        for r in &res.records {
            let placed = res.trace.iter().filter(|e| matches!(
                e, TraceEvent::Placed { job, .. } if *job == r.spec.id
            )).count();
            let released = res.trace.iter().filter(|e| matches!(
                e, TraceEvent::Released { job, .. } if *job == r.spec.id
            )).count();
            prop_assert_eq!(placed, 1, "{} placed {} times", r.spec.id, placed);
            prop_assert_eq!(released, 1, "{} released {} times", r.spec.id, released);
        }
        // Cluster-wide, grants and releases balance: the run drained.
        let all_placed = res.trace.iter().filter(|e| matches!(e, TraceEvent::Placed { .. })).count();
        let all_released = res.trace.iter().filter(|e| matches!(e, TraceEvent::Released { .. })).count();
        prop_assert_eq!(all_placed, all_released);
    }

    #[test]
    fn utilities_are_normalized(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 20, 2, kind);
        for r in &res.records {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utility), "{}: {}", r.spec.id, r.utility);
        }
    }
}
