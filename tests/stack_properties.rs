//! Property-based invariants over the whole stack: random workloads, random
//! cluster shapes, every policy.

use gpu_topo_aware::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn simulate_random(
    seed: u64,
    n_jobs: usize,
    n_machines: usize,
    kind: PolicyKind,
) -> SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    simulate(cluster, profiles, Policy::new(kind), trace)
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulation_conserves_jobs(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 30, 2, kind);
        prop_assert_eq!(res.records.len() + res.unplaceable.len(), 30);
    }

    #[test]
    fn records_are_causally_ordered(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 30, 2, kind);
        for r in &res.records {
            prop_assert!(r.placed_at_s + 1e-9 >= r.spec.arrival_s, "{} placed before arrival", r.spec.id);
            prop_assert!(r.finished_at_s > r.placed_at_s, "{} finished before starting", r.spec.id);
            // Execution can never beat the ideal placement.
            prop_assert!(
                r.execution_s() + 1e-6 >= r.ideal_duration_s,
                "{}: executed {} < ideal {}",
                r.spec.id, r.execution_s(), r.ideal_duration_s
            );
        }
    }

    #[test]
    fn postponing_policy_never_violates(seed in 0u64..1000) {
        let res = simulate_random(seed, 30, 2, PolicyKind::TopoAwareP);
        prop_assert_eq!(res.slo_violations, 0);
    }

    #[test]
    fn allocations_respect_request_size(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 25, 3, kind);
        for r in &res.records {
            prop_assert_eq!(r.gpus.len(), r.spec.n_gpus as usize);
            // All experiment jobs are single-node.
            let machines: std::collections::HashSet<_> = r.gpus.iter().map(|g| g.machine).collect();
            prop_assert_eq!(machines.len(), 1, "single-node constraint broken");
            // No duplicate GPUs.
            let mut gpus = r.gpus.clone();
            gpus.sort();
            gpus.dedup();
            prop_assert_eq!(gpus.len(), r.spec.n_gpus as usize);
        }
    }

    #[test]
    fn makespan_bounds_every_completion(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 20, 2, kind);
        for r in &res.records {
            prop_assert!(r.finished_at_s <= res.makespan_s + 1e-9);
        }
    }

    #[test]
    fn utilities_are_normalized(seed in 0u64..1000, kind in any_policy()) {
        let res = simulate_random(seed, 20, 2, kind);
        for r in &res.records {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utility), "{}: {}", r.spec.id, r.utility);
        }
    }
}
