//! Scheduling breadth on machines beyond the paper's testbed: the
//! NVSwitch-flat DGX-2 and the NVLink-triad Power9 AC922.

use gpu_topo_aware::prelude::*;
use gpu_topo_aware::topo::{dgx2, power9_ac922};
use std::sync::Arc;

#[test]
fn dgx2_hosts_sixteen_gpu_jobs_and_stays_p2p() {
    let machine = dgx2();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    let jobs = vec![
        JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 16).with_iterations(30),
        JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 4)
            .arriving_at(1e6)
            .with_iterations(30),
    ];
    let res = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAware), jobs);
    assert_eq!(res.records.len(), 2);

    let topo = dgx2();
    for r in &res.records {
        let local: Vec<GpuId> = r.gpus.iter().map(|g| g.gpu).collect();
        let perf = PlacementPerf::evaluate(&topo, &local);
        assert_eq!(perf.route, RouteClass::P2p, "{}: NVSwitch keeps everything P2P", r.spec.id);
    }
}

#[test]
fn dgx2_pack_vs_spread_is_nearly_flat() {
    // The NVSwitch machine is communication-flat: placement barely matters
    // (which is exactly why the mapper's interference/fragmentation terms
    // still earn their keep there).
    let m = dgx2();
    let same_board = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
        .iter_time(NnModel::AlexNet, 1)
        .total_s();
    let cross_board = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(8)])
        .iter_time(NnModel::AlexNet, 1)
        .total_s();
    let ratio = cross_board / same_board;
    assert!((0.99..1.01).contains(&ratio), "got {ratio}");
}

#[test]
fn ac922_triads_give_a_bigger_pack_win_than_minsky() {
    // 60 GB/s triad NVLink vs the Minsky's 40 GB/s brick: the AC922 packs
    // even better relative to its cross-socket route.
    let m = power9_ac922();
    let pack = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
        .iter_time(NnModel::AlexNet, 1)
        .total_s();
    let spread = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(3)])
        .iter_time(NnModel::AlexNet, 1)
        .total_s();
    let speedup = spread / pack;
    assert!(speedup > 1.3, "got {speedup}");

    // And the scheduler fills triads coherently: a 3-GPU job lands on one
    // socket.
    let profiles = Arc::new(ProfileLibrary::generate(&m, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(power9_ac922(), 1));
    let state = ClusterState::new(cluster, profiles);
    let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 3).with_min_utility(0.5);
    let d = Policy::new(PolicyKind::TopoAwareP).decide(&state, &job).unwrap();
    let local: Vec<GpuId> = d.gpus.iter().map(|g| g.gpu).collect();
    assert!(power9_ac922().is_packed(&local), "got {local:?}");
    assert!((d.utility - 1.0).abs() < 1e-9);
}

#[test]
fn mixed_generation_fleet_schedules_cleanly() {
    // Minsky + AC922 + DGX-2 in one cluster.
    let machines: Vec<Arc<MachineTopology>> = vec![
        Arc::new(power8_minsky()),
        Arc::new(power9_ac922()),
        Arc::new(dgx2()),
    ];
    let cluster = Arc::new(ClusterTopology::from_machines(machines));
    let profiles = Arc::new(ProfileLibrary::generate(&power8_minsky(), 42));
    let trace = WorkloadGenerator::with_defaults(88).generate(30);
    let res = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAwareP), trace);
    assert_eq!(res.records.len(), 30);
    assert_eq!(res.slo_violations, 0);
}
