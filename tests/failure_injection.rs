//! Machine-failure injection: jobs on a failed machine lose their progress,
//! return to the queue and restart elsewhere; the dead machine disappears
//! from every capacity query.

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn setup(n: usize) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    (Arc::new(ClusterTopology::homogeneous(machine, n)), profiles)
}

fn job(id: u64, gpus: u32, arrival: f64, iters: u32) -> JobSpec {
    JobSpec::new(id, NnModel::AlexNet, BatchClass::Small, gpus)
        .arriving_at(arrival)
        .with_iterations(iters)
}

#[test]
fn job_restarts_on_the_surviving_machine() {
    let (cluster, profiles) = setup(2);
    // One job starts on machine 0 (FCFS picks the lowest id); machine 0
    // dies halfway through.
    let trace = vec![job(0, 2, 0.0, 400)];
    let solo = simulate(
        Arc::clone(&cluster),
        Arc::clone(&profiles),
        Policy::new(PolicyKind::Fcfs),
        trace.clone(),
    );
    let half = solo.records[0].execution_s() / 2.0;

    let config = SimConfig::new(Policy::new(PolicyKind::Fcfs))
        .with_machine_failures(vec![(half, MachineId(0))]);
    let res = Simulation::new(Arc::clone(&cluster), Arc::clone(&profiles), config).run(trace);

    assert_eq!(res.records.len(), 1);
    let r = &res.records[0];
    assert_eq!(r.restarts, 1);
    assert!(r.gpus.iter().all(|g| g.machine == MachineId(1)), "got {:?}", r.gpus);
    // Total time ≈ half a run wasted + a full run.
    assert!(
        res.makespan_s > solo.makespan_s * 1.4,
        "restart must cost time: {} vs {}",
        res.makespan_s,
        solo.makespan_s
    );
    assert_eq!(res.failures, vec![(half, MachineId(0))]);
    // The interrupted attempt still shows in the timeline.
    assert!(res.timeline.len() >= 2);
}

#[test]
fn failed_machine_takes_no_new_jobs() {
    let (cluster, profiles) = setup(2);
    let trace = vec![
        job(0, 1, 0.0, 200),
        job(1, 1, 50.0, 200),
        job(2, 1, 60.0, 200),
    ];
    let config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
        .with_machine_failures(vec![(10.0, MachineId(0))]);
    let res = Simulation::new(cluster, profiles, config).run(trace);

    assert_eq!(res.records.len(), 3);
    for r in &res.records {
        // Jobs arriving (or restarting) after the failure avoid machine 0.
        if r.placed_at_s > 10.0 {
            assert!(
                r.gpus.iter().all(|g| g.machine == MachineId(1)),
                "{} landed on the dead machine",
                r.spec.id
            );
        }
    }
}

#[test]
fn losing_the_only_machine_strands_the_queue_gracefully() {
    let (cluster, profiles) = setup(1);
    let trace = vec![job(0, 2, 0.0, 400), job(1, 2, 5.0, 400)];
    let config = SimConfig::new(Policy::new(PolicyKind::Fcfs))
        .with_machine_failures(vec![(10.0, MachineId(0))]);
    let res = Simulation::new(cluster, profiles, config).run(trace);

    // Nothing can ever run again: both jobs end up unplaceable, none lost.
    assert_eq!(res.records.len(), 0);
    assert_eq!(res.unplaceable.len(), 2);
    assert_eq!(res.failures.len(), 1);
}

#[test]
fn failures_do_not_break_slo_accounting() {
    let (cluster, profiles) = setup(3);
    let trace = WorkloadGenerator::with_defaults(55).generate(40);
    let config = SimConfig::new(Policy::new(PolicyKind::TopoAwareP))
        .with_machine_failures(vec![(120.0, MachineId(1))]);
    let res = Simulation::new(cluster, profiles, config).run(trace);

    assert_eq!(res.records.len() + res.unplaceable.len(), 40);
    assert_eq!(res.slo_violations, 0, "postponement still guards the SLO");
    // At least one job should have been hit by the failure in a 40-job run.
    let restarted: u32 = res.records.iter().map(|r| r.restarts).sum();
    assert!(restarted >= 1, "failure at t=120 s should interrupt someone");
}

#[test]
fn recovered_machine_rejoins_the_pool() {
    let (cluster, profiles) = setup(1);
    // The only machine dies at t=10 and comes back at t=50: the queued jobs
    // must eventually run instead of being stranded.
    let trace = vec![job(0, 2, 0.0, 300), job(1, 2, 5.0, 300)];
    let config = SimConfig::new(Policy::new(PolicyKind::Fcfs))
        .with_machine_failures(vec![(10.0, MachineId(0))])
        .with_machine_recoveries(vec![(50.0, MachineId(0))]);
    let res = Simulation::new(cluster, profiles, config).run(trace);

    assert_eq!(res.records.len(), 2, "both jobs complete after the recovery");
    assert!(res.unplaceable.is_empty());
    for r in &res.records {
        assert!(r.placed_at_s >= 50.0 - 1e-6, "{} ran before recovery", r.spec.id);
    }
    // The interrupted job restarted exactly once.
    assert_eq!(res.record(JobId(0)).unwrap().restarts, 1);
}
