//! Model-parallel jobs through the whole stack: explicit communication
//! graphs flow from JSON manifests through the mapper into the simulator.

use gpu_topo_aware::prelude::*;
use std::sync::Arc;

fn setup() -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    (Arc::new(ClusterTopology::homogeneous(machine, 1)), profiles)
}

#[test]
fn pipeline_job_simulates_faster_than_data_parallel_twin() {
    let (cluster, profiles) = setup();
    let pipeline = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 4)
        .with_iterations(200)
        .with_comm_graph(JobGraph::pipeline(4, 4.0));
    let dataparallel = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 4)
        .arriving_at(1e6)
        .with_iterations(200);

    let res = simulate(
        cluster,
        profiles,
        Policy::new(PolicyKind::TopoAware),
        vec![pipeline, dataparallel],
    );
    let p = res.record(JobId(0)).unwrap();
    let d = res.record(JobId(1)).unwrap();
    assert!(
        p.execution_s() < d.execution_s(),
        "pipeline {:.1}s should beat data-parallel {:.1}s on 4 GPUs",
        p.execution_s(),
        d.execution_s()
    );
    // Both ran solo at their respective ideals.
    assert!(p.qos_slowdown() < 0.05, "got {}", p.qos_slowdown());
    assert!(d.qos_slowdown() < 0.05, "got {}", d.qos_slowdown());
}

#[test]
fn model_parallel_specs_survive_the_manifest_layer() {
    let spec = JobSpec::new(0, NnModel::GoogLeNet, BatchClass::Small, 4)
        .with_comm_graph(JobGraph::ring(4, 3.0));
    let manifest = JobManifest { jobs: vec![spec.clone()] };
    let back = JobManifest::from_json(&manifest.to_json()).unwrap();
    assert_eq!(back.jobs[0], spec);
    assert!(back.validate().is_ok());
    assert_eq!(JobGraph::from_spec(&back.jobs[0]).edge_count(), 4);
}

#[test]
fn custom_star_graph_places_the_hub_centrally() {
    // A parameter-server-style star: task 0 talks to everyone.
    let (cluster, profiles) = setup();
    let star = JobGraph::custom(vec![
        vec![0.0, 4.0, 4.0, 4.0],
        vec![4.0, 0.0, 0.0, 0.0],
        vec![4.0, 0.0, 0.0, 0.0],
        vec![4.0, 0.0, 0.0, 0.0],
    ]);
    let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 4)
        .with_iterations(50)
        .with_comm_graph(star);
    let res = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAware), vec![job]);
    assert_eq!(res.records.len(), 1);
    // On a 4-GPU machine the star necessarily spans sockets; the job still
    // completes and is costed via the graph model.
    assert!(res.records[0].execution_s() > 0.0);
}
