//! # gts-proto — the prototype runtime (§5.1, §5.2)
//!
//! The paper's prototype is a C/Python daemon that loads JSON job
//! manifests, places jobs with the topology-aware algorithm, launches real
//! Caffe processes pinned to the granted GPUs (`CUDA_VISIBLE_DEVICES`,
//! `numactl`) and polls `nvidia-smi nvlink` counters while they run. This
//! crate reproduces that *architecture* with real concurrency:
//!
//! * a **scheduler daemon** owns the `gts-sched` scheduler and reacts to
//!   submission/completion events over crossbeam channels;
//! * one **worker thread per running job** executes time-scaled training
//!   iterations (the calibrated `gts-perf` model stands in for Caffe),
//!   reading its current interference slowdown from shared state and
//!   publishing transferred bytes to per-machine atomic link counters;
//! * a **monitor thread** samples those counters once per scaled second,
//!   yielding the Fig. 5 / Fig. 8 bandwidth traces;
//! * an **arrival injector** replays a trace in scaled real time.
//!
//! Everything runs at a configurable [`clock::TimeScale`] so the 530-second
//! Fig. 8 scenario executes in well under a second of wall time while
//! keeping genuine thread interleavings.

#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod daemon;
pub mod result;
pub mod worker;

pub use clock::{ScaledClock, TimeScale};
pub use counters::LinkCounters;
pub use daemon::{Prototype, ProtoConfig};
pub use result::{BandwidthSample, ProtoResult};
