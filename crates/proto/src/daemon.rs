//! The scheduler daemon — the prototype's main loop.
//!
//! Owns the `gts-sched` scheduler and serializes all state changes:
//! arrivals come in from the injector thread, completions from workers,
//! and after every event the daemon runs one Algorithm 1 iteration,
//! spawns workers for fresh placements and refreshes the shared slowdown
//! table every worker reads.

use crate::clock::{ScaledClock, TimeScale};
use crate::counters::LinkCounters;
use crate::result::{BandwidthSample, ProtoResult};
use crate::worker::{run_worker, WorkerParams};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use gts_job::{JobId, JobSpec};
use gts_perf::{total_slowdown, PlacementPerf, ProfileLibrary};
use gts_sched::{
    Allocation, ClusterState, PlacementOutcome, Policy, Scheduler, SchedulerConfig,
};
use gts_sim::{ideal_duration_s, JobRecord};
use gts_topo::ClusterTopology;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Events flowing into the daemon.
#[derive(Debug, Clone)]
pub enum Event {
    /// A job manifest arrived.
    Submit(JobSpec),
    /// A worker finished its job.
    Finished {
        /// The finished job.
        job: JobId,
        /// Completion timestamp in simulated seconds.
        at_sim_s: f64,
    },
    /// An operator cancelled a job (queued or running).
    Cancel {
        /// The job to tear down.
        job: JobId,
    },
}

/// Prototype configuration.
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Placement policy.
    pub policy: Policy,
    /// Experiment time compression.
    pub scale: TimeScale,
    /// Scripted cancellations: `(sim_time_s, job)` pairs injected while the
    /// experiment runs.
    pub cancellations: Vec<(f64, JobId)>,
}

impl ProtoConfig {
    /// Policy at the default fast scale (1 sim s = 2 wall ms).
    pub fn new(policy: Policy) -> Self {
        Self { policy, scale: TimeScale::fast(), cancellations: Vec::new() }
    }

    /// Policy at an explicit scale.
    pub fn with_scale(policy: Policy, scale: TimeScale) -> Self {
        Self { policy, scale, cancellations: Vec::new() }
    }
}

/// The prototype runtime.
pub struct Prototype {
    cluster: Arc<ClusterTopology>,
    profiles: Arc<ProfileLibrary>,
    config: ProtoConfig,
}

impl Prototype {
    /// Builds a prototype over a cluster (usually one Minsky, as in §5.2).
    pub fn new(
        cluster: Arc<ClusterTopology>,
        profiles: Arc<ProfileLibrary>,
        config: ProtoConfig,
    ) -> Self {
        Self { cluster, profiles, config }
    }

    /// Executes a trace in scaled real time and collects the results.
    pub fn run(&self, mut trace: Vec<JobSpec>) -> ProtoResult {
        trace.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("finite arrivals")
                .then(a.id.cmp(&b.id))
        });
        let mut expected = 0usize;
        let mut runnable = Vec::new();
        for job in trace {
            let fits = self
                .cluster
                .machines()
                .any(|m| self.cluster.machine(m).n_gpus() >= job.n_gpus as usize)
                || (job.constraints.anti_collocate
                    && (job.n_gpus as usize) <= self.cluster.n_machines());
            if fits {
                expected += 1;
                runnable.push(job);
            }
        }

        let clock = ScaledClock::start(self.config.scale);
        let (tx, rx) = unbounded::<Event>();
        let counters = Arc::new(LinkCounters::new(self.cluster.n_machines()));
        let slowdowns: Arc<RwLock<HashMap<JobId, f64>>> = Arc::new(RwLock::new(HashMap::new()));
        let cancelled: Arc<RwLock<HashSet<JobId>>> = Arc::new(RwLock::new(HashSet::new()));
        let stop = Arc::new(AtomicBool::new(false));

        // Cancellation injector (scripted operator actions).
        let canceller = {
            let mut schedule = self.config.cancellations.clone();
            schedule.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let tx = tx.clone();
            let clock = clock.clone();
            std::thread::spawn(move || {
                for (at_s, job) in schedule {
                    clock.sleep_until_sim(at_s);
                    if tx.send(Event::Cancel { job }).is_err() {
                        return;
                    }
                }
            })
        };

        // Arrival injector.
        let injector = {
            let tx = tx.clone();
            let clock = clock.clone();
            std::thread::spawn(move || {
                for job in runnable {
                    clock.sleep_until_sim(job.arrival_s);
                    if tx.send(Event::Submit(job)).is_err() {
                        return;
                    }
                }
            })
        };

        // Bandwidth monitor: one sample per simulated second.
        let monitor = {
            let counters = Arc::clone(&counters);
            let clock = clock.clone();
            let stop = Arc::clone(&stop);
            let scale = self.config.scale;
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                let t0 = clock.now_sim();
                let mut last: Vec<(u64, u64)> =
                    (0..counters.n_machines()).map(|m| counters.totals_at(m, t0)).collect();
                let mut last_t = t0;
                let tick = scale.to_wall(1.0).max(Duration::from_micros(500));
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    let now = clock.now_sim();
                    let dt = (now - last_t).max(1e-9);
                    for (m, prev) in last.iter_mut().enumerate() {
                        let (p2p, host) = counters.totals_at(m, now);
                        let (lp, lh) = *prev;
                        samples.push(BandwidthSample {
                            t_s: now,
                            machine: m,
                            p2p_gbs: (p2p - lp) as f64 / dt / 1e9,
                            host_gbs: (host - lh) as f64 / dt / 1e9,
                        });
                        *prev = (p2p, host);
                    }
                    last_t = now;
                }
                samples
            })
        };

        // The daemon loop itself.
        let state = ClusterState::new(Arc::clone(&self.cluster), Arc::clone(&self.profiles));
        let mut scheduler = Scheduler::new(state, SchedulerConfig::new(self.config.policy));
        let mut placed_at: HashMap<JobId, f64> = HashMap::new();
        let mut records: Vec<JobRecord> = Vec::new();
        let mut cancelled_jobs: Vec<JobId> = Vec::new();
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let mut completed = 0usize;
        let idle_timeout = Duration::from_millis(200);

        while completed < expected {
            match rx.recv_timeout(idle_timeout) {
                Ok(Event::Submit(job)) => {
                    scheduler.submit(job);
                }
                Ok(Event::Finished { job, at_sim_s }) => {
                    let alloc = scheduler.complete(job);
                    slowdowns.write().remove(&job);
                    let start = placed_at.remove(&job).expect("finished job was placed");
                    let mut record = self.record_for(alloc, start, at_sim_s);
                    record.postponements = scheduler.postpone_count(job);
                    records.push(record);
                    completed += 1;
                }
                Ok(Event::Cancel { job }) => {
                    use gts_sched::CancelOutcome;
                    match scheduler.cancel(job) {
                        CancelOutcome::Stopped(_) => {
                            cancelled.write().insert(job);
                            slowdowns.write().remove(&job);
                            placed_at.remove(&job);
                            cancelled_jobs.push(job);
                            expected -= 1;
                        }
                        CancelOutcome::Dequeued => {
                            cancelled_jobs.push(job);
                            expected -= 1;
                        }
                        CancelOutcome::NotFound => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // A stuck head job (e.g. blocked in-order policy with
                    // nothing ever finishing) would hang the run; with an
                    // idle cluster nothing placeable remains, so anything
                    // still queued is abandoned.
                    if scheduler.state().n_running() == 0 {
                        if scheduler.drop_head().is_some() {
                            expected -= 1;
                            continue;
                        }
                        if scheduler.queue().fully_drained() {
                            // Spurious timeout: arrivals still in flight.
                            continue;
                        }
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }

            for outcome in scheduler.run_iteration() {
                if let PlacementOutcome::Placed { spec, .. } = outcome {
                    let alloc = scheduler
                        .state()
                        .allocation(spec.id)
                        .expect("just placed")
                        .clone();
                    let now = clock.now_sim();
                    placed_at.insert(spec.id, now);
                    slowdowns.write().insert(spec.id, 0.0);
                    workers.push(self.spawn_worker(
                        &alloc,
                        &clock,
                        &counters,
                        &slowdowns,
                        &cancelled,
                        tx.clone(),
                    ));
                }
            }
            self.refresh_slowdowns(&scheduler, &slowdowns);
        }

        drop(tx);
        stop.store(true, Ordering::Relaxed);
        injector.join().expect("injector thread");
        canceller.join().expect("canceller thread");
        for w in workers {
            w.join().expect("worker thread");
        }
        let bandwidth = monitor.join().expect("monitor thread");

        let makespan_s = records.iter().map(|r| r.finished_at_s).fold(0.0, f64::max);
        ProtoResult {
            policy: self.config.policy.kind,
            records,
            cancelled: cancelled_jobs,
            bandwidth,
            makespan_s,
            slo_violations: scheduler.slo_violations(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_worker(
        &self,
        alloc: &Allocation,
        clock: &ScaledClock,
        counters: &Arc<LinkCounters>,
        slowdowns: &Arc<RwLock<HashMap<JobId, f64>>>,
        cancelled: &Arc<RwLock<HashSet<JobId>>>,
        events: crossbeam::channel::Sender<Event>,
    ) -> JoinHandle<()> {
        let perf = PlacementPerf::evaluate_cluster(&self.cluster, &alloc.gpus);
        let iter = match (&alloc.spec.comm_graph, alloc.is_single_node()) {
            (Some(graph), true) => {
                let machine = alloc.gpus[0].machine;
                let local: Vec<_> = alloc.gpus.iter().map(|g| g.gpu).collect();
                gts_perf::placement::graph_iter_time(
                    self.cluster.machine(machine),
                    alloc.spec.model,
                    alloc.spec.batch.representative_batch(),
                    graph,
                    &local,
                )
            }
            _ => perf.iter_time(alloc.spec.model, alloc.spec.batch.representative_batch()),
        };
        let params = WorkerParams {
            job: alloc.spec.id,
            machine: alloc.gpus[0].machine.index(),
            iter,
            route: perf.route,
            total_solo_s: f64::from(alloc.spec.iterations) * iter.total_s(),
            dram_demand_gbs: alloc.spec.bw_demand_gbs,
            clock: clock.clone(),
            counters: Arc::clone(counters),
            slowdowns: Arc::clone(slowdowns),
            cancelled: Arc::clone(cancelled),
            events,
        };
        std::thread::spawn(move || run_worker(params))
    }

    /// Re-derives every running job's slowdown from the Fig. 6 model.
    fn refresh_slowdowns(&self, scheduler: &Scheduler, table: &Arc<RwLock<HashMap<JobId, f64>>>) {
        let allocs: Vec<&Allocation> = scheduler.state().running().collect();
        let mut fresh = HashMap::with_capacity(allocs.len());
        for victim in &allocs {
            let corunners: Vec<_> = allocs
                .iter()
                .filter(|o| o.spec.id != victim.spec.id)
                .filter_map(|o| {
                    let factor = max_domain_factor(victim, o, &self.cluster);
                    (factor > 0.0).then_some((o.spec.model, o.spec.batch, factor))
                })
                .collect();
            fresh.insert(
                victim.spec.id,
                total_slowdown((victim.spec.model, victim.spec.batch), &corunners),
            );
        }
        *table.write() = fresh;
    }

    fn record_for(&self, alloc: Allocation, placed_at_s: f64, finished_at_s: f64) -> JobRecord {
        let ideal = self
            .cluster
            .machines()
            .filter(|&m| self.cluster.machine(m).n_gpus() >= alloc.spec.n_gpus as usize)
            .map(|m| ideal_duration_s(&alloc.spec, self.cluster.machine(m)))
            .fold(f64::INFINITY, f64::min);
        JobRecord {
            placed_at_s,
            finished_at_s,
            gpus: alloc.gpus,
            utility: alloc.utility,
            slo_violated: alloc.utility + 1e-9 < alloc.spec.min_utility,
            ideal_duration_s: ideal,
            postponements: 0, // filled by the daemon loop below when known
            restarts: 0,
            spec: alloc.spec,
        }
    }
}

/// Strongest bus-domain coupling between two allocations (same logic as the
/// simulator's, over scheduler allocations).
fn max_domain_factor(a: &Allocation, b: &Allocation, cluster: &ClusterTopology) -> f64 {
    let mut factor: f64 = 0.0;
    for machine in a.machines() {
        let ga = a.gpus_on(machine);
        let gb = b.gpus_on(machine);
        if ga.is_empty() || gb.is_empty() {
            continue;
        }
        factor = factor.max(gts_perf::domain_factor(cluster.machine(machine), &ga, &gb));
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};
    use gts_sched::PolicyKind;
    use gts_topo::power8_minsky;

    fn prototype(kind: PolicyKind) -> Prototype {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
        Prototype::new(cluster, profiles, ProtoConfig::new(Policy::new(kind)))
    }

    fn quick_job(id: u64, gpus: u32, arrival: f64, iters: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus)
            .arriving_at(arrival)
            .with_iterations(iters)
            .with_min_utility(if gpus > 1 { 0.5 } else { 0.3 })
    }

    #[test]
    fn single_job_completes_with_accurate_timing() {
        let p = prototype(PolicyKind::TopoAware);
        let res = p.run(vec![quick_job(0, 2, 0.0, 200)]);
        assert_eq!(res.records.len(), 1);
        let r = &res.records[0];
        // 200 iterations × 74.9 ms ≈ 15 s of simulated execution; thread
        // scheduling jitter at the fast scale warrants a loose band.
        assert!(
            (10.0..25.0).contains(&r.execution_s()),
            "got {}",
            r.execution_s()
        );
        assert_eq!(res.slo_violations, 0);
    }

    #[test]
    fn two_jobs_share_the_machine_and_both_finish() {
        let p = prototype(PolicyKind::TopoAware);
        let res = p.run(vec![
            quick_job(0, 2, 0.0, 150),
            quick_job(1, 2, 0.0, 150),
        ]);
        assert_eq!(res.records.len(), 2);
        // They ran concurrently: makespan well under the serial sum.
        let serial: f64 = res.records.iter().map(|r| r.execution_s()).sum();
        assert!(res.makespan_s < serial * 0.8, "no concurrency observed");
    }

    #[test]
    fn bandwidth_monitor_sees_p2p_traffic_near_40_gbs() {
        let p = prototype(PolicyKind::TopoAware);
        let res = p.run(vec![quick_job(0, 2, 0.0, 400)]);
        // A packed tiny-batch AlexNet saturates NVLink: Fig. 5 says ≈40 GB/s.
        let peak = res.peak_p2p_gbs();
        assert!((30.0..50.0).contains(&peak), "got {peak}");
    }

    #[test]
    fn queued_job_waits_then_runs() {
        let p = prototype(PolicyKind::Fcfs);
        let res = p.run(vec![
            quick_job(0, 4, 0.0, 120),
            quick_job(1, 4, 1.0, 120),
        ]);
        let r1 = res.record(JobId(1)).unwrap();
        assert!(r1.waiting_s() > 1.0, "got {}", r1.waiting_s());
    }

    #[test]
    fn oversized_job_is_skipped_not_hung() {
        let p = prototype(PolicyKind::Fcfs);
        let res = p.run(vec![
            quick_job(0, 8, 0.0, 10), // no machine has 8 GPUs
            quick_job(1, 1, 0.0, 100),
        ]);
        assert_eq!(res.records.len(), 1);
        assert_eq!(res.records[0].spec.id, JobId(1));
    }
}
