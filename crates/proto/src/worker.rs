//! Job worker threads — the stand-in for a Caffe training process.
//!
//! A worker burns down its job's work stock in small wall-clock chunks.
//! Each chunk it (a) reads its current interference slowdown from the
//! shared table the daemon maintains, (b) advances `dt / (1 + slowdown)`
//! solo-seconds of progress, and (c) publishes the bandwidth its links are
//! carrying to the machine's [`LinkCounters`] as a *rate*, which the
//! counters integrate continuously — so the monitor's per-second windows
//! read true GB/s regardless of worker chunking. When the stock is gone
//! the worker retires its rates and reports completion over the event
//! channel.

use crate::clock::ScaledClock;
use crate::counters::LinkCounters;
use crate::daemon::Event;
use crossbeam::channel::Sender;
use gts_job::JobId;
use gts_perf::{sampled_bandwidth_gbs, IterTime, RouteClass};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Everything a worker thread needs to execute one placed job.
pub struct WorkerParams {
    /// The job being executed.
    pub job: JobId,
    /// Machine hosting the job's (first) GPUs, for counter attribution.
    pub machine: usize,
    /// Solo per-iteration profile under the granted placement.
    pub iter: IterTime,
    /// Worst-pair route class of the placement.
    pub route: RouteClass,
    /// Total work, in solo-execution seconds.
    pub total_solo_s: f64,
    /// Declared host memory-bandwidth demand (GB/s) — fed to the DRAM
    /// counter (the Perfmon2 stand-in).
    pub dram_demand_gbs: f64,
    /// The experiment clock.
    pub clock: ScaledClock,
    /// Shared link counters.
    pub counters: Arc<LinkCounters>,
    /// Shared slowdown table, updated by the daemon on every state change.
    pub slowdowns: Arc<RwLock<HashMap<JobId, f64>>>,
    /// Jobs the daemon has cancelled; members stop without reporting
    /// completion.
    pub cancelled: Arc<RwLock<HashSet<JobId>>>,
    /// Completion events back to the daemon.
    pub events: Sender<Event>,
}

/// Wall-clock chunk length workers sleep per step.
const CHUNK: Duration = Duration::from_micros(500);

/// Runs one job to completion (blocking; spawn on a dedicated thread).
pub fn run_worker(p: WorkerParams) {
    let mut remaining = p.total_solo_s;
    let mut last_sim = p.clock.now_sim();
    // The per-channel rates this worker has published so far; retired on
    // every exit path so the machine aggregate stays exact.
    let (mut pub_p2p, mut pub_host, mut pub_dram) = (0.0f64, 0.0f64, 0.0f64);
    let mut torn_down = false;
    while remaining > 0.0 {
        if p.cancelled.read().contains(&p.job) {
            torn_down = true; // daemon tore it down; no completion event
            break;
        }
        // Publish the bandwidth this job drives at its current slowdown.
        let slowdown = p.slowdowns.read().get(&p.job).copied().unwrap_or(0.0);
        let bw = sampled_bandwidth_gbs(p.iter, slowdown);
        let (want_p2p, want_host) = if p.iter.comm_s > 0.0 && p.route == RouteClass::P2p {
            (bw, 0.0)
        } else {
            (0.0, bw)
        };
        if want_p2p != pub_p2p || want_host != pub_host || p.dram_demand_gbs != pub_dram {
            p.counters.update_rates(
                p.machine,
                last_sim,
                want_p2p - pub_p2p,
                want_host - pub_host,
                p.dram_demand_gbs - pub_dram,
            );
            (pub_p2p, pub_host, pub_dram) = (want_p2p, want_host, p.dram_demand_gbs);
        }

        std::thread::sleep(CHUNK);
        let now_sim = p.clock.now_sim();
        let dt_sim = (now_sim - last_sim).max(0.0);
        last_sim = now_sim;
        remaining -= dt_sim / (1.0 + slowdown);
    }
    let finished_at = p.clock.now_sim();
    p.counters
        .update_rates(p.machine, finished_at, -pub_p2p, -pub_host, -pub_dram);
    if torn_down {
        return;
    }
    // The daemon may have shut down if it already saw every completion —
    // ignore a closed channel.
    let _ = p.events.send(Event::Finished { job: p.job, at_sim_s: finished_at });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeScale;
    use crossbeam::channel::unbounded;

    fn params(total_solo_s: f64, slowdown: f64) -> (WorkerParams, crossbeam::channel::Receiver<Event>) {
        let (tx, rx) = unbounded();
        let slowdowns = Arc::new(RwLock::new(HashMap::new()));
        slowdowns.write().insert(JobId(0), slowdown);
        let p = WorkerParams {
            job: JobId(0),
            machine: 0,
            iter: IterTime { compute_s: 0.025, comm_s: 0.050 },
            route: RouteClass::P2p,
            total_solo_s,
            dram_demand_gbs: 0.0,
            clock: ScaledClock::start(TimeScale::new(0.001)),
            counters: Arc::new(LinkCounters::new(1)),
            slowdowns,
            cancelled: Arc::new(RwLock::new(HashSet::new())),
            events: tx,
        };
        (p, rx)
    }

    #[test]
    fn worker_finishes_and_reports() {
        let (p, rx) = params(20.0, 0.0);
        let counters = Arc::clone(&p.counters);
        let handle = std::thread::spawn(move || run_worker(p));
        let event = rx.recv_timeout(Duration::from_secs(5)).expect("completion event");
        match event {
            Event::Finished { job, at_sim_s } => {
                assert_eq!(job, JobId(0));
                assert!(at_sim_s >= 20.0, "finished too early: {at_sim_s}");
                assert!(at_sim_s < 60.0, "finished far too late: {at_sim_s}");
            }
            other => panic!("unexpected {other:?}"),
        }
        handle.join().unwrap();
        let (p2p, host) = counters.totals(0);
        assert!(p2p > 0, "P2P traffic must have been recorded");
        assert_eq!(host, 0);
    }

    #[test]
    fn slowdown_stretches_wall_time() {
        let (p_fast, rx_fast) = params(15.0, 0.0);
        let (p_slow, rx_slow) = params(15.0, 1.0);
        std::thread::spawn(move || run_worker(p_fast));
        std::thread::spawn(move || run_worker(p_slow));
        let t_fast = match rx_fast.recv_timeout(Duration::from_secs(5)).unwrap() {
            Event::Finished { at_sim_s, .. } => at_sim_s,
            other => panic!("unexpected {other:?}"),
        };
        let t_slow = match rx_slow.recv_timeout(Duration::from_secs(5)).unwrap() {
            Event::Finished { at_sim_s, .. } => at_sim_s,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            t_slow > t_fast * 1.5,
            "100 % slowdown should roughly double runtime: fast {t_fast}, slow {t_slow}"
        );
    }

    #[test]
    fn cancelled_worker_exits_without_reporting() {
        let (p, rx) = params(1_000.0, 0.0); // would run ~1000 sim-seconds
        let cancelled = Arc::clone(&p.cancelled);
        let handle = std::thread::spawn(move || run_worker(p));
        std::thread::sleep(Duration::from_millis(5));
        cancelled.write().insert(JobId(0));
        handle.join().unwrap();
        assert!(
            rx.try_recv().is_err(),
            "cancelled workers must not send completion events"
        );
    }

    #[test]
    fn dram_demand_feeds_the_pmu_counter() {
        let (mut p, rx) = params(10.0, 0.0);
        p.dram_demand_gbs = 50.0;
        let counters = Arc::clone(&p.counters);
        std::thread::spawn(move || run_worker(p));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let dram = counters.dram_total(0);
        // ≈50 GB/s × ≈10 simulated seconds, within scheduling slack.
        assert!(dram > 300_000_000_000, "got {dram}");
    }

    #[test]
    fn host_routed_traffic_lands_in_the_host_channel() {
        let (mut p, rx) = params(10.0, 0.0);
        p.route = RouteClass::HostRouted;
        let counters = Arc::clone(&p.counters);
        std::thread::spawn(move || run_worker(p));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let (p2p, host) = counters.totals(0);
        assert_eq!(p2p, 0);
        assert!(host > 0);
    }
}
