//! Scaled experiment clock.
//!
//! The prototype executes a scenario defined in *simulated seconds* (job
//! arrivals at 0.51 s, 15.03 s, ... as in Table 1) in compressed wall-clock
//! time. A [`TimeScale`] of 0.002 runs 1 simulated second in 2 wall
//! milliseconds.

use std::time::{Duration, Instant};

/// Wall-seconds per simulated second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale(f64);

impl TimeScale {
    /// Creates a scale; must be positive and finite.
    pub fn new(wall_per_sim: f64) -> Self {
        assert!(
            wall_per_sim.is_finite() && wall_per_sim > 0.0,
            "time scale must be positive, got {wall_per_sim}"
        );
        Self(wall_per_sim)
    }

    /// Real time (1 sim second = 1 wall second).
    pub fn real_time() -> Self {
        Self(1.0)
    }

    /// Default test scale: 1 sim second = 2 wall milliseconds.
    pub fn fast() -> Self {
        Self(0.002)
    }

    /// Converts a simulated duration to wall time.
    pub fn to_wall(self, sim_s: f64) -> Duration {
        Duration::from_secs_f64((sim_s * self.0).max(0.0))
    }

    /// Converts elapsed wall time to simulated seconds.
    pub fn to_sim(self, wall: Duration) -> f64 {
        wall.as_secs_f64() / self.0
    }
}

/// A monotonic clock reporting simulated time since construction.
#[derive(Debug, Clone)]
pub struct ScaledClock {
    start: Instant,
    scale: TimeScale,
}

impl ScaledClock {
    /// Starts the clock now.
    pub fn start(scale: TimeScale) -> Self {
        Self { start: Instant::now(), scale }
    }

    /// Simulated seconds elapsed since start.
    pub fn now_sim(&self) -> f64 {
        self.scale.to_sim(self.start.elapsed())
    }

    /// The configured scale.
    pub fn scale(&self) -> TimeScale {
        self.scale
    }

    /// Sleeps until the given simulated timestamp (no-op if already past).
    pub fn sleep_until_sim(&self, sim_s: f64) {
        let target = self.scale.to_wall(sim_s);
        let elapsed = self.start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let s = TimeScale::new(0.01);
        assert_eq!(s.to_wall(100.0), Duration::from_secs_f64(1.0));
        assert!((s.to_sim(Duration::from_millis(10)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clock_advances_in_sim_time() {
        let c = ScaledClock::start(TimeScale::new(0.001));
        std::thread::sleep(Duration::from_millis(5));
        let t = c.now_sim();
        assert!(t >= 4.0, "got {t}");
    }

    #[test]
    fn sleep_until_sim_reaches_target() {
        let c = ScaledClock::start(TimeScale::new(0.001));
        c.sleep_until_sim(8.0);
        assert!(c.now_sim() >= 8.0);
        // Already-past targets return immediately.
        let before = Instant::now();
        c.sleep_until_sim(1.0);
        assert!(before.elapsed() < Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        TimeScale::new(0.0);
    }
}
