//! Per-machine link-traffic counters — the `nvidia-smi nvlink` stand-in.
//!
//! The monitor thread reads cumulative totals once per scaled second and
//! differentiates to GB/s, exactly how the paper computes NVLink bandwidth
//! from transmit counters (§5.1). Three channels per machine: P2P traffic
//! (direct NVLink / switch routes), host-routed traffic (GPU–CPU–GPU) and
//! DRAM (the Perfmon2/PMU stand-in — §5.1 computes DRAM bandwidth "using
//! the Power8 performance counters").
//!
//! Workers report *rates*, not byte blobs: each publishes its current
//! per-channel GB/s (via [`LinkCounters::update_rates`]) and the counter
//! integrates the machine's aggregate rate continuously over simulated
//! time. A blob design — each worker adding `rate × chunk` bytes whenever
//! its chunk happens to end — made the cumulative count advance in stair
//! steps, so a monitor window that caught an extra step read up to
//! `1 + chunk/window` times the true bandwidth. Continuous integration
//! gives every window exactly the flow that crossed it, whatever the
//! worker chunking. One-shot byte adds ([`LinkCounters::add_p2p`] and
//! friends) remain for instantaneous transfers.

use parking_lot::Mutex;

/// One channel's integrated traffic: settled bytes plus the aggregate rate
/// all workers are currently driving through it.
#[derive(Debug, Default, Clone, Copy)]
struct Flow {
    bytes: f64,
    rate_gbs: f64,
    last_t_s: f64,
}

impl Flow {
    /// Integrates the current rate up to `t_s`. Out-of-order timestamps
    /// (workers race by a chunk) settle nothing rather than going negative.
    fn settle(&mut self, t_s: f64) {
        if t_s > self.last_t_s {
            self.bytes += self.rate_gbs * (t_s - self.last_t_s) * 1e9;
            self.last_t_s = t_s;
        }
    }

    fn total_at(&self, t_s: f64) -> u64 {
        let extra = self.rate_gbs * (t_s - self.last_t_s).max(0.0) * 1e9;
        (self.bytes + extra).max(0.0) as u64
    }
}

#[derive(Debug, Default)]
struct MachineFlows {
    p2p: Flow,
    host: Flow,
    dram: Flow,
}

/// Cumulative transferred bytes per machine, split by route class.
#[derive(Debug)]
pub struct LinkCounters {
    machines: Vec<Mutex<MachineFlows>>,
}

impl LinkCounters {
    /// Counters for `n_machines` machines, all zero.
    pub fn new(n_machines: usize) -> Self {
        Self {
            machines: (0..n_machines).map(|_| Mutex::new(MachineFlows::default())).collect(),
        }
    }

    /// Number of machines covered.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Adds P2P bytes on one machine as an instantaneous transfer.
    pub fn add_p2p(&self, machine: usize, bytes: u64) {
        self.machines[machine].lock().p2p.bytes += bytes as f64;
    }

    /// Adds host-routed bytes on one machine as an instantaneous transfer.
    pub fn add_host(&self, machine: usize, bytes: u64) {
        self.machines[machine].lock().host.bytes += bytes as f64;
    }

    /// Adds DRAM traffic (input pipeline / staging) on one machine as an
    /// instantaneous transfer.
    pub fn add_dram(&self, machine: usize, bytes: u64) {
        self.machines[machine].lock().dram.bytes += bytes as f64;
    }

    /// Changes a machine's aggregate channel rates by the given deltas at
    /// simulated time `t_s`. Traffic already flowing is settled first, so
    /// a worker adjusting its published rate never rewrites history. A
    /// worker finishing (or torn down) must retire its contribution by
    /// passing the negated rates it last published.
    pub fn update_rates(
        &self,
        machine: usize,
        t_s: f64,
        d_p2p_gbs: f64,
        d_host_gbs: f64,
        d_dram_gbs: f64,
    ) {
        let mut flows = self.machines[machine].lock();
        let MachineFlows { p2p, host, dram } = &mut *flows;
        for (flow, delta) in [(p2p, d_p2p_gbs), (host, d_host_gbs), (dram, d_dram_gbs)] {
            flow.settle(t_s);
            flow.rate_gbs = (flow.rate_gbs + delta).max(0.0);
        }
    }

    /// Cumulative `(p2p, host)` bytes on one machine, as settled so far.
    pub fn totals(&self, machine: usize) -> (u64, u64) {
        let flows = self.machines[machine].lock();
        (flows.p2p.total_at(flows.p2p.last_t_s), flows.host.total_at(flows.host.last_t_s))
    }

    /// Cumulative `(p2p, host)` bytes on one machine at simulated time
    /// `t_s`, including traffic still flowing at the current rates — what
    /// the bandwidth monitor reads each window.
    pub fn totals_at(&self, machine: usize, t_s: f64) -> (u64, u64) {
        let flows = self.machines[machine].lock();
        (flows.p2p.total_at(t_s), flows.host.total_at(t_s))
    }

    /// Cumulative DRAM bytes on one machine, as settled so far.
    pub fn dram_total(&self, machine: usize) -> u64 {
        let flows = self.machines[machine].lock();
        flows.dram.total_at(flows.dram.last_t_s)
    }

    /// Cumulative DRAM bytes on one machine at simulated time `t_s`.
    pub fn dram_total_at(&self, machine: usize, t_s: f64) -> u64 {
        self.machines[machine].lock().dram.total_at(t_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let c = LinkCounters::new(2);
        c.add_p2p(0, 100);
        c.add_p2p(0, 50);
        c.add_host(1, 7);
        assert_eq!(c.totals(0), (150, 0));
        assert_eq!(c.totals(1), (0, 7));
        assert_eq!(c.n_machines(), 2);
        c.add_dram(1, 99);
        assert_eq!(c.dram_total(1), 99);
        assert_eq!(c.dram_total(0), 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let c = Arc::new(LinkCounters::new(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add_p2p(0, 1);
                        c.add_host(0, 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.totals(0), (8000, 16000));
    }

    #[test]
    fn rates_integrate_continuously_over_time() {
        let c = LinkCounters::new(1);
        c.update_rates(0, 0.0, 40.0, 0.0, 10.0);
        // Half a second in: 20 GB of P2P, 5 GB of DRAM — no blob steps.
        assert_eq!(c.totals_at(0, 0.5), (20_000_000_000, 0));
        assert_eq!(c.dram_total_at(0, 0.5), 5_000_000_000);
        assert_eq!(c.totals_at(0, 1.0), (40_000_000_000, 0));
    }

    #[test]
    fn rate_changes_settle_earlier_traffic_first() {
        let c = LinkCounters::new(1);
        c.update_rates(0, 0.0, 40.0, 0.0, 0.0);
        // Rate drops at t=1: the first second's 40 GB must stay counted.
        c.update_rates(0, 1.0, -30.0, 0.0, 0.0);
        assert_eq!(c.totals_at(0, 2.0), (50_000_000_000, 0));
    }

    #[test]
    fn retiring_a_rate_freezes_the_total() {
        let c = LinkCounters::new(1);
        c.update_rates(0, 0.0, 0.0, 25.0, 0.0);
        c.update_rates(0, 2.0, 0.0, -25.0, 0.0);
        assert_eq!(c.totals_at(0, 10.0), (0, 50_000_000_000));
        // Negative aggregates clamp to zero rather than draining bytes.
        c.update_rates(0, 10.0, 0.0, -5.0, 0.0);
        assert_eq!(c.totals_at(0, 20.0), (0, 50_000_000_000));
    }

    #[test]
    fn two_workers_on_one_machine_sum_their_rates() {
        let c = LinkCounters::new(1);
        c.update_rates(0, 0.0, 10.0, 0.0, 0.0);
        c.update_rates(0, 0.0, 15.0, 0.0, 0.0);
        assert_eq!(c.totals_at(0, 1.0), (25_000_000_000, 0));
    }
}
