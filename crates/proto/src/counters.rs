//! Per-machine link-traffic counters — the `nvidia-smi nvlink` stand-in.
//!
//! Workers add the bytes they "transfer" each chunk; the monitor thread
//! reads cumulative totals once per scaled second and differentiates to
//! GB/s, exactly how the paper computes NVLink bandwidth from transmit
//! counters (§5.1). Two channels per machine: P2P traffic (direct NVLink /
//! switch routes) and host-routed traffic (GPU–CPU–GPU).

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative transferred bytes per machine, split by route class, plus a
/// DRAM channel — the Perfmon2/PMU stand-in (§5.1 computes DRAM bandwidth
/// "using the Power8 performance counters"). Workers feed the DRAM channel
/// with their declared input-pipeline demand.
#[derive(Debug)]
pub struct LinkCounters {
    p2p: Vec<AtomicU64>,
    host: Vec<AtomicU64>,
    dram: Vec<AtomicU64>,
}

impl LinkCounters {
    /// Counters for `n_machines` machines, all zero.
    pub fn new(n_machines: usize) -> Self {
        Self {
            p2p: (0..n_machines).map(|_| AtomicU64::new(0)).collect(),
            host: (0..n_machines).map(|_| AtomicU64::new(0)).collect(),
            dram: (0..n_machines).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of machines covered.
    pub fn n_machines(&self) -> usize {
        self.p2p.len()
    }

    /// Adds P2P bytes on one machine.
    pub fn add_p2p(&self, machine: usize, bytes: u64) {
        self.p2p[machine].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds host-routed bytes on one machine.
    pub fn add_host(&self, machine: usize, bytes: u64) {
        self.host[machine].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds DRAM traffic (input pipeline / staging) on one machine.
    pub fn add_dram(&self, machine: usize, bytes: u64) {
        self.dram[machine].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Cumulative `(p2p, host)` bytes on one machine.
    pub fn totals(&self, machine: usize) -> (u64, u64) {
        (
            self.p2p[machine].load(Ordering::Relaxed),
            self.host[machine].load(Ordering::Relaxed),
        )
    }

    /// Cumulative DRAM bytes on one machine.
    pub fn dram_total(&self, machine: usize) -> u64 {
        self.dram[machine].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let c = LinkCounters::new(2);
        c.add_p2p(0, 100);
        c.add_p2p(0, 50);
        c.add_host(1, 7);
        assert_eq!(c.totals(0), (150, 0));
        assert_eq!(c.totals(1), (0, 7));
        assert_eq!(c.n_machines(), 2);
        c.add_dram(1, 99);
        assert_eq!(c.dram_total(1), 99);
        assert_eq!(c.dram_total(0), 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let c = Arc::new(LinkCounters::new(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add_p2p(0, 1);
                        c.add_host(0, 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.totals(0), (8000, 16000));
    }
}
