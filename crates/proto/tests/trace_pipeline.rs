//! §5.3's exact workflow: run the prototype, export its log as a trace
//! file, parse it back and feed the trace-driven simulator.

use gts_job::{scenario::table1, Trace};
use gts_perf::ProfileLibrary;
use gts_proto::{ProtoConfig, Prototype, TimeScale};
use gts_sched::{Policy, PolicyKind};
use gts_sim::engine::simulate;
use gts_topo::{power8_minsky, ClusterTopology};
use std::sync::Arc;

#[test]
fn prototype_logs_replay_through_the_simulator() {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));

    // 1. Prototype experiment.
    let proto = Prototype::new(
        Arc::clone(&cluster),
        Arc::clone(&profiles),
        ProtoConfig::with_scale(Policy::new(PolicyKind::TopoAwareP), TimeScale::new(0.002)),
    )
    .run(table1());

    // 2. Export → file → parse (the trace-file round trip).
    let trace = proto.to_trace("prototype run, TOPO-AWARE-P");
    assert_eq!(trace.len(), 6);
    let dir = std::env::temp_dir().join("gts-proto-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prototype.json");
    trace.save(&path).unwrap();
    let parsed = Trace::load(&path).unwrap();
    assert_eq!(parsed, trace);
    std::fs::remove_file(&path).ok();

    // 3. Trace-driven simulation reproduces the prototype's behaviour.
    let sim = simulate(
        cluster,
        profiles,
        Policy::new(PolicyKind::TopoAwareP),
        parsed.jobs,
    );
    assert_eq!(sim.records.len(), proto.records.len());
    let rel = (sim.makespan_s - proto.makespan_s).abs() / proto.makespan_s;
    assert!(rel < 0.15, "makespan rel error {rel:.3}");
    assert_eq!(sim.slo_violations, proto.slo_violations);
}
