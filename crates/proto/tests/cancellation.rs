//! Operator cancellations under real concurrency: scripted cancel events
//! tear down queued and running jobs without wedging the daemon.

use gts_job::{scenario::table1, JobId};
use gts_perf::ProfileLibrary;
use gts_proto::{ProtoConfig, Prototype, TimeScale};
use gts_sched::{Policy, PolicyKind};
use gts_topo::{power8_minsky, ClusterTopology};
use std::sync::Arc;

fn setup() -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    (Arc::new(ClusterTopology::homogeneous(machine, 1)), profiles)
}

#[test]
fn cancelling_a_running_job_frees_its_gpus_for_the_queue() {
    let (cluster, profiles) = setup();
    let mut config =
        ProtoConfig::with_scale(Policy::new(PolicyKind::TopoAwareP), TimeScale::new(0.002));
    // Kill Job 0 (a long 1-GPU job) shortly after the whole scenario is in
    // flight; everything else must still complete.
    config.cancellations = vec![(40.0, JobId(0))];
    let res = Prototype::new(cluster, profiles, config).run(table1());

    assert_eq!(res.cancelled, vec![JobId(0)]);
    assert_eq!(res.records.len(), 5, "the other five jobs complete");
    assert!(res.record(JobId(0)).is_none());
    for id in [1u64, 2, 3, 4, 5] {
        assert!(res.record(JobId(id)).is_some(), "J{id} missing");
    }
    // With Job 0's socket freed early, Job 3 starts earlier than in the
    // uncancelled run (≈75 s).
    let j3 = res.record(JobId(3)).unwrap();
    assert!(j3.placed_at_s < 70.0, "got {}", j3.placed_at_s);
}

#[test]
fn cancelling_a_queued_job_just_removes_it() {
    let (cluster, profiles) = setup();
    let mut config =
        ProtoConfig::with_scale(Policy::new(PolicyKind::Fcfs), TimeScale::new(0.002));
    // Job 5 arrives at 29.89 s and waits in the FCFS queue for a long time;
    // cancel it while it still waits.
    config.cancellations = vec![(35.0, JobId(5))];
    let res = Prototype::new(cluster, profiles, config).run(table1());

    assert_eq!(res.cancelled, vec![JobId(5)]);
    assert_eq!(res.records.len(), 5);
    assert!(res.record(JobId(5)).is_none());
}

#[test]
fn cancelling_an_unknown_job_is_harmless() {
    let (cluster, profiles) = setup();
    let mut config =
        ProtoConfig::with_scale(Policy::new(PolicyKind::TopoAware), TimeScale::new(0.002));
    config.cancellations = vec![(10.0, JobId(999))];
    let res = Prototype::new(cluster, profiles, config).run(table1());
    assert!(res.cancelled.is_empty());
    assert_eq!(res.records.len(), 6);
}
