//! Fig. 9 extended: prototype-vs-simulator agreement on *generated*
//! workloads, not just the hand-built Table 1 scenario.

use gts_job::WorkloadGenerator;
use gts_perf::ProfileLibrary;
use gts_proto::{ProtoConfig, Prototype, TimeScale};
use gts_sched::{Policy, PolicyKind};
use gts_sim::engine::simulate;
use gts_topo::{power8_minsky, ClusterTopology};
use std::sync::Arc;

#[test]
fn simulator_tracks_prototype_on_generated_workloads() {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 2));

    let mut gen = WorkloadGenerator::with_defaults(2024);
    let trace: Vec<_> = gen
        .generate(14)
        .into_iter()
        .map(|mut j| {
            // Keep the run short enough for a compressed-time prototype.
            j.iterations = 120;
            j
        })
        .collect();

    for kind in [PolicyKind::TopoAwareP, PolicyKind::BestFit] {
        let sim = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(kind),
            trace.clone(),
        );
        let proto = Prototype::new(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            ProtoConfig::with_scale(Policy::new(kind), TimeScale::new(0.002)),
        )
        .run(trace.clone());

        assert_eq!(proto.records.len(), sim.records.len(), "{kind}");
        let mut total_rel = 0.0;
        for sr in &sim.records {
            let pr = proto.record(sr.spec.id).expect("job ran in prototype");
            let rel = (pr.finished_at_s - sr.finished_at_s).abs() / sr.finished_at_s.max(1.0);
            total_rel += rel;
            assert!(
                rel < 0.25,
                "{kind} {}: proto {:.1}s vs sim {:.1}s",
                sr.spec.id,
                pr.finished_at_s,
                sr.finished_at_s
            );
        }
        let mean_rel = total_rel / sim.records.len() as f64;
        assert!(mean_rel < 0.10, "{kind}: mean rel error {mean_rel:.3}");
        assert_eq!(proto.slo_violations, sim.slo_violations, "{kind}");
    }
}
