//! Fig. 9 — validating the simulator against the prototype.
//!
//! "The algorithms behave very similarly in both prototype and the
//! simulation, despite some expected small differences, which are
//! acceptable when considering the standard deviations." We run the
//! Table 1 scenario through both and require per-job completion times to
//! agree within a tolerance that covers thread-scheduling jitter at the
//! compressed time scale.

use gts_job::scenario::table1;
use gts_perf::ProfileLibrary;
use gts_proto::{ProtoConfig, Prototype, TimeScale};
use gts_sched::{Policy, PolicyKind};
use gts_sim::engine::simulate;
use gts_topo::{power8_minsky, ClusterTopology};
use std::sync::Arc;

fn setup() -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    (cluster, profiles)
}

#[test]
fn prototype_and_simulation_agree_on_the_fig8_scenario() {
    let (cluster, profiles) = setup();
    for kind in [PolicyKind::TopoAwareP, PolicyKind::Fcfs] {
        let sim = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(kind),
            table1(),
        );
        let proto = Prototype::new(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            ProtoConfig::with_scale(Policy::new(kind), TimeScale::new(0.002)),
        )
        .run(table1());

        assert_eq!(proto.records.len(), sim.records.len(), "{kind}");
        for sr in &sim.records {
            let pr = proto.record(sr.spec.id).expect("job ran in the prototype");
            let rel = (pr.finished_at_s - sr.finished_at_s).abs() / sr.finished_at_s.max(1.0);
            assert!(
                rel < 0.15,
                "{kind} {}: prototype finished at {:.1}s, simulation at {:.1}s (rel {:.2})",
                sr.spec.id,
                pr.finished_at_s,
                sr.finished_at_s,
                rel
            );
        }
        // Makespans track each other.
        let rel = (proto.makespan_s - sim.makespan_s).abs() / sim.makespan_s;
        assert!(rel < 0.15, "{kind} makespan rel error {rel:.3}");
        // SLO accounting matches.
        assert_eq!(proto.slo_violations, sim.slo_violations, "{kind}");
    }
}

#[test]
fn prototype_reproduces_the_policy_ordering() {
    let (cluster, profiles) = setup();
    let run = |kind: PolicyKind| {
        Prototype::new(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            ProtoConfig::with_scale(Policy::new(kind), TimeScale::new(0.002)),
        )
        .run(table1())
        .makespan_s
    };
    let tap = run(PolicyKind::TopoAwareP);
    let bf = run(PolicyKind::BestFit);
    assert!(
        bf / tap > 1.1,
        "TOPO-AWARE-P should beat BF by ≈1.3× in the prototype too: {bf:.1} vs {tap:.1}"
    );
}
