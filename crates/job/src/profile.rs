//! The §4.2 job profile: "not only the job's communication graph but also a
//! performance model defining the level of interference the collocated jobs
//! will suffer and cause".
//!
//! Profiles are *data* here; they are produced experimentally by
//! `gts-perf`'s profiler (solo and pairwise-collocated runs, 95th percentile
//! of five executions, §5.1) and consumed by the mapping algorithm's
//! `getInter()` and by Eq. 4.

use crate::batch::BatchClass;
use crate::model::NnModel;
use serde::{Deserialize, Serialize};

/// Interference coefficients and reference timings for one (model, batch)
/// workload class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Network this profile describes.
    pub model: NnModel,
    /// Batch class this profile describes.
    pub batch: BatchClass,
    /// Per-iteration time (seconds) under the best placement (packed,
    /// P2P-capable GPUs), solo.
    pub iter_time_packed_s: f64,
    /// Per-iteration time (seconds) under the worst single-machine placement
    /// (spread across sockets), solo.
    pub iter_time_spread_s: f64,
    /// How much this workload *suffers* from bus contention, in [0, 1]
    /// (`sens` in the DESIGN.md interference model).
    pub sensitivity: f64,
    /// How much bus pressure this workload *causes*, in [0, 1].
    pub pressure: f64,
    /// Normalized communication level in [0, 1] (mirrors
    /// [`crate::graph::JobGraph::comm_level`], cached here for Eq. 2).
    pub comm_level: f64,
}

impl JobProfile {
    /// Pack-over-spread speedup this profile predicts for a solo 2-GPU run —
    /// the Fig. 4 quantity.
    pub fn pack_speedup(&self) -> f64 {
        self.iter_time_spread_s / self.iter_time_packed_s
    }

    /// Predicted slowdown this job suffers when co-located with `other`
    /// through a shared bus domain scaled by `domain_factor` (1.0 same
    /// socket, 0.35 same machine across sockets — DESIGN.md §2).
    pub fn slowdown_from(&self, other: &JobProfile, domain_factor: f64) -> f64 {
        (self.sensitivity * other.pressure * domain_factor).clamp(0.0, 1.0)
    }

    /// The Eq. 4 mean interference over a set of co-runners: the average of
    /// `solo_time / collocation_time` over this job and all running jobs,
    /// where `collocation_time = solo_time · (1 + slowdown)`. A value of 1.0
    /// means no interference; smaller is worse.
    pub fn eq4_interference(&self, corunners: &[(JobProfile, f64)]) -> f64 {
        // Contribution of this job (suffering) plus each co-runner (caused).
        let mut sum = 0.0;
        let mut suffered = 0.0;
        for (p, factor) in corunners {
            suffered += self.slowdown_from(p, *factor);
        }
        sum += 1.0 / (1.0 + suffered.min(0.75));
        for (p, factor) in corunners {
            let caused = p.slowdown_from(self, *factor);
            sum += 1.0 / (1.0 + caused.min(0.75));
        }
        sum / (corunners.len() + 1) as f64
    }

    /// Checks internal coherence of a profile.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("iter_time_packed_s", self.iter_time_packed_s),
            ("iter_time_spread_s", self.iter_time_spread_s),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.iter_time_spread_s + 1e-12 < self.iter_time_packed_s {
            return Err("spread placement cannot beat packed placement".into());
        }
        for (name, v) in [
            ("sensitivity", self.sensitivity),
            ("pressure", self.pressure),
            ("comm_level", self.comm_level),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must lie in [0,1], got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> JobProfile {
        JobProfile {
            model: NnModel::AlexNet,
            batch: BatchClass::Tiny,
            iter_time_packed_s: 0.075,
            iter_time_spread_s: 0.0975,
            sensitivity: 1.0,
            pressure: 0.30,
            comm_level: 1.0,
        }
    }

    fn big_profile() -> JobProfile {
        JobProfile {
            model: NnModel::AlexNet,
            batch: BatchClass::Big,
            iter_time_packed_s: 1.70,
            iter_time_spread_s: 1.73,
            sensitivity: 0.05,
            pressure: 0.24,
            comm_level: 0.25,
        }
    }

    #[test]
    fn pack_speedup_matches_ratio() {
        assert!((tiny_profile().pack_speedup() - 1.30).abs() < 1e-9);
    }

    #[test]
    fn interference_anchors_from_fig6() {
        let tiny = tiny_profile();
        let big = big_profile();
        // tiny | tiny ≈ 30 %.
        assert!((tiny.slowdown_from(&tiny, 1.0) - 0.30).abs() < 1e-9);
        // tiny | big ≈ 24 %.
        assert!((tiny.slowdown_from(&big, 1.0) - 0.24).abs() < 1e-9);
        // big | big ≈ 1 %.
        assert!(big.slowdown_from(&big, 1.0) < 0.02);
        // Domain factor scales it down.
        assert!(tiny.slowdown_from(&tiny, 0.35) < tiny.slowdown_from(&tiny, 1.0));
    }

    #[test]
    fn eq4_is_one_when_solo() {
        assert_eq!(tiny_profile().eq4_interference(&[]), 1.0);
    }

    #[test]
    fn eq4_decreases_with_corunners() {
        let tiny = tiny_profile();
        let one = tiny.eq4_interference(&[(tiny, 1.0)]);
        let two = tiny.eq4_interference(&[(tiny, 1.0), (tiny, 1.0)]);
        assert!(one < 1.0);
        assert!(two < one);
        assert!(one > 0.0);
    }

    #[test]
    fn validation_rules() {
        assert!(tiny_profile().validate().is_ok());

        let mut p = tiny_profile();
        p.iter_time_packed_s = -1.0;
        assert!(p.validate().is_err());

        let mut p = tiny_profile();
        p.iter_time_spread_s = p.iter_time_packed_s / 2.0;
        assert!(p.validate().is_err());

        let mut p = tiny_profile();
        p.sensitivity = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = tiny_profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: JobProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
