//! The job communication graph `A` of §4.1.1.
//!
//! "Vertexes represent GPUs and edges represent communication. Each edge has
//! an associated weight denoting the communication volume." For the
//! data-parallel Caffe workloads of the evaluation the graph is complete and
//! uniform ("all GPUs communicating between each other with the same
//! weight", §5.1) with weight 4..1 by batch class; arbitrary weighted graphs
//! are supported for model-parallel workloads (the paper's future work).

use crate::spec::JobSpec;
use serde::{Deserialize, Serialize};

/// A dense symmetric communication graph over a job's tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobGraph {
    n: usize,
    /// Row-major upper-triangular-mirrored weight matrix; `w[i*n+j]`.
    weights: Vec<f64>,
}

impl JobGraph {
    /// Complete uniform graph over `n` tasks with pairwise weight `w`.
    /// With `n == 1` the graph has a single vertex and no edges.
    pub fn uniform(n: usize, w: f64) -> Self {
        assert!(n > 0, "a job has at least one task");
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
        let mut weights = vec![w; n * n];
        for i in 0..n {
            weights[i * n + i] = 0.0;
        }
        Self { n, weights }
    }

    /// The communication graph the mapper should use for `spec`: the job's
    /// explicit graph when it declares one (model parallelism), otherwise
    /// the §5.1 data-parallel encoding — a complete graph with weight from
    /// the batch class (4 = tiny .. 1 = big); single-GPU jobs get no edges.
    pub fn from_spec(spec: &JobSpec) -> Self {
        match &spec.comm_graph {
            Some(g) => {
                debug_assert_eq!(g.n_tasks(), spec.n_gpus as usize);
                g.clone()
            }
            None => Self::uniform(spec.n_gpus as usize, spec.batch.comm_weight()),
        }
    }

    /// A pipeline (chain) graph: task `i` exchanges activations with task
    /// `i+1` only — the layer-partitioned model parallelism of §2. Cutting
    /// any single chain edge is cheap, so the mapper can split a pipeline
    /// across sockets at one boundary without hurting the rest.
    ///
    /// ```
    /// use gts_job::JobGraph;
    ///
    /// let g = JobGraph::pipeline(4, 4.0);
    /// assert_eq!(g.edge_count(), 3);
    /// assert_eq!(g.weight(1, 2), 4.0);
    /// assert_eq!(g.weight(0, 2), 0.0); // non-adjacent stages don't talk
    /// ```
    pub fn pipeline(n: usize, w: f64) -> Self {
        assert!(n > 0, "a job has at least one task");
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
        let mut weights = vec![0.0; n * n];
        for i in 0..n.saturating_sub(1) {
            weights[i * n + (i + 1)] = w;
            weights[(i + 1) * n + i] = w;
        }
        Self { n, weights }
    }

    /// A ring graph: task `i` talks to `(i±1) mod n` — the communication
    /// shape of a ring allreduce made explicit.
    pub fn ring(n: usize, w: f64) -> Self {
        assert!(n > 0, "a job has at least one task");
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
        if n <= 2 {
            return Self::uniform(n, w);
        }
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            let j = (i + 1) % n;
            weights[i * n + j] = w;
            weights[j * n + i] = w;
        }
        Self { n, weights }
    }

    /// Arbitrary symmetric weights (model parallelism). The matrix must be
    /// square; it is symmetrized by averaging and the diagonal zeroed.
    pub fn custom(matrix: Vec<Vec<f64>>) -> Self {
        let n = matrix.len();
        assert!(n > 0, "a job has at least one task");
        assert!(matrix.iter().all(|r| r.len() == n), "matrix must be square");
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    weights[i * n + j] = 0.5 * (matrix[i][j] + matrix[j][i]);
                }
            }
        }
        Self { n, weights }
    }

    /// Number of tasks (`|A|` in Algorithm 2).
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.n
    }

    /// Weight between tasks `i` and `j` (0 on the diagonal).
    #[inline]
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.n + j]
    }

    /// Number of nonzero-weight edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// Iterates nonzero edges once each as `(i, j, w)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            ((i + 1)..self.n).filter_map(move |j| {
                let w = self.weight(i, j);
                (w > 0.0).then_some((i, j, w))
            })
        })
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }

    /// Mean edge weight normalized to (0, 1] against the tiny-batch maximum
    /// of 4.0 — the §4.1.1 "normalized by the total available bandwidth"
    /// communication level. Zero for single-task jobs.
    pub fn comm_level(&self) -> f64 {
        let edges = self.edge_count();
        if edges == 0 {
            return 0.0;
        }
        (self.total_weight() / edges as f64) / 4.0
    }

    /// Largest single edge weight (0 when there are no edges).
    pub fn max_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).fold(0.0, f64::max)
    }

    /// Total weight incident to one task.
    pub fn incident_weight(&self, task: usize) -> f64 {
        (0..self.n).map(|j| self.weight(task, j)).sum()
    }

    /// Weight of the cut between a task subset and the rest: the
    /// communication volume that a partition boundary would carry.
    pub fn cut_weight(&self, in_set: &[bool]) -> f64 {
        assert_eq!(in_set.len(), self.n);
        self.edges()
            .filter(|&(i, j, _)| in_set[i] != in_set[j])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Communication weight between one task and a set of tasks.
    pub fn weight_to_set(&self, task: usize, set: &[usize]) -> f64 {
        set.iter()
            .filter(|&&t| t != task)
            .map(|&t| self.weight(task, t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchClass;
    use crate::model::NnModel;

    #[test]
    fn uniform_graph_shape() {
        let g = JobGraph::uniform(4, 3.0);
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.total_weight(), 18.0);
        assert_eq!(g.weight(0, 0), 0.0);
        assert_eq!(g.weight(1, 3), 3.0);
    }

    #[test]
    fn single_task_job_has_no_edges() {
        let g = JobGraph::uniform(1, 4.0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.comm_level(), 0.0);
    }

    #[test]
    fn from_spec_uses_batch_weight() {
        let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2);
        let g = JobGraph::from_spec(&spec);
        assert_eq!(g.weight(0, 1), 4.0);
        assert_eq!(g.comm_level(), 1.0);

        let spec = JobSpec::new(1, NnModel::AlexNet, BatchClass::Big, 2);
        assert_eq!(JobGraph::from_spec(&spec).comm_level(), 0.25);
    }

    #[test]
    fn custom_graph_is_symmetrized() {
        let g = JobGraph::custom(vec![
            vec![0.0, 2.0, 0.0],
            vec![4.0, 0.0, 1.0],
            vec![0.0, 1.0, 9.0], // diagonal junk must be zeroed
        ]);
        assert_eq!(g.weight(0, 1), 3.0);
        assert_eq!(g.weight(1, 0), 3.0);
        assert_eq!(g.weight(2, 2), 0.0);
        assert_eq!(g.edge_count(), 2); // (0,1) and (1,2)
    }

    #[test]
    fn pipeline_is_a_chain() {
        let g = JobGraph::pipeline(4, 2.0);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.weight(0, 1), 2.0);
        assert_eq!(g.weight(1, 2), 2.0);
        assert_eq!(g.weight(0, 2), 0.0);
        assert_eq!(g.weight(0, 3), 0.0);
        assert_eq!(g.incident_weight(1), 4.0);
        assert_eq!(g.incident_weight(0), 2.0);
        // Cutting one chain edge costs exactly w.
        assert_eq!(g.cut_weight(&[true, true, false, false]), 2.0);
    }

    #[test]
    fn ring_closes_the_loop() {
        let g = JobGraph::ring(4, 1.0);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.weight(0, 3), 1.0);
        assert_eq!(g.weight(0, 2), 0.0);
        // Any bipartition of a ring cuts an even number of edges ≥ 2.
        assert_eq!(g.cut_weight(&[true, true, false, false]), 2.0);
        // Rings of 1–2 tasks degenerate to the uniform graph.
        assert_eq!(JobGraph::ring(2, 3.0), JobGraph::uniform(2, 3.0));
        assert_eq!(JobGraph::ring(1, 3.0).edge_count(), 0);
    }

    #[test]
    fn max_weight_finds_the_heaviest_edge() {
        let g = JobGraph::custom(vec![
            vec![0.0, 1.0, 5.0],
            vec![1.0, 0.0, 2.0],
            vec![5.0, 2.0, 0.0],
        ]);
        assert_eq!(g.max_weight(), 5.0);
        assert_eq!(JobGraph::uniform(1, 0.0).max_weight(), 0.0);
    }

    #[test]
    fn from_spec_prefers_the_explicit_graph() {
        let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 3)
            .with_comm_graph(JobGraph::pipeline(3, 4.0));
        let g = JobGraph::from_spec(&spec);
        assert_eq!(g.edge_count(), 2, "pipeline, not the uniform 3-clique");
        assert!(spec.validate().is_ok());
        // A mismatched graph is rejected.
        let bad = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 2)
            .with_comm_graph(JobGraph::pipeline(3, 4.0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn comm_graph_survives_json() {
        let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 3)
            .with_comm_graph(JobGraph::ring(3, 2.0));
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Plain jobs serialize without the field at all.
        let plain = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 2);
        assert!(!serde_json::to_string(&plain).unwrap().contains("comm_graph"));
    }

    #[test]
    fn cut_weight_counts_crossing_edges_only() {
        let g = JobGraph::uniform(4, 1.0);
        // {0,1} vs {2,3}: 4 crossing edges.
        assert_eq!(g.cut_weight(&[true, true, false, false]), 4.0);
        // {0} vs rest: 3 crossing edges.
        assert_eq!(g.cut_weight(&[true, false, false, false]), 3.0);
        // no cut.
        assert_eq!(g.cut_weight(&[true, true, true, true]), 0.0);
    }

    #[test]
    fn weight_to_set_sums_incident_edges() {
        let g = JobGraph::uniform(4, 2.0);
        assert_eq!(g.weight_to_set(0, &[1, 2]), 4.0);
        assert_eq!(g.weight_to_set(0, &[0, 1]), 2.0); // self filtered out
        assert_eq!(g.weight_to_set(0, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_rejected() {
        JobGraph::uniform(0, 1.0);
    }
}
