//! The scheduler's waiting queue (Algorithm 1).
//!
//! "To avoid starvation and enforce fairness as much as possible, the job
//! waiting queue is sorted by the job's arrival time. Thus, the oldest jobs
//! have priority to be placed." Postponed jobs (TOPO-AWARE-P) are parked in
//! a side list and re-queued at the end of each scheduler iteration.

use crate::spec::{JobId, JobSpec};
use std::collections::VecDeque;

/// Arrival-ordered waiting queue with a postponement side list.
#[derive(Debug, Clone, Default)]
pub struct WaitQueue {
    queue: VecDeque<JobSpec>,
    postponed: Vec<JobSpec>,
}

impl WaitQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a job keeping the queue sorted by `(arrival_s, id)` —
    /// stable FIFO for simultaneous arrivals.
    pub fn add(&mut self, job: JobSpec) {
        let pos = self
            .queue
            .iter()
            .position(|j| (j.arrival_s, j.id) > (job.arrival_s, job.id))
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, job);
    }

    /// Pops the oldest job (`Q.pop()` in Algorithm 1).
    pub fn pop(&mut self) -> Option<JobSpec> {
        self.queue.pop_front()
    }

    /// Parks a job whose placement utility fell below threshold
    /// (`postponed_list.add(A)`).
    pub fn postpone(&mut self, job: JobSpec) {
        self.postponed.push(job);
    }

    /// End-of-iteration re-queue (`Q.add(postponed_list)`): postponed jobs
    /// return in arrival order for the next wake-up.
    pub fn requeue_postponed(&mut self) {
        let postponed = std::mem::take(&mut self.postponed);
        for job in postponed {
            self.add(job);
        }
    }

    /// Number of jobs currently waiting (excluding postponed).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no job is waiting (postponed jobs not counted — they only
    /// come back at the end of an iteration).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of jobs parked in the postponement list.
    pub fn postponed_len(&self) -> usize {
        self.postponed.len()
    }

    /// True when neither queue nor postponed list hold any job.
    pub fn fully_drained(&self) -> bool {
        self.queue.is_empty() && self.postponed.is_empty()
    }

    /// Peeks at the next job without removing it.
    pub fn peek(&self) -> Option<&JobSpec> {
        self.queue.front()
    }

    /// Whether a job id is anywhere in the queue or postponed list.
    pub fn contains(&self, id: JobId) -> bool {
        self.queue.iter().any(|j| j.id == id) || self.postponed.iter().any(|j| j.id == id)
    }

    /// Removes a job from wherever it waits (queue or postponed list).
    /// Returns the removed spec, if any — the cancellation path.
    pub fn remove(&mut self, id: JobId) -> Option<JobSpec> {
        if let Some(pos) = self.queue.iter().position(|j| j.id == id) {
            return self.queue.remove(pos);
        }
        if let Some(pos) = self.postponed.iter().position(|j| j.id == id) {
            return Some(self.postponed.remove(pos));
        }
        None
    }

    /// Iterates over waiting jobs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &JobSpec> {
        self.queue.iter()
    }

    /// Iterates over jobs parked in the postponement side list, in
    /// postponement order. Auditors use this to check the two lists stay
    /// disjoint from each other and from the running set.
    pub fn postponed_iter(&self) -> impl Iterator<Item = &JobSpec> {
        self.postponed.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchClass;
    use crate::model::NnModel;

    fn job(id: u64, arrival: f64) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, 1).arriving_at(arrival)
    }

    #[test]
    fn pops_in_arrival_order_regardless_of_insertion_order() {
        let mut q = WaitQueue::new();
        q.add(job(2, 30.0));
        q.add(job(0, 10.0));
        q.add(job(1, 20.0));
        assert_eq!(q.pop().unwrap().id, JobId(0));
        assert_eq!(q.pop().unwrap().id, JobId(1));
        assert_eq!(q.pop().unwrap().id, JobId(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_arrivals_are_fifo_by_id() {
        let mut q = WaitQueue::new();
        q.add(job(5, 10.0));
        q.add(job(3, 10.0));
        assert_eq!(q.pop().unwrap().id, JobId(3));
        assert_eq!(q.pop().unwrap().id, JobId(5));
    }

    #[test]
    fn postponed_jobs_return_at_end_of_iteration() {
        let mut q = WaitQueue::new();
        q.add(job(0, 1.0));
        q.add(job(1, 2.0));
        let j0 = q.pop().unwrap();
        q.postpone(j0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.postponed_len(), 1);
        assert!(!q.fully_drained());

        q.requeue_postponed();
        assert_eq!(q.postponed_len(), 0);
        // Back in arrival order: J0 first again.
        assert_eq!(q.pop().unwrap().id, JobId(0));
        assert_eq!(q.pop().unwrap().id, JobId(1));
        assert!(q.fully_drained());
    }

    #[test]
    fn contains_searches_both_lists() {
        let mut q = WaitQueue::new();
        q.add(job(0, 1.0));
        let j = q.pop().unwrap();
        assert!(!q.contains(JobId(0)));
        q.postpone(j);
        assert!(q.contains(JobId(0)));
    }

    #[test]
    fn remove_pulls_from_either_list() {
        let mut q = WaitQueue::new();
        q.add(job(0, 1.0));
        q.add(job(1, 2.0));
        q.postpone(job(2, 3.0));

        assert_eq!(q.remove(JobId(0)).unwrap().id, JobId(0));
        assert_eq!(q.remove(JobId(2)).unwrap().id, JobId(2));
        assert!(q.remove(JobId(9)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.postponed_len(), 0);
        assert_eq!(q.pop().unwrap().id, JobId(1));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = WaitQueue::new();
        q.add(job(0, 1.0));
        assert_eq!(q.peek().unwrap().id, JobId(0));
        assert_eq!(q.len(), 1);
    }
}
