//! Batch-size classes and their communication weights.
//!
//! §2: "a key parameter that plays a significant role in the communication
//! is the batch size" — small batches communicate every few milliseconds,
//! large batches amortize one gradient exchange over long compute phases.
//! §5.1: job-graph edge weights "range from 4 to 1, where 4 represents the
//! smallest batch size and 1 the largest one". §5.3's generator draws the
//! class from a Binomial over {0=tiny, 1=small, 2=medium, 3=big}.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four batch-size classes used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum BatchClass {
    /// Batch 1–2 per GPU: maximal communication frequency (weight 4).
    Tiny,
    /// Batch 4–8 per GPU (weight 3).
    Small,
    /// Batch 16–32 per GPU (weight 2).
    Medium,
    /// Batch 64–128 per GPU: compute-bound (weight 1).
    Big,
}

impl BatchClass {
    /// All classes, smallest first.
    pub const ALL: [BatchClass; 4] = [
        BatchClass::Tiny,
        BatchClass::Small,
        BatchClass::Medium,
        BatchClass::Big,
    ];

    /// The §5.1 job-graph edge weight: 4 (tiny) down to 1 (big).
    pub fn comm_weight(self) -> f64 {
        match self {
            BatchClass::Tiny => 4.0,
            BatchClass::Small => 3.0,
            BatchClass::Medium => 2.0,
            BatchClass::Big => 1.0,
        }
    }

    /// Edge weight normalized to (0, 1]: "this weight is normalized by the
    /// total available bandwidth" (§4.1.1) — we normalize against the
    /// maximal class weight.
    pub fn comm_level(self) -> f64 {
        self.comm_weight() / BatchClass::Tiny.comm_weight()
    }

    /// Representative per-GPU batch size for the class (the midpoint used
    /// when a manifest specifies only a class).
    pub fn representative_batch(self) -> u32 {
        match self {
            BatchClass::Tiny => 1,
            BatchClass::Small => 4,
            BatchClass::Medium => 16,
            BatchClass::Big => 64,
        }
    }

    /// Classifies an explicit per-GPU batch size (1..=128 in the paper's
    /// sweeps) into its class.
    pub fn from_batch_size(batch: u32) -> Self {
        match batch {
            0..=2 => BatchClass::Tiny,
            3..=8 => BatchClass::Small,
            9..=32 => BatchClass::Medium,
            _ => BatchClass::Big,
        }
    }

    /// Class index 0..=3 (the paper's Binomial support).
    pub fn index(self) -> usize {
        match self {
            BatchClass::Tiny => 0,
            BatchClass::Small => 1,
            BatchClass::Medium => 2,
            BatchClass::Big => 3,
        }
    }

    /// Inverse of [`BatchClass::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for BatchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BatchClass::Tiny => "tiny",
            BatchClass::Small => "small",
            BatchClass::Medium => "medium",
            BatchClass::Big => "big",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_run_four_to_one() {
        assert_eq!(BatchClass::Tiny.comm_weight(), 4.0);
        assert_eq!(BatchClass::Small.comm_weight(), 3.0);
        assert_eq!(BatchClass::Medium.comm_weight(), 2.0);
        assert_eq!(BatchClass::Big.comm_weight(), 1.0);
    }

    #[test]
    fn comm_level_normalized_to_unit() {
        assert_eq!(BatchClass::Tiny.comm_level(), 1.0);
        assert_eq!(BatchClass::Big.comm_level(), 0.25);
        for c in BatchClass::ALL {
            assert!(c.comm_level() > 0.0 && c.comm_level() <= 1.0);
        }
    }

    #[test]
    fn batch_size_classification_covers_paper_sweep() {
        let expected = [
            (1, BatchClass::Tiny),
            (2, BatchClass::Tiny),
            (4, BatchClass::Small),
            (8, BatchClass::Small),
            (16, BatchClass::Medium),
            (32, BatchClass::Medium),
            (64, BatchClass::Big),
            (128, BatchClass::Big),
        ];
        for (b, c) in expected {
            assert_eq!(BatchClass::from_batch_size(b), c, "batch {b}");
        }
    }

    #[test]
    fn representative_batches_round_trip() {
        for c in BatchClass::ALL {
            assert_eq!(BatchClass::from_batch_size(c.representative_batch()), c);
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, c) in BatchClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(BatchClass::from_index(i), Some(*c));
        }
        assert_eq!(BatchClass::from_index(4), None);
    }

    #[test]
    fn serde_lowercase() {
        assert_eq!(serde_json::to_string(&BatchClass::Tiny).unwrap(), "\"tiny\"");
        let c: BatchClass = serde_json::from_str("\"big\"").unwrap();
        assert_eq!(c, BatchClass::Big);
    }
}
