//! Job specifications — the scheduler-facing description of a submission.

use crate::batch::BatchClass;
use crate::graph::JobGraph;
use crate::model::NnModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cluster-wide unique job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl JobId {
    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// Placement constraints a job may declare (§4.4: anti-collocation policies,
/// single-node requirements; §4.3: capacity constraints are always enforced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Constraints {
    /// All tasks must land on a single machine (set for every job in the
    /// paper's experiments: multi-node Caffe is out of scope there).
    pub single_node: bool,
    /// Tasks must be spread across *different* machines (the paper's
    /// anti-collocation policy; mutually exclusive with `single_node`).
    pub anti_collocate: bool,
}

impl Constraints {
    /// The default for the paper's experiments: single-node jobs.
    pub fn single_node() -> Self {
        Self { single_node: true, anti_collocate: false }
    }

    /// Validity check: a job cannot demand both shapes at once.
    pub fn is_valid(self) -> bool {
        !(self.single_node && self.anti_collocate)
    }
}

/// A job submission, as read from a JSON manifest (Appendix A.3) or produced
/// by the workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// Network to train.
    pub model: NnModel,
    /// Per-GPU batch-size class (drives communication intensity).
    pub batch: BatchClass,
    /// Number of GPUs requested (`|A|` in §4.4).
    pub n_gpus: u32,
    /// Minimum acceptable placement utility (Table 1's "Min. Utility"); the
    /// SLO proxy. `TOPO-AWARE-P` postpones placements scoring below this.
    pub min_utility: f64,
    /// Arrival time in seconds since experiment start.
    pub arrival_s: f64,
    /// Training iterations to run (the paper uses 4 000 for timing runs).
    pub iterations: u32,
    /// Placement constraints.
    #[serde(default)]
    pub constraints: Constraints,
    /// Explicit communication graph (model parallelism). When absent, the
    /// data-parallel uniform graph keyed by the batch class is used (§5.1).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub comm_graph: Option<JobGraph>,
    /// Host memory-bandwidth demand in GB/s — the §4.3 capacity constraint
    /// `t_bw ≤ p_bw`. Zero (the default) means unconstrained.
    #[serde(default)]
    pub bw_demand_gbs: f64,
}

impl JobSpec {
    /// Builder-style constructor with the paper's defaults: single-node,
    /// 4 000 iterations, min utility 0 (always placeable).
    pub fn new(id: u64, model: NnModel, batch: BatchClass, n_gpus: u32) -> Self {
        Self {
            id: JobId(id),
            model,
            batch,
            n_gpus,
            min_utility: 0.0,
            arrival_s: 0.0,
            iterations: 4000,
            constraints: Constraints::single_node(),
            comm_graph: None,
            bw_demand_gbs: 0.0,
        }
    }

    /// Sets the arrival time.
    pub fn arriving_at(mut self, t: f64) -> Self {
        self.arrival_s = t;
        self
    }

    /// Sets the minimum utility (SLO).
    pub fn with_min_utility(mut self, u: f64) -> Self {
        self.min_utility = u;
        self
    }

    /// Sets the iteration budget.
    pub fn with_iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Attaches an explicit communication graph (model parallelism). The
    /// graph's task count must equal `n_gpus`.
    pub fn with_comm_graph(mut self, graph: JobGraph) -> Self {
        self.comm_graph = Some(graph);
        self
    }

    /// Declares a host memory-bandwidth demand (GB/s) for the §4.3
    /// `t_bw ≤ p_bw` capacity constraint.
    pub fn with_bw_demand(mut self, gbs: f64) -> Self {
        self.bw_demand_gbs = gbs;
        self
    }

    /// Whether this job communicates at all (multi-GPU data parallelism).
    pub fn communicates(&self) -> bool {
        self.n_gpus > 1
    }

    /// Sanity validation: positive GPU count, utility in [0, 1], coherent
    /// constraints, finite arrival.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_gpus == 0 {
            return Err(format!("{}: requests zero GPUs", self.id));
        }
        if !(0.0..=1.0).contains(&self.min_utility) {
            return Err(format!(
                "{}: min_utility {} outside [0,1]",
                self.id, self.min_utility
            ));
        }
        if !self.arrival_s.is_finite() || self.arrival_s < 0.0 {
            return Err(format!("{}: bad arrival time {}", self.id, self.arrival_s));
        }
        if self.iterations == 0 {
            return Err(format!("{}: zero iterations", self.id));
        }
        if !self.constraints.is_valid() {
            return Err(format!("{}: contradictory constraints", self.id));
        }
        if !self.bw_demand_gbs.is_finite() || self.bw_demand_gbs < 0.0 {
            return Err(format!(
                "{}: bandwidth demand must be finite and non-negative, got {}",
                self.id, self.bw_demand_gbs
            ));
        }
        if let Some(g) = &self.comm_graph {
            if g.n_tasks() != self.n_gpus as usize {
                return Err(format!(
                    "{}: communication graph has {} tasks but the job requests {} GPUs",
                    self.id,
                    g.n_tasks(),
                    self.n_gpus
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::new(7, NnModel::AlexNet, BatchClass::Tiny, 2)
            .arriving_at(15.0)
            .with_min_utility(0.5)
    }

    #[test]
    fn builder_sets_fields() {
        let j = spec();
        assert_eq!(j.id, JobId(7));
        assert_eq!(j.arrival_s, 15.0);
        assert_eq!(j.min_utility, 0.5);
        assert!(j.constraints.single_node);
        assert!(j.communicates());
    }

    #[test]
    fn single_gpu_job_does_not_communicate() {
        let j = JobSpec::new(0, NnModel::GoogLeNet, BatchClass::Big, 1);
        assert!(!j.communicates());
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut j = spec();
        j.n_gpus = 0;
        assert!(j.validate().is_err());

        let mut j = spec();
        j.min_utility = 1.5;
        assert!(j.validate().is_err());

        let mut j = spec();
        j.arrival_s = f64::NAN;
        assert!(j.validate().is_err());

        let mut j = spec();
        j.iterations = 0;
        assert!(j.validate().is_err());

        let mut j = spec();
        j.constraints = Constraints { single_node: true, anti_collocate: true };
        assert!(j.validate().is_err());

        assert!(spec().validate().is_ok());
    }

    #[test]
    fn manifest_json_round_trip() {
        let j = spec();
        let json = serde_json::to_string_pretty(&j).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(j, back);
    }

    #[test]
    fn constraints_default_is_permissive() {
        let c = Constraints::default();
        assert!(!c.single_node && !c.anti_collocate && c.is_valid());
    }

    #[test]
    fn display_ids() {
        assert_eq!(JobId(3).to_string(), "J3");
    }
}
