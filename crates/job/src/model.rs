//! The neural-network models evaluated in the paper.
//!
//! §2: the prototype trains Caffe's AlexNet, CaffeRef (an AlexNet variant)
//! and GoogLeNet on ImageNet-2014. The structural facts relevant to
//! scheduling are the gradient size (what gets exchanged every iteration)
//! and the per-sample compute cost; both use published model characteristics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Caffe network from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum NnModel {
    /// AlexNet: ≈61 M parameters, light per-sample compute → the most
    /// communication-sensitive network in Fig. 4.
    AlexNet,
    /// CaffeRef (CaffeNet): AlexNet-derived, ≈62 M parameters, slightly
    /// heavier compute.
    CaffeRef,
    /// GoogLeNet: only ≈7 M parameters thanks to its Inception modules
    /// ("GoogLeNet performs less communication because of its Inception
    /// Modules", §3.2) but ≈2.6× AlexNet's per-sample compute.
    GoogLeNet,
}

impl NnModel {
    /// All models, in the paper's 0/1/2 generator encoding
    /// (0=AlexNet, 1=CaffeRef, 2=GoogLeNet; §5.3).
    pub const ALL: [NnModel; 3] = [NnModel::AlexNet, NnModel::CaffeRef, NnModel::GoogLeNet];

    /// Trainable parameter count.
    pub fn parameters(self) -> u64 {
        match self {
            NnModel::AlexNet => 61_000_000,
            NnModel::CaffeRef => 62_000_000,
            NnModel::GoogLeNet => 7_000_000,
        }
    }

    /// Gradient bytes exchanged per iteration (fp32 parameters).
    pub fn gradient_bytes(self) -> u64 {
        self.parameters() * 4
    }

    /// Relative per-sample compute cost (AlexNet ≡ 1.0).
    pub fn compute_scale(self) -> f64 {
        match self {
            NnModel::AlexNet => 1.0,
            NnModel::CaffeRef => 1.05,
            NnModel::GoogLeNet => 2.6,
        }
    }

    /// Generator index (the paper's Binomial over 0..=2).
    pub fn index(self) -> usize {
        match self {
            NnModel::AlexNet => 0,
            NnModel::CaffeRef => 1,
            NnModel::GoogLeNet => 2,
        }
    }

    /// Inverse of [`NnModel::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// One-letter code used in Table 1 (A=AlexNet, C=CaffeRef, G=GoogLeNet).
    pub fn code(self) -> char {
        match self {
            NnModel::AlexNet => 'A',
            NnModel::CaffeRef => 'C',
            NnModel::GoogLeNet => 'G',
        }
    }
}

impl fmt::Display for NnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NnModel::AlexNet => "AlexNet",
            NnModel::CaffeRef => "CaffeRef",
            NnModel::GoogLeNet => "GoogLeNet",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_is_the_small_gradient_model() {
        assert!(NnModel::GoogLeNet.gradient_bytes() < NnModel::AlexNet.gradient_bytes() / 5);
        assert!(NnModel::GoogLeNet.compute_scale() > NnModel::AlexNet.compute_scale());
    }

    #[test]
    fn alexnet_gradient_is_about_244_mb() {
        let mb = NnModel::AlexNet.gradient_bytes() as f64 / (1024.0 * 1024.0);
        assert!((230.0..250.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn index_round_trips() {
        for (i, m) in NnModel::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(NnModel::from_index(i), Some(*m));
        }
        assert_eq!(NnModel::from_index(3), None);
    }

    #[test]
    fn table1_codes() {
        assert_eq!(NnModel::AlexNet.code(), 'A');
        assert_eq!(NnModel::CaffeRef.code(), 'C');
        assert_eq!(NnModel::GoogLeNet.code(), 'G');
    }

    #[test]
    fn serde_lowercase() {
        assert_eq!(
            serde_json::to_string(&NnModel::GoogLeNet).unwrap(),
            "\"googlenet\""
        );
        let m: NnModel = serde_json::from_str("\"alexnet\"").unwrap();
        assert_eq!(m, NnModel::AlexNet);
    }
}
