//! Canned experiment scenarios from the paper.

use crate::batch::BatchClass;
use crate::model::NnModel;
use crate::spec::JobSpec;

/// The six-job prototype scenario of Table 1 (§5.2.1).
///
/// | Config       | Job0 | Job1 | Job2 | Job3 | Job4 | Job5 |
/// |--------------|------|------|------|------|------|------|
/// | DL NN        | A    | G    | A    | A    | A    | C    |
/// | Batch size   | 1    | 4    | 1    | 4    | 1    | 1    |
/// | Num. GPUs    | 1    | 1    | 1    | 2    | 2    | 2    |
/// | Min. utility | 0.3  | 0.3  | 0.3  | 0.5  | 0.5  | 0.5  |
/// | Arrival (s)  | 0.51 | 15.03| 24.36| 25.33| 29.33| 29.89|
///
/// Iteration budgets are not part of Table 1 (the paper runs up to 4 000
/// iterations and kills jobs on a wall-clock schedule); ours are calibrated
/// so that solo-packed durations land on the Fig. 8 timeline scale
/// (jobs of ≈50–130 s on a 4-GPU Minsky).
pub fn table1() -> Vec<JobSpec> {
    vec![
        JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 1)
            .arriving_at(0.51)
            .with_min_utility(0.3)
            .with_iterations(2800),
        JobSpec::new(1, NnModel::GoogLeNet, BatchClass::Small, 1)
            .arriving_at(15.03)
            .with_min_utility(0.3)
            .with_iterations(250),
        JobSpec::new(2, NnModel::AlexNet, BatchClass::Tiny, 1)
            .arriving_at(24.36)
            .with_min_utility(0.3)
            .with_iterations(2400),
        JobSpec::new(3, NnModel::AlexNet, BatchClass::Small, 2)
            .arriving_at(25.33)
            .with_min_utility(0.5)
            .with_iterations(440),
        JobSpec::new(4, NnModel::AlexNet, BatchClass::Tiny, 2)
            .arriving_at(29.33)
            .with_min_utility(0.5)
            .with_iterations(1335),
        JobSpec::new(5, NnModel::CaffeRef, BatchClass::Tiny, 2)
            .arriving_at(29.89)
            .with_min_utility(0.5)
            .with_iterations(1440),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobId;

    #[test]
    fn table1_matches_the_paper() {
        let jobs = table1();
        assert_eq!(jobs.len(), 6);

        let models: Vec<char> = jobs.iter().map(|j| j.model.code()).collect();
        assert_eq!(models, vec!['A', 'G', 'A', 'A', 'A', 'C']);

        let gpus: Vec<u32> = jobs.iter().map(|j| j.n_gpus).collect();
        assert_eq!(gpus, vec![1, 1, 1, 2, 2, 2]);

        let utils: Vec<f64> = jobs.iter().map(|j| j.min_utility).collect();
        assert_eq!(utils, vec![0.3, 0.3, 0.3, 0.5, 0.5, 0.5]);

        let arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival_s).collect();
        assert_eq!(arrivals, vec![0.51, 15.03, 24.36, 25.33, 29.33, 29.89]);

        // Batch 1 → tiny, batch 4 → small.
        assert_eq!(jobs[0].batch, BatchClass::Tiny);
        assert_eq!(jobs[1].batch, BatchClass::Small);
        assert_eq!(jobs[3].batch, BatchClass::Small);
    }

    #[test]
    fn table1_jobs_validate_and_are_ordered() {
        let jobs = table1();
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
            assert!(j.validate().is_ok());
            assert!(j.constraints.single_node);
        }
        for w in jobs.windows(2) {
            assert!(w[0].arrival_s < w[1].arrival_s);
        }
    }
}
