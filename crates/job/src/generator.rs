//! Synthetic workload generation (§5.3, Appendix A.3).
//!
//! "For generating the workloads, a Poisson distribution with arrival rate
//! λ = 10 is used. To create the job's configuration, we used a Binomial
//! distribution generating integer values between 0 and 3 to define the
//! batch size [...] and also a Binomial distribution generating integer
//! values between 0 and 2 to determine the NN type."
//!
//! Arrivals are Poisson in *jobs per minute*; inter-arrival gaps are drawn
//! from the matching exponential. All draws come from a seeded [`StdRng`] so
//! traces are reproducible.

use crate::batch::BatchClass;
use crate::model::NnModel;
use crate::spec::{Constraints, JobSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunable knobs of the workload generator, with the paper's §5.2.1/§5.3
/// values as defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Poisson arrival rate in jobs per minute (λ = 10 in the paper).
    pub arrival_rate_per_min: f64,
    /// Success probability of the Binomial(3, p) batch-class draw.
    pub batch_p: f64,
    /// Success probability of the Binomial(2, p) NN-type draw.
    pub model_p: f64,
    /// Probability weights over GPU request sizes (1, 2, 4 GPUs).
    pub gpu_count_weights: [f64; 3],
    /// Minimum utility assigned to single-GPU jobs (Table 1: 0.3).
    pub min_utility_single: f64,
    /// Minimum utility assigned to multi-GPU jobs (Table 1: 0.5).
    pub min_utility_multi: f64,
    /// Iteration budget per job.
    pub iterations: u32,
    /// Fraction of multi-GPU jobs declared model-parallel (a pipeline
    /// communication graph instead of the data-parallel clique). 0 in the
    /// paper's experiments.
    #[serde(default)]
    pub model_parallel_fraction: f64,
    /// Fraction of jobs allowed to spill across machines (multi-node
    /// capable; §7 future work). 0 in the paper's experiments.
    #[serde(default)]
    pub multi_node_fraction: f64,
    /// Host memory-bandwidth demand per GPU, GB/s (§4.3 `t_bw ≤ p_bw`);
    /// 0 disables the constraint, as in the paper's experiments.
    #[serde(default)]
    pub bw_demand_per_gpu_gbs: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            arrival_rate_per_min: 10.0,
            batch_p: 0.5,
            model_p: 0.5,
            gpu_count_weights: [0.35, 0.45, 0.20],
            min_utility_single: 0.3,
            min_utility_multi: 0.5,
            iterations: 400,
            model_parallel_fraction: 0.0,
            multi_node_fraction: 0.0,
            bw_demand_per_gpu_gbs: 0.0,
        }
    }
}

/// Reproducible Poisson/Binomial workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    next_id: u64,
    clock_s: f64,
}

impl WorkloadGenerator {
    /// Creates a generator with the given config and RNG seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        assert!(
            config.arrival_rate_per_min > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.batch_p) && (0.0..=1.0).contains(&config.model_p),
            "binomial probabilities must lie in [0,1]"
        );
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            clock_s: 0.0,
        }
    }

    /// The paper's default generator (λ=10/min, p=0.5 binomials).
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(GeneratorConfig::default(), seed)
    }

    /// Binomial(n, p) sample as the sum of `n` Bernoulli draws — tiny `n`
    /// makes the naive method exact and branch-cheap.
    fn binomial(&mut self, n: u32, p: f64) -> u32 {
        (0..n).filter(|_| self.rng.gen_bool(p)).count() as u32
    }

    /// Exponential inter-arrival gap in seconds for the configured λ.
    fn next_gap_s(&mut self) -> f64 {
        let lambda_per_s = self.config.arrival_rate_per_min / 60.0;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / lambda_per_s
    }

    /// Draws the next job; the internal clock advances by an exponential
    /// gap, so consecutive calls produce a Poisson arrival process.
    pub fn next_job(&mut self) -> JobSpec {
        self.clock_s += self.next_gap_s();
        let batch = BatchClass::from_index(self.binomial(3, self.config.batch_p) as usize)
            .expect("binomial(3) yields 0..=3");
        let model = NnModel::from_index(self.binomial(2, self.config.model_p) as usize)
            .expect("binomial(2) yields 0..=2");
        let n_gpus = self.sample_gpu_count();
        let min_utility = if n_gpus == 1 {
            self.config.min_utility_single
        } else {
            self.config.min_utility_multi
        };
        let id = self.next_id;
        self.next_id += 1;

        let comm_graph = (n_gpus > 1
            && self.config.model_parallel_fraction > 0.0
            && self.rng.gen_bool(self.config.model_parallel_fraction))
        .then(|| crate::graph::JobGraph::pipeline(n_gpus as usize, batch.comm_weight()));
        let constraints = if self.config.multi_node_fraction > 0.0
            && self.rng.gen_bool(self.config.multi_node_fraction)
        {
            Constraints { single_node: false, anti_collocate: false }
        } else {
            Constraints::single_node()
        };
        JobSpec {
            id: crate::spec::JobId(id),
            model,
            batch,
            n_gpus,
            min_utility,
            arrival_s: self.clock_s,
            iterations: self.config.iterations,
            constraints,
            comm_graph,
            bw_demand_gbs: self.config.bw_demand_per_gpu_gbs * f64::from(n_gpus),
        }
    }

    fn sample_gpu_count(&mut self) -> u32 {
        let w = self.config.gpu_count_weights;
        let total: f64 = w.iter().sum();
        let mut x = self.rng.gen_range(0.0..total);
        for (i, &wi) in w.iter().enumerate() {
            if x < wi {
                return [1u32, 2, 4][i];
            }
            x -= wi;
        }
        4
    }

    /// Generates a complete workload of `n` jobs.
    pub fn generate(&mut self, n: usize) -> Vec<JobSpec> {
        (0..n).map(|_| self.next_job()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WorkloadGenerator::with_defaults(42).generate(50);
        let b = WorkloadGenerator::with_defaults(42).generate(50);
        assert_eq!(a, b);
        let c = WorkloadGenerator::with_defaults(43).generate(50);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let jobs = WorkloadGenerator::with_defaults(1).generate(200);
        for w in jobs.windows(2) {
            assert!(w[1].arrival_s > w[0].arrival_s);
        }
    }

    #[test]
    fn mean_interarrival_matches_lambda() {
        // λ = 10/min → mean gap 6 s. With 5 000 samples the sample mean
        // should land within ±10 %.
        let jobs = WorkloadGenerator::with_defaults(7).generate(5000);
        let total = jobs.last().unwrap().arrival_s;
        let mean_gap = total / jobs.len() as f64;
        assert!(
            (5.4..6.6).contains(&mean_gap),
            "mean inter-arrival {mean_gap} s, expected ≈6 s"
        );
    }

    #[test]
    fn binomial_mix_covers_all_classes_and_models() {
        let jobs = WorkloadGenerator::with_defaults(3).generate(2000);
        for class in BatchClass::ALL {
            assert!(
                jobs.iter().any(|j| j.batch == class),
                "class {class} never generated"
            );
        }
        for model in NnModel::ALL {
            assert!(
                jobs.iter().any(|j| j.model == model),
                "model {model} never generated"
            );
        }
    }

    #[test]
    fn binomial_batch_mode_is_central() {
        // Binomial(3, 0.5) puts 75 % of mass on classes 1 and 2.
        let jobs = WorkloadGenerator::with_defaults(11).generate(4000);
        let central = jobs
            .iter()
            .filter(|j| matches!(j.batch, BatchClass::Small | BatchClass::Medium))
            .count();
        let frac = central as f64 / jobs.len() as f64;
        assert!((0.70..0.80).contains(&frac), "central mass {frac}");
    }

    #[test]
    fn min_utility_follows_gpu_count() {
        let jobs = WorkloadGenerator::with_defaults(5).generate(500);
        for j in &jobs {
            if j.n_gpus == 1 {
                assert_eq!(j.min_utility, 0.3);
            } else {
                assert_eq!(j.min_utility, 0.5);
            }
            assert!(j.validate().is_ok());
        }
    }

    #[test]
    fn extended_knobs_produce_the_new_job_shapes() {
        let config = GeneratorConfig {
            model_parallel_fraction: 0.5,
            multi_node_fraction: 0.3,
            bw_demand_per_gpu_gbs: 20.0,
            ..GeneratorConfig::default()
        };
        let jobs = WorkloadGenerator::new(config, 17).generate(400);
        let model_parallel = jobs.iter().filter(|j| j.comm_graph.is_some()).count();
        let multi_node = jobs.iter().filter(|j| !j.constraints.single_node).count();
        assert!(model_parallel > 50, "got {model_parallel}");
        assert!(multi_node > 50, "got {multi_node}");
        for j in &jobs {
            assert!(j.validate().is_ok(), "{}", j.id);
            assert!((j.bw_demand_gbs - 20.0 * f64::from(j.n_gpus)).abs() < 1e-9);
            if let Some(g) = &j.comm_graph {
                assert_eq!(g.n_tasks(), j.n_gpus as usize);
            }
        }
        // Single-GPU jobs never carry a communication graph.
        assert!(jobs
            .iter()
            .filter(|j| j.n_gpus == 1)
            .all(|j| j.comm_graph.is_none()));
    }

    #[test]
    fn defaults_keep_the_papers_job_shapes() {
        let jobs = WorkloadGenerator::with_defaults(3).generate(100);
        assert!(jobs.iter().all(|j| j.comm_graph.is_none()));
        assert!(jobs.iter().all(|j| j.constraints.single_node));
        assert!(jobs.iter().all(|j| j.bw_demand_gbs == 0.0));
    }

    #[test]
    fn ids_are_sequential() {
        let jobs = WorkloadGenerator::with_defaults(9).generate(10);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id.0, i as u64);
        }
    }
}
