//! # gts-job — learning-workload model
//!
//! Everything the scheduler knows about a *job*, per §2, §4.1.1, §4.2 and
//! §5.2.1 of the paper:
//!
//! * [`model::NnModel`] / [`batch::BatchClass`] — the three Caffe networks
//!   (AlexNet, CaffeRef, GoogLeNet) and the four batch-size classes
//!   (tiny/small/medium/big) that drive communication intensity;
//! * [`spec::JobSpec`] — a job request: GPUs wanted, minimum utility (the
//!   SLO proxy), arrival time, placement constraints;
//! * [`graph::JobGraph`] — the job communication graph `A`: vertices are the
//!   requested GPUs, every pair connected with a uniform weight 4..1 keyed by
//!   batch class (§5.1, data-parallel all-to-all);
//! * [`profile::JobProfile`] — the §4.2 profile: solo times for best/worst
//!   placements plus interference sensitivity/pressure coefficients;
//! * [`queue::WaitQueue`] — the arrival-ordered waiting queue with the
//!   postponement mechanics of Algorithm 1;
//! * [`generator::WorkloadGenerator`] — Poisson arrivals with binomial batch
//!   and model mixes (§5.3);
//! * [`manifest`] — the JSON job-manifest format the paper's prototype
//!   consumes (Appendix A.3), plus trace export/replay.

#![warn(missing_docs)]

pub mod batch;
pub mod generator;
pub mod graph;
pub mod manifest;
pub mod model;
pub mod profile;
pub mod queue;
pub mod scenario;
pub mod spec;

pub use batch::BatchClass;
pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use graph::JobGraph;
pub use manifest::{JobManifest, Trace};
pub use model::NnModel;
pub use profile::JobProfile;
pub use queue::WaitQueue;
pub use spec::{Constraints, JobId, JobSpec};
