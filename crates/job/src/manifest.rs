//! JSON job manifests and workload traces.
//!
//! Appendix A.3: "the program continuously loads JSON files containing the
//! necessary information about the submitted jobs" and the simulator is
//! trace-driven: "the trace files are parsed and transformed into a format
//! compatible with the simulator". This module is that interchange layer:
//! a [`JobManifest`] is one submission file, a [`Trace`] is a replayable
//! workload with metadata.

use crate::spec::JobSpec;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// One submission manifest — what a user drops into the scheduler's watch
/// directory in the paper's prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobManifest {
    /// The jobs submitted by this manifest (usually one).
    pub jobs: Vec<JobSpec>,
}

impl JobManifest {
    /// Parses a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization cannot fail")
    }

    /// Loads a manifest file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Writes a manifest file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Validates every contained job.
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs.is_empty() {
            return Err("manifest contains no jobs".into());
        }
        for job in &self.jobs {
            job.validate()?;
        }
        Ok(())
    }
}

/// A replayable workload trace: the bridge between prototype logs and the
/// trace-driven simulator (§5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Free-form provenance label (generator seed, prototype run id, ...).
    pub source: String,
    /// Arrival-ordered jobs.
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Builds a trace, sorting jobs by arrival time for replay.
    pub fn new(source: impl Into<String>, mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        Self { source: source.into(), jobs }
    }

    /// Parses a trace from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Loads a trace file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Writes a trace file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Total number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Duration between the first and last arrival, seconds.
    pub fn span_s(&self) -> f64 {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(a), Some(b)) => b.arrival_s - a.arrival_s,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchClass;
    use crate::generator::WorkloadGenerator;
    use crate::model::NnModel;
    use crate::spec::JobId;

    fn sample_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::new(1, NnModel::GoogLeNet, BatchClass::Small, 1).arriving_at(15.0),
            JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).arriving_at(0.5),
        ]
    }

    #[test]
    fn manifest_round_trip() {
        let m = JobManifest { jobs: sample_jobs() };
        let back = JobManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn empty_manifest_fails_validation() {
        assert!(JobManifest { jobs: vec![] }.validate().is_err());
    }

    #[test]
    fn manifest_with_invalid_job_fails_validation() {
        let mut jobs = sample_jobs();
        jobs[0].n_gpus = 0;
        assert!(JobManifest { jobs }.validate().is_err());
    }

    #[test]
    fn trace_sorts_by_arrival() {
        let t = Trace::new("test", sample_jobs());
        assert_eq!(t.jobs[0].id, JobId(0));
        assert_eq!(t.jobs[1].id, JobId(1));
        assert!((t.span_s() - 14.5).abs() < 1e-12);
    }

    #[test]
    fn trace_file_round_trip() {
        let dir = std::env::temp_dir().join("gts-job-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let t = Trace::new("generator-seed-42", WorkloadGenerator::with_defaults(42).generate(20));
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Trace::from_json("{not json").is_err());
        assert!(JobManifest::from_json("[]").is_err()); // wrong shape
    }

    #[test]
    fn empty_trace_has_zero_span() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.span_s(), 0.0);
    }
}
