//! Every fitted constant of the performance model, in one place.
//!
//! Each constant is anchored to a number the paper reports; the anchor is
//! recorded next to the constant and asserted by the tests at the bottom of
//! this file, so any recalibration that breaks an anchor fails loudly.

use gts_job::BatchClass;

/// Base per-iteration compute time in seconds (batch-independent overhead:
/// kernel launches, weight update, host sync). Anchor: AlexNet batch 1
/// compute ≈ 25 ms/iteration (≈1 s over the paper's 40 profiling
/// iterations, §3.2).
pub const COMPUTE_BASE_S: f64 = 0.012;

/// Per-sample compute time in seconds for AlexNet (other networks scale by
/// [`gts_job::NnModel::compute_scale`]). Anchor: AlexNet batch 128 compute
/// ≈ 66 s over 40 iterations → 1.65 s/iteration (§3.2).
pub const COMPUTE_PER_SAMPLE_S: f64 = 0.0128;

/// Fraction of a route's bottleneck link bandwidth that a ring allreduce
/// actually achieves over a *P2P-capable* route (NVLink direct or
/// switch-only). Anchor: AlexNet communication ≈ 2 s per 40 iterations
/// (50 ms/iteration) for a 244 MB gradient over the 40 GB/s dual NVLink →
/// effective ≈ 4.88 GB/s.
pub const EFF_P2P: f64 = 0.122;

/// Achieved fraction for *host-routed* traffic (bounced through socket
/// memory; extra copies, driver staging). Anchor: pack-over-spread speedup
/// ≈ 1.30× for AlexNet at batch 1 on Minsky (Fig. 4) → cross-socket
/// communication ≈ 72.5 ms/iteration → effective ≈ 3.37 GB/s over the
/// 32 GB/s X-Bus.
pub const EFF_HOST: f64 = 0.105;

/// Peak sampled link bandwidth for the Fig. 5 counter emulation, GB/s.
/// Anchor: AlexNet batch 1 saturates the counters at ≈ 40 GB/s.
pub const BW_SAMPLE_PEAK_GBS: f64 = 54.0;

/// Baseline ancillary traffic (input pipeline, parameter broadcasts) always
/// present on the sampled links, GB/s. Anchor: AlexNet batch 128 still
/// shows ≈ 6 GB/s in Fig. 5.
pub const BW_SAMPLE_BASE_GBS: f64 = 4.0;

/// Interference sensitivity per batch class (how much a job *suffers*).
/// Anchors (Fig. 6): tiny|tiny ≈ 30 %, small|big ≈ 21 %, big|big ≈ ~0 %.
pub fn sensitivity(batch: BatchClass) -> f64 {
    match batch {
        BatchClass::Tiny => 1.00,
        BatchClass::Small => 0.85,
        BatchClass::Medium => 0.45,
        BatchClass::Big => 0.05,
    }
}

/// Bus pressure per batch class (how much a job *causes*). Anchor (Fig. 6):
/// a big-batch job still slows a tiny-batch job by ≈ 24 % — "a job composed
/// by a big batch can cause performance interference since it still
/// consumes bandwidth".
pub fn pressure(batch: BatchClass) -> f64 {
    match batch {
        BatchClass::Tiny => 0.30,
        BatchClass::Small => 0.27,
        BatchClass::Medium => 0.25,
        BatchClass::Big => 0.24,
    }
}

/// Domain factor when two jobs share CPU↔GPU links of the *same socket*.
pub const DOMAIN_SAME_SOCKET: f64 = 1.0;

/// Domain factor when two jobs share only the machine-level buses
/// (different sockets, same machine).
pub const DOMAIN_SAME_MACHINE: f64 = 0.35;

/// Cap on the combined slowdown from any number of co-runners: a job never
/// degrades past this (the bus saturates; Fig. 6 tops out around 30 % for a
/// single aggressor and the prototype never exceeds ≈ 50–80 % total).
pub const SLOWDOWN_CAP: f64 = 0.75;

/// Relative jitter (± fraction) applied to "measured" runs by the §5.1
/// profiler, emulating run-to-run variance of the real testbed.
pub const PROFILE_JITTER: f64 = 0.03;

#[cfg(test)]
mod tests {
    use super::*;

    /// AlexNet per-iteration compute at the paper's batch endpoints.
    #[test]
    fn compute_anchors() {
        let b1 = COMPUTE_BASE_S + COMPUTE_PER_SAMPLE_S;
        assert!((0.02..0.03).contains(&b1), "batch-1 ≈ 25 ms, got {b1}");
        let b128 = COMPUTE_BASE_S + 128.0 * COMPUTE_PER_SAMPLE_S;
        assert!((1.6..1.7).contains(&b128), "batch-128 ≈ 1.65 s, got {b128}");
    }

    /// 244 MB gradient over κ·40 GB/s NVLink ≈ 50 ms (2 s / 40 iterations).
    #[test]
    fn comm_anchor_packed() {
        let volume_gb = 61_000_000.0 * 4.0 / 1e9;
        let t = volume_gb / (EFF_P2P * 40.0);
        assert!((0.045..0.055).contains(&t), "packed comm ≈ 50 ms, got {t}");
    }

    /// Cross-socket route yields the 1.30× batch-1 pack speedup.
    #[test]
    fn comm_anchor_speedup() {
        let volume_gb = 61_000_000.0 * 4.0 / 1e9;
        let packed = volume_gb / (EFF_P2P * 40.0);
        let spread = volume_gb / (EFF_HOST * 32.0);
        let comp = COMPUTE_BASE_S + COMPUTE_PER_SAMPLE_S;
        let speedup = (comp + spread) / (comp + packed);
        assert!(
            (1.25..1.35).contains(&speedup),
            "batch-1 speedup ≈ 1.30, got {speedup}"
        );
    }

    /// Fig. 6 anchors reproduced by the sensitivity/pressure tables.
    #[test]
    fn interference_anchors() {
        let tt = sensitivity(BatchClass::Tiny) * pressure(BatchClass::Tiny);
        assert!((tt - 0.30).abs() < 0.01, "tiny|tiny ≈ 30 %, got {tt}");
        let tb = sensitivity(BatchClass::Tiny) * pressure(BatchClass::Big);
        assert!((tb - 0.24).abs() < 0.01, "tiny|big ≈ 24 %, got {tb}");
        let sb = sensitivity(BatchClass::Small) * pressure(BatchClass::Big);
        assert!((sb - 0.21).abs() < 0.015, "small|big ≈ 21 %, got {sb}");
        let bb = sensitivity(BatchClass::Big) * pressure(BatchClass::Big);
        assert!(bb < 0.02, "big|big ≈ 0, got {bb}");
    }

    /// Fig. 5 endpoints: ≈40 GB/s at batch 1, ≈6 GB/s at batch 128.
    #[test]
    fn bandwidth_sample_anchors() {
        let comm = 0.050;
        let duty_b1 = comm / (COMPUTE_BASE_S + COMPUTE_PER_SAMPLE_S + comm);
        let bw_b1 = BW_SAMPLE_BASE_GBS + BW_SAMPLE_PEAK_GBS * duty_b1;
        assert!((38.0..42.0).contains(&bw_b1), "batch-1 ≈ 40 GB/s, got {bw_b1}");

        let comp_128 = COMPUTE_BASE_S + 128.0 * COMPUTE_PER_SAMPLE_S;
        let duty_b128 = comm / (comp_128 + comm);
        let bw_b128 = BW_SAMPLE_BASE_GBS + BW_SAMPLE_PEAK_GBS * duty_b128;
        assert!((5.0..7.0).contains(&bw_b128), "batch-128 ≈ 6 GB/s, got {bw_b128}");
    }

    #[test]
    fn tables_are_monotone_in_batch() {
        let classes = BatchClass::ALL;
        for w in classes.windows(2) {
            assert!(sensitivity(w[0]) > sensitivity(w[1]));
            assert!(pressure(w[0]) > pressure(w[1]));
        }
    }
}
