//! Sampled link-bandwidth counter emulation (Fig. 5, Fig. 8 bottom panels).
//!
//! The paper samples `nvidia-smi nvlink` transmit counters once per second
//! and plots the observed GB/s. A training iteration alternates a compute
//! phase (links ≈idle apart from input-pipeline traffic) with a burst that
//! drives the link near peak; a 1 Hz sample therefore sees
//! `base + peak·duty` where `duty` is the fraction of time spent in
//! communication. Deterministic, seeded jitter stands in for testbed noise.

use crate::calibration::{BW_SAMPLE_BASE_GBS, BW_SAMPLE_PEAK_GBS};
use crate::placement::IterTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Expected sampled bandwidth for a job with the given iteration profile,
/// derated by the interference slowdown it currently suffers (a stalled job
/// communicates less often).
pub fn sampled_bandwidth_gbs(iter: IterTime, slowdown: f64) -> f64 {
    if iter.comm_s == 0.0 {
        // Non-communicating job: only input-pipeline traffic.
        return BW_SAMPLE_BASE_GBS;
    }
    let stretched = IterTime {
        compute_s: iter.compute_s * (1.0 + slowdown),
        comm_s: iter.comm_s * (1.0 + slowdown),
    };
    BW_SAMPLE_BASE_GBS + BW_SAMPLE_PEAK_GBS * stretched.comm_duty()
}

/// A 1 Hz bandwidth time series for one job, as the prototype monitor
/// records it.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthTrace {
    /// Sample period in seconds (1.0 in the paper's plots).
    pub period_s: f64,
    /// Sampled bandwidth in GB/s, one entry per period.
    pub samples_gbs: Vec<f64>,
}

impl BandwidthTrace {
    /// Generates a trace of `duration_s` seconds for a job running with the
    /// given iteration profile, with ±5 % seeded jitter.
    pub fn generate(iter: IterTime, slowdown: f64, duration_s: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = sampled_bandwidth_gbs(iter, slowdown);
        let n = duration_s.max(0.0).round() as usize;
        let samples_gbs = (0..n)
            .map(|_| {
                let jitter = 1.0 + rng.gen_range(-0.05f64..0.05);
                (mean * jitter).max(0.0)
            })
            .collect();
        Self { period_s: 1.0, samples_gbs }
    }

    /// Mean of the samples (0 for an empty trace).
    pub fn mean_gbs(&self) -> f64 {
        if self.samples_gbs.is_empty() {
            0.0
        } else {
            self.samples_gbs.iter().sum::<f64>() / self.samples_gbs.len() as f64
        }
    }

    /// Maximum sample (0 for an empty trace).
    pub fn peak_gbs(&self) -> f64 {
        self.samples_gbs.iter().fold(0.0, |a, &b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPerf;
    use gts_job::NnModel;
    use gts_topo::{power8_minsky, GpuId};

    fn alexnet_iter(batch: u32) -> IterTime {
        let m = power8_minsky();
        PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)]).iter_time(NnModel::AlexNet, batch)
    }

    #[test]
    fn fig5_batch1_saturates_near_40() {
        let bw = sampled_bandwidth_gbs(alexnet_iter(1), 0.0);
        assert!((38.0..42.0).contains(&bw), "got {bw}");
    }

    #[test]
    fn fig5_batch128_idles_near_6() {
        let bw = sampled_bandwidth_gbs(alexnet_iter(128), 0.0);
        assert!((5.0..7.0).contains(&bw), "got {bw}");
    }

    #[test]
    fn fig5_ordering_over_batches() {
        let bws: Vec<f64> = [1u32, 4, 64, 128]
            .iter()
            .map(|&b| sampled_bandwidth_gbs(alexnet_iter(b), 0.0))
            .collect();
        for w in bws.windows(2) {
            assert!(w[0] > w[1], "bandwidth must fall with batch size: {bws:?}");
        }
    }

    #[test]
    fn slowdown_does_not_change_duty_cycle_bandwidth() {
        // Both phases stretch equally, so the sampled duty is unchanged —
        // interference shows up as a longer runtime, not a different duty.
        let a = sampled_bandwidth_gbs(alexnet_iter(1), 0.0);
        let b = sampled_bandwidth_gbs(alexnet_iter(1), 0.3);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn non_communicating_job_shows_base_traffic() {
        let it = IterTime { compute_s: 0.025, comm_s: 0.0 };
        assert_eq!(sampled_bandwidth_gbs(it, 0.0), 4.0);
    }

    #[test]
    fn trace_is_deterministic_and_jittered() {
        let it = alexnet_iter(1);
        let a = BandwidthTrace::generate(it, 0.0, 30.0, 9);
        let b = BandwidthTrace::generate(it, 0.0, 30.0, 9);
        assert_eq!(a, b);
        assert_eq!(a.samples_gbs.len(), 30);
        // Jitter keeps samples within ±5 % of the mean.
        let mean = sampled_bandwidth_gbs(it, 0.0);
        for &s in &a.samples_gbs {
            assert!((s - mean).abs() <= mean * 0.05 + 1e-9);
        }
        assert!(a.peak_gbs() >= a.mean_gbs());
    }

    #[test]
    fn empty_trace_statistics() {
        let t = BandwidthTrace { period_s: 1.0, samples_gbs: vec![] };
        assert_eq!(t.mean_gbs(), 0.0);
        assert_eq!(t.peak_gbs(), 0.0);
    }
}
