//! Mapping from a concrete GPU allocation to its performance characteristics.
//!
//! Given a machine topology and the GPU set a job received, this module
//! derives the route class and bottleneck bandwidth of the *worst* GPU pair
//! (a ring is as fast as its slowest hop) and from that the per-iteration
//! time of the job under that placement.

use crate::comm::comm_time_s;
use crate::compute::compute_time_s;
use gts_job::{JobSpec, NnModel};
use gts_topo::{ClusterTopology, GlobalGpuId, GpuId, LinkKind, MachineTopology};

/// How a (worst-pair) route between allocated GPUs physically flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteClass {
    /// Direct NVLink or a switch-only route: peer DMA, no host bounce.
    P2p,
    /// Bounced through socket memory (and possibly the inter-socket bus).
    HostRouted,
}

/// Performance-relevant summary of one allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementPerf {
    /// Worst-pair route class (an allocation is P2P only if *every* pair is).
    pub route: RouteClass,
    /// Bottleneck bandwidth of the worst pair, GB/s.
    pub bottleneck_gbs: f64,
    /// Largest qualitative distance among allocated pairs.
    pub max_distance: f64,
    /// Number of GPUs in the allocation.
    pub n_gpus: u32,
}

/// Classifies the route of a single GPU pair.
pub fn classify_route(machine: &MachineTopology, a: GpuId, b: GpuId) -> (RouteClass, f64) {
    let path = machine.path(a, b);
    let route = if path.is_p2p(machine.graph()) {
        RouteClass::P2p
    } else {
        RouteClass::HostRouted
    };
    (route, path.bottleneck_bandwidth_gbs())
}

impl PlacementPerf {
    /// Evaluates an allocation on a machine. Single-GPU allocations report
    /// a P2P route with infinite bandwidth (no communication happens).
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty.
    pub fn evaluate(machine: &MachineTopology, gpus: &[GpuId]) -> Self {
        assert!(!gpus.is_empty(), "an allocation holds at least one GPU");
        let mut route = RouteClass::P2p;
        let mut bottleneck = f64::INFINITY;
        let mut max_distance: f64 = 0.0;
        // Worst pair over the ring: the slowest, least-capable link bounds
        // the collective.
        let mut worst_eff = f64::INFINITY;
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                let (r, bw) = classify_route(machine, a, b);
                let eff = crate::comm::effective_bandwidth_gbs(r, bw);
                if eff < worst_eff {
                    worst_eff = eff;
                    route = r;
                    bottleneck = bw;
                }
                max_distance = max_distance.max(machine.distance(a, b));
            }
        }
        Self {
            route,
            bottleneck_gbs: bottleneck,
            max_distance,
            n_gpus: gpus.len() as u32,
        }
    }

    /// Evaluates a cluster-wide allocation (anti-collocated jobs span
    /// machines; their worst pair rides the network and is always
    /// host-routed).
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty.
    pub fn evaluate_cluster(cluster: &ClusterTopology, gpus: &[GlobalGpuId]) -> Self {
        assert!(!gpus.is_empty(), "an allocation holds at least one GPU");
        let machines: Vec<_> = {
            let mut ms: Vec<_> = gpus.iter().map(|g| g.machine).collect();
            ms.sort_unstable();
            ms.dedup();
            ms
        };
        if machines.len() == 1 {
            let local: Vec<GpuId> = gpus.iter().map(|g| g.gpu).collect();
            return Self::evaluate(cluster.machine(machines[0]), &local);
        }
        let mut max_distance: f64 = 0.0;
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                max_distance = max_distance.max(cluster.distance(a, b));
            }
        }
        // Rack-local spills ride the top-of-rack switch at full line rate;
        // crossing the aggregation layer halves the effective bandwidth
        // (classic 2:1 oversubscription).
        let crosses_racks = gpus
            .iter()
            .any(|g| cluster.rack_of(g.machine) != cluster.rack_of(gpus[0].machine));
        let bottleneck = if crosses_racks {
            LinkKind::Network.peak_bandwidth_gbs() / 2.0
        } else {
            LinkKind::Network.peak_bandwidth_gbs()
        };
        Self {
            route: RouteClass::HostRouted,
            bottleneck_gbs: bottleneck,
            max_distance,
            n_gpus: gpus.len() as u32,
        }
    }

    /// Per-iteration time for `model` at per-GPU batch `batch` under this
    /// placement, solo (no interference).
    pub fn iter_time(&self, model: NnModel, batch: u32) -> IterTime {
        let compute_s = compute_time_s(model, batch);
        let comm_s = if self.n_gpus > 1 {
            comm_time_s(model, self.n_gpus, self.route, self.bottleneck_gbs)
        } else {
            0.0
        };
        IterTime { compute_s, comm_s }
    }
}

/// One training iteration split into its two phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterTime {
    /// GPU compute phase, seconds.
    pub compute_s: f64,
    /// Gradient exchange phase, seconds.
    pub comm_s: f64,
}

impl IterTime {
    /// Total iteration time, seconds.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }

    /// Fraction of the iteration spent communicating (the Fig. 5 duty
    /// cycle). Zero for non-communicating jobs.
    pub fn comm_duty(&self) -> f64 {
        let total = self.total_s();
        if total == 0.0 {
            0.0
        } else {
            self.comm_s / total
        }
    }
}

/// Per-iteration time for an *explicit* communication graph (model
/// parallelism) mapped onto concrete GPUs.
///
/// Each edge `(i, j)` carries `w_ij / 4` gradient-equivalents of traffic
/// per iteration (weight 4 ≡ the tiny-batch volume, §5.1's normalization)
/// over the physical route between `mapping[i]` and `mapping[j]`. Links are
/// full-duplex and distinct P2P bricks transfer in parallel, but every
/// host-routed edge of the job shares the one inter-socket bus, so its
/// effective bandwidth divides by the number of such edges. The
/// bulk-synchronous step ends when the slowest edge drains. (Contention
/// *between* jobs stays the province of the Fig. 6 interference model.)
/// Data-parallel jobs (no explicit graph) should use
/// [`PlacementPerf::iter_time`]'s ring model instead.
pub fn graph_iter_time(
    machine: &MachineTopology,
    model: NnModel,
    batch: u32,
    graph: &gts_job::JobGraph,
    mapping: &[GpuId],
) -> IterTime {
    assert_eq!(
        graph.n_tasks(),
        mapping.len(),
        "every task needs exactly one GPU"
    );
    let grad_gb = model.gradient_bytes() as f64 / 1e9;
    let edges: Vec<(RouteClass, f64, f64)> = graph
        .edges()
        .map(|(i, j, w)| {
            let (route, bw) = classify_route(machine, mapping[i], mapping[j]);
            (route, bw, (w / 4.0) * grad_gb)
        })
        .collect();
    let host_routed = edges
        .iter()
        .filter(|(r, _, _)| *r == RouteClass::HostRouted)
        .count()
        .max(1) as f64;
    let comm_s = edges
        .iter()
        .map(|&(route, bw, volume)| {
            let mut eff = crate::comm::effective_bandwidth_gbs(route, bw);
            if route == RouteClass::HostRouted {
                eff /= host_routed;
            }
            volume / eff
        })
        .fold(0.0, f64::max);
    IterTime {
        compute_s: compute_time_s(model, batch),
        comm_s,
    }
}

/// Solo duration of a whole job under a placement, seconds. Uses the
/// explicit communication graph when the job declares one.
pub fn job_duration_s(spec: &JobSpec, machine: &MachineTopology, gpus: &[GpuId]) -> f64 {
    let iter = match &spec.comm_graph {
        Some(graph) => graph_iter_time(
            machine,
            spec.model,
            spec.batch.representative_batch(),
            graph,
            gpus,
        ),
        None => PlacementPerf::evaluate(machine, gpus)
            .iter_time(spec.model, spec.batch.representative_batch()),
    };
    f64::from(spec.iterations) * iter.total_s()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::BatchClass;
    use gts_topo::power8_minsky;

    #[test]
    fn packed_pair_is_p2p_over_nvlink() {
        let m = power8_minsky();
        let p = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)]);
        assert_eq!(p.route, RouteClass::P2p);
        assert_eq!(p.bottleneck_gbs, 40.0);
        assert_eq!(p.max_distance, 1.0);
    }

    #[test]
    fn spread_pair_is_host_routed() {
        let m = power8_minsky();
        let p = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(2)]);
        assert_eq!(p.route, RouteClass::HostRouted);
        assert_eq!(p.max_distance, 22.0);
    }

    #[test]
    fn mixed_allocation_takes_worst_pair() {
        let m = power8_minsky();
        // Three GPUs spanning both sockets: worst pair crosses the bus.
        let p = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1), GpuId(2)]);
        assert_eq!(p.route, RouteClass::HostRouted);
        assert_eq!(p.max_distance, 22.0);
    }

    #[test]
    fn fig4_alexnet_batch1_speedup_is_1_3() {
        let m = power8_minsky();
        let pack = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
            .iter_time(NnModel::AlexNet, 1)
            .total_s();
        let spread = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(2)])
            .iter_time(NnModel::AlexNet, 1)
            .total_s();
        let speedup = spread / pack;
        assert!((1.25..1.35).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn fig4_speedup_vanishes_for_big_batches() {
        let m = power8_minsky();
        let pack = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
            .iter_time(NnModel::AlexNet, 128)
            .total_s();
        let spread = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(2)])
            .iter_time(NnModel::AlexNet, 128)
            .total_s();
        let speedup = spread / pack;
        assert!((0.99..1.05).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn fig4_googlenet_is_nearly_flat() {
        let m = power8_minsky();
        let pack = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
            .iter_time(NnModel::GoogLeNet, 1)
            .total_s();
        let spread = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(2)])
            .iter_time(NnModel::GoogLeNet, 1)
            .total_s();
        let speedup = spread / pack;
        assert!((1.0..1.08).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn single_gpu_iter_has_no_comm() {
        let m = power8_minsky();
        let p = PlacementPerf::evaluate(&m, &[GpuId(3)]);
        let it = p.iter_time(NnModel::AlexNet, 1);
        assert_eq!(it.comm_s, 0.0);
        assert_eq!(it.comm_duty(), 0.0);
        assert!(it.compute_s > 0.0);
    }

    #[test]
    fn job_duration_scales_with_iterations() {
        let m = power8_minsky();
        let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(100);
        let d100 = job_duration_s(&spec, &m, &[GpuId(0), GpuId(1)]);
        let spec2 = spec.clone().with_iterations(200);
        let d200 = job_duration_s(&spec2, &m, &[GpuId(0), GpuId(1)]);
        assert!((d200 / d100 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn empty_allocation_panics() {
        PlacementPerf::evaluate(&power8_minsky(), &[]);
    }

    #[test]
    fn pipeline_graph_only_pays_for_its_cut_edge() {
        use gts_job::JobGraph;
        let m = power8_minsky();
        let graph = JobGraph::pipeline(4, 4.0);
        // Chain mapped in socket order: only edge (1,2) crosses the bus.
        let good = graph_iter_time(&m, NnModel::AlexNet, 1, &graph,
            &[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]);
        // Chain interleaved across sockets: every edge crosses.
        let bad = graph_iter_time(&m, NnModel::AlexNet, 1, &graph,
            &[GpuId(0), GpuId(2), GpuId(1), GpuId(3)]);
        assert!(good.comm_s < bad.comm_s, "{} !< {}", good.comm_s, bad.comm_s);
        assert_eq!(good.compute_s, bad.compute_s);
    }

    #[test]
    fn uniform_two_task_graph_matches_the_ring_model() {
        use gts_job::JobGraph;
        let m = power8_minsky();
        let graph = JobGraph::uniform(2, 4.0);
        let via_graph =
            graph_iter_time(&m, NnModel::AlexNet, 1, &graph, &[GpuId(0), GpuId(1)]);
        let via_ring = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
            .iter_time(NnModel::AlexNet, 1);
        assert!((via_graph.comm_s - via_ring.comm_s).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_graph_has_no_comm() {
        use gts_job::JobGraph;
        let m = power8_minsky();
        let graph = JobGraph::pipeline(3, 0.0);
        let it = graph_iter_time(&m, NnModel::AlexNet, 1, &graph,
            &[GpuId(0), GpuId(1), GpuId(2)]);
        assert_eq!(it.comm_s, 0.0);
    }

    #[test]
    fn model_parallel_duration_uses_the_graph() {
        use gts_job::JobGraph;
        let m = power8_minsky();
        let pipeline = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 4)
            .with_iterations(100)
            .with_comm_graph(JobGraph::pipeline(4, 4.0));
        let dataparallel = JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 4)
            .with_iterations(100);
        let all: Vec<GpuId> = m.gpus().collect();
        // The pipeline only talks along the chain → cheaper than the
        // all-to-all data-parallel exchange on the same GPUs.
        assert!(job_duration_s(&pipeline, &m, &all) < job_duration_s(&dataparallel, &m, &all));
    }

    #[test]
    fn cluster_evaluation_single_machine_delegates() {
        use gts_topo::{ClusterTopology, GlobalGpuId, MachineId};
        let c = ClusterTopology::homogeneous(power8_minsky(), 2);
        let gpus = [
            GlobalGpuId { machine: MachineId(1), gpu: GpuId(0) },
            GlobalGpuId { machine: MachineId(1), gpu: GpuId(1) },
        ];
        let p = PlacementPerf::evaluate_cluster(&c, &gpus);
        assert_eq!(p.route, RouteClass::P2p);
        assert_eq!(p.bottleneck_gbs, 40.0);
    }

    #[test]
    fn cluster_evaluation_cross_machine_rides_the_network() {
        use gts_topo::{ClusterTopology, GlobalGpuId, MachineId};
        let c = ClusterTopology::homogeneous(power8_minsky(), 2);
        let gpus = [
            GlobalGpuId { machine: MachineId(0), gpu: GpuId(0) },
            GlobalGpuId { machine: MachineId(1), gpu: GpuId(0) },
        ];
        let p = PlacementPerf::evaluate_cluster(&c, &gpus);
        assert_eq!(p.route, RouteClass::HostRouted);
        assert_eq!(p.bottleneck_gbs, 1.25);
        // Network comm utterly dominates: a cross-machine AlexNet pair is
        // far slower than the worst single-machine placement.
        let it = p.iter_time(NnModel::AlexNet, 1);
        assert!(it.comm_s > 1.0, "got {}", it.comm_s);
    }
}
