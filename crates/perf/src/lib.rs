//! # gts-perf — calibrated performance model for DL training
//!
//! Replaces the paper's Power8/P100 testbed measurements (Caffe + NCCL,
//! nvprof, `nvidia-smi nvlink` counters, Perfmon2) with an analytic model
//! anchored to every number §3 reports. The model answers the questions the
//! scheduler and simulator ask:
//!
//! * [`compute`] — per-iteration GPU compute time `c0 + c1·batch`, scaled per
//!   network (fits "computation ≈1 s at batch 1..2 and ≈66 s at batch 128
//!   for 40 AlexNet iterations");
//! * [`comm`] — per-iteration gradient exchange time: ring-allreduce volume
//!   over the effective bandwidth of the allocation's worst route (fits
//!   "communication ≈2 s for all batch sizes" and the 1.30× pack speedup);
//! * [`placement`] — classifies an allocation's route (P2P vs host-routed,
//!   bottleneck link) from the `gts-topo` graph;
//! * [`interference`] — the Fig. 6 collocation-slowdown model
//!   (sensitivity × pressure × domain factor);
//! * [`bandwidth`] — the sampled link-bandwidth counter emulation behind
//!   Fig. 5 and the Fig. 8 traces;
//! * [`mod@breakdown`] — Fig. 3 compute/communication shares;
//! * [`profiler`] — generates §4.2 job profiles the way §5.1 prescribes
//!   (95th percentile of five jittered runs, solo and collocated).

#![warn(missing_docs)]

pub mod bandwidth;
pub mod breakdown;
pub mod calibration;
pub mod comm;
pub mod compute;
pub mod interference;
pub mod placement;
pub mod profiler;

pub use bandwidth::{sampled_bandwidth_gbs, BandwidthTrace};
pub use breakdown::{breakdown, Breakdown};
pub use comm::{comm_time_s, ring_volume_gb};
pub use compute::compute_time_s;
pub use interference::{domain_factor, pairwise_slowdown, total_slowdown};
pub use placement::{classify_route, IterTime, PlacementPerf, RouteClass};
pub use profiler::{profile_for, ProfileLibrary};
