//! §4.2 / §5.1 job-profile generation.
//!
//! "The profile then contains the 95th percentile of the execution time from
//! five executions of each workload within different scenarios." We emulate
//! the measurement campaign: five jittered model evaluations per scenario
//! (packed solo, spread solo), plus the interference coefficients the
//! scheduler's `getInter()` consumes.

use crate::calibration::PROFILE_JITTER;
use crate::interference::model_bus_scale;
use crate::placement::PlacementPerf;
use gts_job::{BatchClass, JobProfile, NnModel};
use gts_topo::{GpuId, MachineTopology, SocketId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// 95th percentile via the nearest-rank method (with n=5 this is the max,
/// matching a conservative profiling discipline).
fn p95(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((0.95 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Reference packed allocation: the first two GPUs of socket 0 (or one GPU
/// if the socket has a single GPU).
fn reference_pack(machine: &MachineTopology) -> Vec<GpuId> {
    let mut gpus = machine.gpus_in_socket(SocketId(0));
    gpus.truncate(2);
    gpus
}

/// Reference spread allocation: the first GPU of each of the first two
/// sockets; falls back to packed on single-socket machines.
fn reference_spread(machine: &MachineTopology) -> Vec<GpuId> {
    if machine.n_sockets() < 2 {
        return reference_pack(machine);
    }
    let a = machine.gpus_in_socket(SocketId(0));
    let b = machine.gpus_in_socket(SocketId(1));
    match (a.first(), b.first()) {
        (Some(&x), Some(&y)) => vec![x, y],
        _ => reference_pack(machine),
    }
}

/// Runs the five-execution measurement campaign for one workload class on
/// `machine` and distills it into a [`JobProfile`].
pub fn profile_for(
    machine: &MachineTopology,
    model: NnModel,
    batch: BatchClass,
    seed: u64,
) -> JobProfile {
    let mut rng = StdRng::seed_from_u64(seed ^ ((model.index() as u64) << 8 | batch.index() as u64));
    let b = batch.representative_batch();

    let measure = |gpus: &[GpuId], rng: &mut StdRng| -> f64 {
        let base = PlacementPerf::evaluate(machine, gpus)
            .iter_time(model, b)
            .total_s();
        let mut samples: Vec<f64> = (0..5)
            .map(|_| base * (1.0 + rng.gen_range(-PROFILE_JITTER..PROFILE_JITTER)))
            .collect();
        p95(&mut samples)
    };

    let pack = reference_pack(machine);
    let spread = reference_spread(machine);
    let iter_time_packed_s = measure(&pack, &mut rng);
    let iter_time_spread_s = measure(&spread, &mut rng).max(iter_time_packed_s);

    let scale = model_bus_scale(model);
    JobProfile {
        model,
        batch,
        iter_time_packed_s,
        iter_time_spread_s,
        sensitivity: crate::calibration::sensitivity(batch) * scale,
        pressure: crate::calibration::pressure(batch) * scale,
        comm_level: batch.comm_level(),
    }
}

/// All twelve (model × batch) profiles for one machine type, generated once
/// and shared by the scheduler and simulator.
#[derive(Debug, Clone)]
pub struct ProfileLibrary {
    profiles: HashMap<(NnModel, BatchClass), JobProfile>,
}

impl ProfileLibrary {
    /// Profiles every workload class on `machine`.
    pub fn generate(machine: &MachineTopology, seed: u64) -> Self {
        let mut profiles = HashMap::with_capacity(12);
        for model in NnModel::ALL {
            for batch in BatchClass::ALL {
                profiles.insert((model, batch), profile_for(machine, model, batch, seed));
            }
        }
        Self { profiles }
    }

    /// Looks up the profile for a workload class.
    pub fn get(&self, model: NnModel, batch: BatchClass) -> &JobProfile {
        self.profiles
            .get(&(model, batch))
            .expect("library covers every (model, batch) pair")
    }

    /// Number of stored profiles (always 12).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Never true — the library is generated fully populated.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::power8_minsky;

    #[test]
    fn profiles_validate_and_are_deterministic() {
        let m = power8_minsky();
        let lib = ProfileLibrary::generate(&m, 42);
        assert_eq!(lib.len(), 12);
        for model in NnModel::ALL {
            for batch in BatchClass::ALL {
                let p = lib.get(model, batch);
                p.validate().unwrap_or_else(|e| panic!("{model}/{batch}: {e}"));
            }
        }
        let lib2 = ProfileLibrary::generate(&m, 42);
        for model in NnModel::ALL {
            for batch in BatchClass::ALL {
                assert_eq!(lib.get(model, batch), lib2.get(model, batch));
            }
        }
    }

    #[test]
    fn alexnet_tiny_profile_predicts_the_1_3_speedup() {
        let m = power8_minsky();
        let p = profile_for(&m, NnModel::AlexNet, BatchClass::Tiny, 7);
        let speedup = p.pack_speedup();
        // Jitter widens the window slightly beyond the analytic 1.25..1.35.
        assert!((1.2..1.4).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn googlenet_profiles_have_low_interference_coefficients() {
        let m = power8_minsky();
        let p = profile_for(&m, NnModel::GoogLeNet, BatchClass::Tiny, 7);
        assert!(p.sensitivity < 0.2);
        assert!(p.pressure < 0.05);
    }

    #[test]
    fn p95_of_five_is_the_max() {
        let mut s = vec![3.0, 1.0, 5.0, 2.0, 4.0];
        assert_eq!(p95(&mut s), 5.0);
        let mut one = vec![2.5];
        assert_eq!(p95(&mut one), 2.5);
    }

    #[test]
    fn spread_never_beats_pack_in_a_profile() {
        let m = power8_minsky();
        for model in NnModel::ALL {
            for batch in BatchClass::ALL {
                let p = profile_for(&m, model, batch, 99);
                assert!(p.iter_time_spread_s >= p.iter_time_packed_s, "{model}/{batch}");
            }
        }
    }

    #[test]
    fn single_socket_machine_degenerates_gracefully() {
        let m = gts_topo::symmetric_machine("one", 1, 2, gts_topo::LinkProfile::nvlink_dual());
        let p = profile_for(&m, NnModel::AlexNet, BatchClass::Tiny, 1);
        assert!(p.validate().is_ok());
    }
}
