//! Per-iteration GPU compute time.
//!
//! §3.2: "larger batch sizes significantly increase computation time" —
//! forward/backward cost is linear in the number of samples processed per
//! step, plus a batch-independent floor (kernel launch, weight update).
//! Data parallelism keeps the *per-GPU* batch fixed, so the per-iteration
//! compute time does not depend on the GPU count.

use crate::calibration::{COMPUTE_BASE_S, COMPUTE_PER_SAMPLE_S};
use gts_job::NnModel;

/// Compute time of one training iteration in seconds for `model` with a
/// per-GPU batch of `batch` samples.
pub fn compute_time_s(model: NnModel, batch: u32) -> f64 {
    model.compute_scale() * (COMPUTE_BASE_S + COMPUTE_PER_SAMPLE_S * f64::from(batch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_endpoints_match_paper() {
        // ≈1 s over 40 iterations at batch 1 (§3.2).
        let b1_40 = 40.0 * compute_time_s(NnModel::AlexNet, 1);
        assert!((0.9..1.1).contains(&b1_40), "got {b1_40}");
        // ≈66 s over 40 iterations at batch 128.
        let b128_40 = 40.0 * compute_time_s(NnModel::AlexNet, 128);
        assert!((63.0..68.0).contains(&b128_40), "got {b128_40}");
    }

    #[test]
    fn compute_is_strictly_increasing_in_batch() {
        for model in NnModel::ALL {
            let mut prev = 0.0;
            for b in [1u32, 2, 4, 8, 16, 32, 64, 128] {
                let t = compute_time_s(model, b);
                assert!(t > prev, "{model} batch {b}");
                prev = t;
            }
        }
    }

    #[test]
    fn googlenet_is_compute_heavier_per_sample() {
        assert!(compute_time_s(NnModel::GoogLeNet, 8) > 2.0 * compute_time_s(NnModel::AlexNet, 8));
    }
}
