//! Per-iteration gradient-exchange time.
//!
//! Data-parallel training allreduces the full gradient every iteration.
//! NCCL-style ring allreduce moves `2·(g−1)/g` times the gradient size
//! through each GPU per iteration, independent of batch size — which is why
//! the paper observes "the communication time instead remains ≈2 s for all
//! batch sizes" (§3.2): bigger batches change how *often* you communicate
//! relative to compute, not how *much*.

use crate::calibration::{EFF_HOST, EFF_P2P};
use crate::placement::RouteClass;
use gts_job::NnModel;

/// Gradient bytes each GPU sends per iteration in a `g`-GPU ring allreduce,
/// in GB (decimal). Zero for single-GPU jobs.
pub fn ring_volume_gb(model: NnModel, g: u32) -> f64 {
    if g <= 1 {
        return 0.0;
    }
    let grad_gb = model.gradient_bytes() as f64 / 1e9;
    2.0 * f64::from(g - 1) / f64::from(g) * grad_gb
}

/// Effective achieved bandwidth over a route in GB/s: the bottleneck link's
/// peak derated by the route-class efficiency.
pub fn effective_bandwidth_gbs(route: RouteClass, bottleneck_gbs: f64) -> f64 {
    let kappa = match route {
        RouteClass::P2p => EFF_P2P,
        RouteClass::HostRouted => EFF_HOST,
    };
    kappa * bottleneck_gbs
}

/// Communication time of one iteration in seconds for a `g`-GPU job whose
/// worst route achieves `effective_gbs`.
pub fn comm_time_s(model: NnModel, g: u32, route: RouteClass, bottleneck_gbs: f64) -> f64 {
    let volume = ring_volume_gb(model, g);
    if volume == 0.0 {
        return 0.0;
    }
    volume / effective_bandwidth_gbs(route, bottleneck_gbs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_does_not_communicate() {
        assert_eq!(ring_volume_gb(NnModel::AlexNet, 1), 0.0);
        assert_eq!(comm_time_s(NnModel::AlexNet, 1, RouteClass::P2p, 40.0), 0.0);
    }

    #[test]
    fn two_gpu_ring_moves_one_gradient() {
        let v = ring_volume_gb(NnModel::AlexNet, 2);
        assert!((v - 0.244).abs() < 0.01, "got {v} GB");
    }

    #[test]
    fn ring_volume_approaches_two_gradients() {
        let v2 = ring_volume_gb(NnModel::AlexNet, 2);
        let v4 = ring_volume_gb(NnModel::AlexNet, 4);
        let v8 = ring_volume_gb(NnModel::AlexNet, 8);
        assert!(v2 < v4 && v4 < v8);
        assert!(v8 < 2.0 * 0.244);
    }

    #[test]
    fn packed_alexnet_comm_is_about_50ms() {
        let t = comm_time_s(NnModel::AlexNet, 2, RouteClass::P2p, 40.0);
        assert!((0.045..0.055).contains(&t), "got {t}");
    }

    #[test]
    fn host_routed_is_slower_than_p2p_at_equal_bottleneck() {
        let p2p = comm_time_s(NnModel::AlexNet, 2, RouteClass::P2p, 32.0);
        let host = comm_time_s(NnModel::AlexNet, 2, RouteClass::HostRouted, 32.0);
        assert!(host > p2p);
    }

    #[test]
    fn googlenet_comm_is_small() {
        let g = comm_time_s(NnModel::GoogLeNet, 2, RouteClass::P2p, 40.0);
        let a = comm_time_s(NnModel::AlexNet, 2, RouteClass::P2p, 40.0);
        assert!(g < a / 5.0);
    }
}
