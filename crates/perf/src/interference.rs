//! Collocation interference (§3.3, Fig. 6).
//!
//! Jobs never share GPUs, but they share the buses feeding them. The model:
//!
//! ```text
//! slowdown(A | B) = sens(batch_A)·scale(model_A) · press(batch_B)·scale(model_B) · domain
//! ```
//!
//! where `domain` is 1.0 when the jobs' GPU sets touch a common socket,
//! 0.35 when they only share machine-level buses, and 0 otherwise; `scale`
//! derates the coefficients for networks that barely use the bus
//! (GoogLeNet). Multiple aggressors add up, capped at
//! [`crate::calibration::SLOWDOWN_CAP`].

use crate::calibration::{
    pressure, sensitivity, DOMAIN_SAME_MACHINE, DOMAIN_SAME_SOCKET, SLOWDOWN_CAP,
};
use gts_job::{BatchClass, NnModel};
use gts_topo::{GpuId, MachineTopology};

/// Bus-usage scale of a network relative to AlexNet, clamped to [0, 1].
/// GoogLeNet's small gradients make it both less sensitive and less
/// aggressive.
pub fn model_bus_scale(model: NnModel) -> f64 {
    let alex = NnModel::AlexNet.gradient_bytes() as f64;
    (model.gradient_bytes() as f64 / alex).min(1.0)
}

/// Domain factor between two GPU allocations on the same machine: 1.0 when
/// they touch a common socket, 0.35 otherwise (same machine, different
/// sockets still share the X-Bus and memory controllers).
pub fn domain_factor(machine: &MachineTopology, gpus_a: &[GpuId], gpus_b: &[GpuId]) -> f64 {
    if gpus_a.is_empty() || gpus_b.is_empty() {
        return 0.0;
    }
    let shares_socket = gpus_a.iter().any(|&a| {
        gpus_b
            .iter()
            .any(|&b| machine.socket_of(a) == machine.socket_of(b))
    });
    if shares_socket {
        DOMAIN_SAME_SOCKET
    } else {
        DOMAIN_SAME_MACHINE
    }
}

/// Slowdown job A suffers from job B through a bus domain with the given
/// factor, before capping.
pub fn pairwise_slowdown(
    victim: (NnModel, BatchClass),
    aggressor: (NnModel, BatchClass),
    domain: f64,
) -> f64 {
    sensitivity(victim.1)
        * model_bus_scale(victim.0)
        * pressure(aggressor.1)
        * model_bus_scale(aggressor.0)
        * domain
}

/// Combined slowdown a job suffers from all co-runners: additive, capped.
/// Each co-runner is `(model, batch, domain_factor)`.
pub fn total_slowdown(
    victim: (NnModel, BatchClass),
    corunners: &[(NnModel, BatchClass, f64)],
) -> f64 {
    let sum: f64 = corunners
        .iter()
        .map(|&(m, b, d)| pairwise_slowdown(victim, (m, b), d))
        .sum();
    sum.min(SLOWDOWN_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::power8_minsky;

    const A: NnModel = NnModel::AlexNet;

    #[test]
    fn fig6_tiny_tiny_is_30_percent() {
        let s = pairwise_slowdown((A, BatchClass::Tiny), (A, BatchClass::Tiny), 1.0);
        assert!((s - 0.30).abs() < 0.01, "got {s}");
    }

    #[test]
    fn fig6_tiny_suffers_24_percent_from_big() {
        let s = pairwise_slowdown((A, BatchClass::Tiny), (A, BatchClass::Big), 1.0);
        assert!((s - 0.24).abs() < 0.01, "got {s}");
    }

    #[test]
    fn fig6_small_suffers_21_percent_from_big() {
        let s = pairwise_slowdown((A, BatchClass::Small), (A, BatchClass::Big), 1.0);
        assert!((s - 0.21).abs() < 0.015, "got {s}");
    }

    #[test]
    fn fig6_big_big_is_negligible() {
        let s = pairwise_slowdown((A, BatchClass::Big), (A, BatchClass::Big), 1.0);
        assert!(s < 0.02, "got {s}");
    }

    #[test]
    fn googlenet_interferes_much_less() {
        let g = pairwise_slowdown(
            (A, BatchClass::Tiny),
            (NnModel::GoogLeNet, BatchClass::Tiny),
            1.0,
        );
        let a = pairwise_slowdown((A, BatchClass::Tiny), (A, BatchClass::Tiny), 1.0);
        assert!(g < a / 5.0, "googlenet {g} vs alexnet {a}");
    }

    #[test]
    fn domain_factor_depends_on_socket_overlap() {
        let m = power8_minsky();
        // Same socket.
        assert_eq!(domain_factor(&m, &[GpuId(0)], &[GpuId(1)]), 1.0);
        // Different sockets, same machine.
        assert_eq!(domain_factor(&m, &[GpuId(0)], &[GpuId(2)]), 0.35);
        // Overlapping multi-GPU sets: sharing any socket counts fully.
        assert_eq!(
            domain_factor(&m, &[GpuId(0), GpuId(2)], &[GpuId(3)]),
            1.0
        );
        // Empty sets do not interfere.
        assert_eq!(domain_factor(&m, &[], &[GpuId(0)]), 0.0);
    }

    #[test]
    fn total_slowdown_adds_and_caps() {
        let one = total_slowdown((A, BatchClass::Tiny), &[(A, BatchClass::Tiny, 1.0)]);
        let two = total_slowdown(
            (A, BatchClass::Tiny),
            &[(A, BatchClass::Tiny, 1.0), (A, BatchClass::Tiny, 1.0)],
        );
        assert!((two - 2.0 * one).abs() < 1e-12);
        let many: Vec<_> = (0..10).map(|_| (A, BatchClass::Tiny, 1.0)).collect();
        assert_eq!(total_slowdown((A, BatchClass::Tiny), &many), 0.75);
    }

    #[test]
    fn solo_job_has_zero_slowdown() {
        assert_eq!(total_slowdown((A, BatchClass::Tiny), &[]), 0.0);
    }

    #[test]
    fn cross_socket_domain_reduces_interference() {
        let same = pairwise_slowdown((A, BatchClass::Tiny), (A, BatchClass::Tiny), 1.0);
        let cross = pairwise_slowdown((A, BatchClass::Tiny), (A, BatchClass::Tiny), 0.35);
        assert!((cross - 0.35 * same).abs() < 1e-12);
    }
}
