//! Fig. 3 — execution-time breakdown into GPU computation and GPU
//! communication, under pack (P2P) and spread (no-P2P) placements.

use crate::placement::{IterTime, PlacementPerf};
use gts_job::{BatchClass, NnModel};
use gts_topo::{GpuId, MachineTopology};

/// Compute/communication shares of a workload's execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Network measured.
    pub model: NnModel,
    /// Batch class measured.
    pub batch: BatchClass,
    /// Fraction of time in GPU compute, [0, 1].
    pub compute_frac: f64,
    /// Fraction of time in GPU communication under pack (P2P), [0, 1].
    pub comm_frac_pack: f64,
    /// Fraction of time in GPU communication under spread (no P2P), [0, 1].
    pub comm_frac_spread: f64,
}

fn fractions(iter: IterTime) -> (f64, f64) {
    let total = iter.total_s();
    (iter.compute_s / total, iter.comm_s / total)
}

/// Computes the Fig. 3 breakdown for a 2-GPU job of `model`/`batch` on
/// `machine`, using `pack` (two GPUs of one socket) and `spread` (one GPU
/// per socket) allocations.
pub fn breakdown(
    machine: &MachineTopology,
    model: NnModel,
    batch: BatchClass,
    pack: &[GpuId],
    spread: &[GpuId],
) -> Breakdown {
    let b = batch.representative_batch();
    let it_pack = PlacementPerf::evaluate(machine, pack).iter_time(model, b);
    let it_spread = PlacementPerf::evaluate(machine, spread).iter_time(model, b);
    let (compute_frac, comm_frac_pack) = fractions(it_pack);
    let (_, comm_frac_spread) = fractions(it_spread);
    Breakdown {
        model,
        batch,
        compute_frac,
        comm_frac_pack,
        comm_frac_spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::power8_minsky;

    fn bd(model: NnModel, batch: BatchClass) -> Breakdown {
        let m = power8_minsky();
        breakdown(&m, model, batch, &[GpuId(0), GpuId(1)], &[GpuId(0), GpuId(2)])
    }

    #[test]
    fn tiny_alexnet_is_communication_dominated() {
        let b = bd(NnModel::AlexNet, BatchClass::Tiny);
        assert!(b.comm_frac_pack > 0.5, "got {}", b.comm_frac_pack);
        // Spread spends an even larger share communicating.
        assert!(b.comm_frac_spread > b.comm_frac_pack);
    }

    #[test]
    fn big_alexnet_is_compute_dominated() {
        let b = bd(NnModel::AlexNet, BatchClass::Big);
        assert!(b.compute_frac > 0.9, "got {}", b.compute_frac);
        assert!(b.comm_frac_pack < 0.1);
    }

    #[test]
    fn googlenet_communicates_least() {
        let g = bd(NnModel::GoogLeNet, BatchClass::Tiny);
        let a = bd(NnModel::AlexNet, BatchClass::Tiny);
        assert!(g.comm_frac_pack < a.comm_frac_pack / 3.0);
    }

    #[test]
    fn comm_share_falls_monotonically_with_batch() {
        let mut prev = f64::INFINITY;
        for batch in BatchClass::ALL {
            let b = bd(NnModel::AlexNet, batch);
            assert!(b.comm_frac_pack < prev, "{batch}");
            prev = b.comm_frac_pack;
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        for model in NnModel::ALL {
            for batch in BatchClass::ALL {
                let b = bd(model, batch);
                assert!((b.compute_frac + b.comm_frac_pack - 1.0).abs() < 1e-9);
            }
        }
    }
}
