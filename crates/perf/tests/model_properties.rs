//! Property-based invariants of the calibrated performance model.

use gts_job::{BatchClass, NnModel};
use gts_perf::{
    compute_time_s, pairwise_slowdown, sampled_bandwidth_gbs, total_slowdown, PlacementPerf,
};
use gts_topo::{power8_minsky, GpuId};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = NnModel> {
    prop::sample::select(NnModel::ALL.to_vec())
}

fn any_batch_class() -> impl Strategy<Value = BatchClass> {
    prop::sample::select(BatchClass::ALL.to_vec())
}

proptest! {
    #[test]
    fn compute_time_is_positive_and_monotone(model in any_model(), b in 1u32..256) {
        let t = compute_time_s(model, b);
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(compute_time_s(model, b + 1) > t);
    }

    #[test]
    fn pack_never_loses_to_spread(model in any_model(), b in 1u32..=128) {
        let m = power8_minsky();
        let pack = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)]).iter_time(model, b);
        let spread = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(2)]).iter_time(model, b);
        prop_assert!(spread.total_s() >= pack.total_s() - 1e-12);
        // Compute phases are placement-independent.
        prop_assert!((spread.compute_s - pack.compute_s).abs() < 1e-12);
    }

    #[test]
    fn fig4_speedup_bounded_and_decaying(model in any_model()) {
        let m = power8_minsky();
        let mut prev = f64::INFINITY;
        for b in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let pack = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
                .iter_time(model, b).total_s();
            let spread = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(2)])
                .iter_time(model, b).total_s();
            let speedup = spread / pack;
            prop_assert!((1.0..=1.5).contains(&speedup), "{model} b={b}: {speedup}");
            prop_assert!(speedup <= prev + 1e-12);
            prev = speedup;
        }
    }

    #[test]
    fn interference_is_bounded_and_symmetric_in_structure(
        vm in any_model(), vb in any_batch_class(),
        am in any_model(), ab in any_batch_class(),
        domain in 0.0f64..=1.0,
    ) {
        let s = pairwise_slowdown((vm, vb), (am, ab), domain);
        prop_assert!((0.0..=0.35).contains(&s), "got {s}");
        // Scaling the domain scales the slowdown linearly.
        let half = pairwise_slowdown((vm, vb), (am, ab), domain / 2.0);
        prop_assert!((half - s / 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_slowdown_caps_and_is_monotone_in_corunners(
        vb in any_batch_class(), n in 0usize..12,
    ) {
        let corunners: Vec<_> = (0..n)
            .map(|_| (NnModel::AlexNet, BatchClass::Tiny, 1.0))
            .collect();
        let s = total_slowdown((NnModel::AlexNet, vb), &corunners);
        prop_assert!((0.0..=0.75).contains(&s));
        if n > 0 {
            let fewer = total_slowdown((NnModel::AlexNet, vb), &corunners[..n - 1]);
            prop_assert!(s >= fewer - 1e-12);
        }
    }

    #[test]
    fn sampled_bandwidth_stays_physical(model in any_model(), b in 1u32..=128) {
        let m = power8_minsky();
        let iter = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)]).iter_time(model, b);
        let bw = sampled_bandwidth_gbs(iter, 0.0);
        // Base floor (4) up to just below peak + base (58).
        prop_assert!((4.0..58.0).contains(&bw), "{model} b={b}: {bw}");
        // Bigger batches never raise the sampled bandwidth.
        if b < 128 {
            let next = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)]).iter_time(model, b + 1);
            prop_assert!(sampled_bandwidth_gbs(next, 0.0) <= bw + 1e-9);
        }
    }

    #[test]
    fn iter_time_scales_inverse_with_bottleneck(b in 1u32..=128) {
        // Same route class: more bandwidth, less comm time.
        use gts_perf::comm::comm_time_s;
        use gts_perf::RouteClass;
        let slow = comm_time_s(NnModel::AlexNet, 2, RouteClass::P2p, 16.0);
        let fast = comm_time_s(NnModel::AlexNet, 2, RouteClass::P2p, 40.0);
        prop_assert!(fast < slow);
        let _ = b;
    }
}

#[test]
fn googlenet_is_always_the_least_communicative() {
    let m = power8_minsky();
    for b in [1u32, 4, 16, 64] {
        let g = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)])
            .iter_time(NnModel::GoogLeNet, b);
        for other in [NnModel::AlexNet, NnModel::CaffeRef] {
            let o = PlacementPerf::evaluate(&m, &[GpuId(0), GpuId(1)]).iter_time(other, b);
            assert!(g.comm_s < o.comm_s, "b={b} {other}");
            assert!(g.comm_duty() < o.comm_duty(), "b={b} {other}");
        }
    }
}
