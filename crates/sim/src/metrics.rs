//! Per-job records, placement timelines and run summaries.

use gts_job::{JobId, JobSpec};
use gts_sched::PolicyKind;
use gts_topo::GlobalGpuId;
use serde::{Deserialize, Serialize};

/// Everything measured about one job across its lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job as submitted.
    pub spec: JobSpec,
    /// When the scheduler placed it (wall-clock seconds).
    pub placed_at_s: f64,
    /// When it finished.
    pub finished_at_s: f64,
    /// GPUs it ran on.
    pub gpus: Vec<GlobalGpuId>,
    /// Placement utility at decision time.
    pub utility: f64,
    /// True when placed below its `min_utility` (SLO violation).
    pub slo_violated: bool,
    /// Solo duration under the *ideal* placement (packed, empty machine).
    pub ideal_duration_s: f64,
    /// How many scheduler iterations postponed this job before placement
    /// (TOPO-AWARE-P's starvation-watch counter; 0 for other policies).
    #[serde(default)]
    pub postponements: u32,
    /// How many times the job restarted after a machine failure.
    #[serde(default)]
    pub restarts: u32,
}

impl JobRecord {
    /// Actual execution time (placement → completion).
    pub fn execution_s(&self) -> f64 {
        self.finished_at_s - self.placed_at_s
    }

    /// Queue waiting time (arrival → placement).
    pub fn waiting_s(&self) -> f64 {
        self.placed_at_s - self.spec.arrival_s
    }

    /// Fig. 8(e): slowdown attributable to the placement decision alone —
    /// `execution / ideal − 1`, clamped at 0.
    pub fn qos_slowdown(&self) -> f64 {
        (self.execution_s() / self.ideal_duration_s - 1.0).max(0.0)
    }

    /// Fig. 8(f): slowdown including scheduler queue time —
    /// `(waiting + execution) / ideal − 1`, clamped at 0.
    pub fn qos_wait_slowdown(&self) -> f64 {
        ((self.waiting_s() + self.execution_s()) / self.ideal_duration_s - 1.0).max(0.0)
    }
}

/// One bar of the Fig. 8(a)–(d) placement timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSegment {
    /// The job occupying the GPUs.
    pub job: JobId,
    /// The GPUs held.
    pub gpus: Vec<GlobalGpuId>,
    /// Segment start (placement time).
    pub start_s: f64,
    /// Segment end (completion time).
    pub end_s: f64,
}

/// One entry of the simulation's event log — the observable history of a
/// run, in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A job entered the waiting queue.
    Arrived {
        /// Event time.
        t_s: f64,
        /// The job.
        job: JobId,
    },
    /// A job received GPUs.
    Placed {
        /// Event time.
        t_s: f64,
        /// The job.
        job: JobId,
        /// Decision utility.
        utility: f64,
    },
    /// TOPO-AWARE-P parked a job below its utility threshold.
    Postponed {
        /// Event time.
        t_s: f64,
        /// The job.
        job: JobId,
    },
    /// A job finished.
    Completed {
        /// Event time.
        t_s: f64,
        /// The job.
        job: JobId,
    },
    /// A machine failed; listed jobs restarted.
    MachineFailed {
        /// Event time.
        t_s: f64,
        /// The machine.
        machine: gts_topo::MachineId,
        /// Jobs that lost their progress.
        interrupted: Vec<JobId>,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn t_s(&self) -> f64 {
        match self {
            SimEvent::Arrived { t_s, .. }
            | SimEvent::Placed { t_s, .. }
            | SimEvent::Postponed { t_s, .. }
            | SimEvent::Completed { t_s, .. }
            | SimEvent::MachineFailed { t_s, .. } => *t_s,
        }
    }
}

/// A `(time, mean running-job utility)` sample (Fig. 9 bottom panels).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilitySample {
    /// Sample time.
    pub t_s: f64,
    /// Mean utility across running jobs (1.0 when idle).
    pub mean_utility: f64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Policy that produced this run.
    pub policy: PolicyKind,
    /// Per-job records, by completion order.
    pub records: Vec<JobRecord>,
    /// Jobs that could never be placed (exceed any machine's capacity).
    pub unplaceable: Vec<JobSpec>,
    /// Placement timeline for Fig. 8/9-style plots.
    pub timeline: Vec<TimelineSegment>,
    /// Mean-utility samples over time.
    pub utility_series: Vec<UtilitySample>,
    /// Completion time of the last job — the paper's "cumulative execution
    /// time" comparison point.
    pub makespan_s: f64,
    /// Placements below `min_utility`.
    pub slo_violations: usize,
    /// Mean scheduler decision latency, seconds (§5.5.3).
    pub mean_decision_s: f64,
    /// Machine failures applied during the run, as `(time, machine)`.
    #[serde(default)]
    pub failures: Vec<(f64, gts_topo::MachineId)>,
    /// Time-ordered event log of the whole run.
    #[serde(default)]
    pub events: Vec<SimEvent>,
    /// The scheduler's decision trace — empty unless the run opted in via
    /// [`crate::engine::SimConfig::with_trace`].
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub trace: Vec<gts_sched::TraceEvent>,
}

impl SimResult {
    /// Looks up a job's record.
    pub fn record(&self, id: JobId) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.spec.id == id)
    }

    /// Jobs sorted worst→best by QoS slowdown (the Fig. 8(e)/10(a)/11(a)
    /// x-axis ordering).
    pub fn qos_slowdowns_sorted(&self) -> Vec<(JobId, f64)> {
        let mut v: Vec<(JobId, f64)> = self
            .records
            .iter()
            .map(|r| (r.spec.id, r.qos_slowdown()))
            .collect();
        // `total_cmp`: a pathological NaN slowdown (e.g. a 0-second ideal
        // duration) must degrade to a deterministic order, not panic a
        // metrics accessor after the whole simulation already ran.
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Jobs sorted worst→best by QoS+wait slowdown.
    pub fn qos_wait_slowdowns_sorted(&self) -> Vec<(JobId, f64)> {
        let mut v: Vec<(JobId, f64)> = self
            .records
            .iter()
            .map(|r| (r.spec.id, r.qos_wait_slowdown()))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Mean QoS slowdown across jobs.
    pub fn mean_qos_slowdown(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.qos_slowdown()).sum::<f64>() / self.records.len() as f64
    }

    /// Total GPU-seconds consumed by completed jobs.
    pub fn gpu_seconds(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.execution_s() * r.gpus.len() as f64)
            .sum()
    }

    /// Mean cluster GPU utilization over the run: busy GPU-seconds divided
    /// by `total_gpus × makespan`. Note that interference *inflates* this
    /// number (slowed jobs hold their GPUs longer); for the abstract's
    /// "higher resource utilization" claim use
    /// [`SimResult::effective_gpu_utilization`].
    pub fn gpu_utilization(&self, total_gpus: usize) -> f64 {
        if total_gpus == 0 || self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.gpu_seconds() / (total_gpus as f64 * self.makespan_s)
    }

    /// Useful work per capacity-time: each job contributes its *ideal*
    /// GPU-seconds (what the work is worth on perfectly placed, solo GPUs),
    /// normalized by `total_gpus × makespan`. Interference and bad
    /// placements lower this — the utilization the scheduler can actually
    /// improve.
    pub fn effective_gpu_utilization(&self, total_gpus: usize) -> f64 {
        if total_gpus == 0 || self.makespan_s <= 0.0 {
            return 0.0;
        }
        let useful: f64 = self
            .records
            .iter()
            .map(|r| r.ideal_duration_s * r.gpus.len() as f64)
            .sum();
        useful / (total_gpus as f64 * self.makespan_s)
    }

    /// The worst postponement count any completed job accumulated.
    pub fn max_postponements(&self) -> u32 {
        self.records.iter().map(|r| r.postponements).max().unwrap_or(0)
    }

    /// Serializes the result to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("results serialize")
    }

    /// Parses a result from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Writes the result to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a result from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Mean waiting time across jobs.
    pub fn mean_waiting_s(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.waiting_s()).sum::<f64>() / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};

    fn record(id: u64, arrival: f64, placed: f64, finished: f64, ideal: f64) -> JobRecord {
        JobRecord {
            spec: JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, 1).arriving_at(arrival),
            placed_at_s: placed,
            finished_at_s: finished,
            gpus: vec![],
            utility: 1.0,
            slo_violated: false,
            ideal_duration_s: ideal,
            postponements: 0,
            restarts: 0,
        }
    }

    fn result(records: Vec<JobRecord>) -> SimResult {
        SimResult {
            policy: PolicyKind::Fcfs,
            records,
            unplaceable: vec![],
            timeline: vec![],
            utility_series: vec![],
            makespan_s: 0.0,
            slo_violations: 0,
            mean_decision_s: 0.0,
            failures: vec![],
            events: vec![],
            trace: vec![],
        }
    }

    #[test]
    fn slowdown_arithmetic() {
        let r = record(0, 0.0, 10.0, 140.0, 100.0);
        assert!((r.execution_s() - 130.0).abs() < 1e-12);
        assert!((r.waiting_s() - 10.0).abs() < 1e-12);
        assert!((r.qos_slowdown() - 0.30).abs() < 1e-12);
        assert!((r.qos_wait_slowdown() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn ideal_run_has_zero_slowdown() {
        let r = record(0, 5.0, 5.0, 105.0, 100.0);
        assert_eq!(r.qos_slowdown(), 0.0);
        assert_eq!(r.qos_wait_slowdown(), 0.0);
    }

    #[test]
    fn sorted_slowdowns_run_worst_to_best() {
        let res = result(vec![
            record(0, 0.0, 0.0, 100.0, 100.0),
            record(1, 0.0, 0.0, 150.0, 100.0),
            record(2, 0.0, 0.0, 120.0, 100.0),
        ]);
        let sorted = res.qos_slowdowns_sorted();
        assert_eq!(
            sorted.iter().map(|(id, _)| id.0).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        for w in sorted.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    /// A zero ideal duration makes the slowdown infinite (or, with zero
    /// execution too, NaN — clamped to 0 by `max`). The sorted accessors
    /// must order such degenerate records deterministically instead of
    /// panicking the way the old `partial_cmp(..).expect("finite")`
    /// comparator did on NaN.
    #[test]
    fn sorted_slowdowns_tolerate_non_finite_values() {
        let res = result(vec![
            record(3, 0.0, 0.0, 100.0, 0.0), // +inf slowdown
            record(1, 0.0, 0.0, 120.0, 100.0),
            record(2, 0.0, 0.0, 100.0, 0.0), // +inf, ties with job 3
            record(0, 0.0, 50.0, 50.0, 0.0), // 0/0 → NaN → clamped to 0
        ]);
        for sorted in [res.qos_slowdowns_sorted(), res.qos_wait_slowdowns_sorted()] {
            let ids: Vec<u64> = sorted.iter().map(|(id, _)| id.0).collect();
            // Infinities first (tie broken by job id), finite next. Job 0's
            // qos slowdown clamps to 0 and sorts last; its wait variant is
            // +inf (50 s wait / 0 ideal) and joins the infinite group — so
            // only assert the invariants common to both accessors.
            assert!(sorted.windows(2).all(|w| w[0].1 >= w[1].1 || w[0].1.is_nan()));
            let inf_ids: Vec<u64> = sorted
                .iter()
                .filter(|(_, s)| s.is_infinite())
                .map(|(id, _)| id.0)
                .collect();
            assert!(inf_ids.windows(2).all(|w| w[0] < w[1]), "inf ties unsorted: {ids:?}");
            assert!(inf_ids.contains(&2) && inf_ids.contains(&3));
        }
    }

    #[test]
    fn means_over_records() {
        let res = result(vec![
            record(0, 0.0, 10.0, 110.0, 100.0),
            record(1, 0.0, 30.0, 160.0, 100.0),
        ]);
        assert!((res.mean_waiting_s() - 20.0).abs() < 1e-12);
        assert!((res.mean_qos_slowdown() - 0.15).abs() < 1e-12);
        assert!(result(vec![]).mean_qos_slowdown() == 0.0);
    }

    #[test]
    fn gpu_utilization_accounting() {
        let mut r1 = record(0, 0.0, 0.0, 100.0, 100.0);
        r1.gpus = vec![
            gts_topo::GlobalGpuId { machine: gts_topo::MachineId(0), gpu: gts_topo::GpuId(0) },
            gts_topo::GlobalGpuId { machine: gts_topo::MachineId(0), gpu: gts_topo::GpuId(1) },
        ];
        let mut res = result(vec![r1]);
        res.makespan_s = 100.0;
        // One 2-GPU job busy for the whole run on a 4-GPU cluster: 50 %.
        assert!((res.gpu_seconds() - 200.0).abs() < 1e-9);
        assert!((res.gpu_utilization(4) - 0.5).abs() < 1e-9);
        assert_eq!(res.gpu_utilization(0), 0.0);
    }

    #[test]
    fn results_round_trip_through_json() {
        let res = result(vec![record(0, 0.0, 10.0, 110.0, 100.0)]);
        let back = SimResult::from_json(&res.to_json()).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].spec.id, gts_job::JobId(0));
        assert_eq!(back.policy, res.policy);
        assert!(SimResult::from_json("{broken").is_err());
    }

    #[test]
    fn record_lookup() {
        let res = result(vec![record(7, 0.0, 0.0, 1.0, 1.0)]);
        assert!(res.record(JobId(7)).is_some());
        assert!(res.record(JobId(8)).is_none());
    }
}
