//! # gts-sim — trace-driven cluster simulation (§5.3–§5.5)
//!
//! A discrete-event simulator around the `gts-sched` scheduler. Jobs arrive
//! from a trace, get placed by the configured policy, and then *progress at
//! a rate coupled to interference*: whenever any placement or completion
//! changes the running set, every affected job's slowdown is re-derived
//! from the Fig. 6 model and its completion time re-solved. This is what
//! lets the simulator reproduce the prototype's behaviour (Fig. 9 validates
//! one against the other) and scale to the paper's 10 k-job / 1 k-machine
//! scenario (Fig. 11).
//!
//! * [`runtime`] — running-job state: remaining work, current rate,
//!   slowdown re-evaluation;
//! * [`engine`] — the event loop (arrivals, completions, scheduler
//!   wakeups), in two bit-identical flavours: an O(J²)-per-event reference
//!   and an incremental loop (machine-scoped slowdown refresh + lazy
//!   completion heap) selected by `GTS_SIM_INCREMENTAL`;
//! * [`metrics`] — per-job records (QoS slowdown, QoS+wait slowdown,
//!   utility, SLO violations), timelines and summary statistics;
//! * [`ideal`] — the "fastest execution" baseline every slowdown is
//!   measured against (packed GPUs, empty machine).

#![warn(missing_docs)]

pub mod bandwidth;
pub mod engine;
pub mod ideal;
pub mod metrics;
pub mod runtime;

pub use bandwidth::{bandwidth_series, MachineBandwidthSeries};
pub use engine::{SimConfig, SimConfigError, SimLoopStats, Simulation};
pub use ideal::ideal_duration_s;
pub use metrics::{JobRecord, SimEvent, SimResult, TimelineSegment};
pub use runtime::RunningJob;
