//! Post-hoc link-bandwidth traces from a simulation result — the bottom
//! panels of Fig. 8 (a)–(d), split into P2P and GPU–CPU–GPU traffic.
//!
//! The sampled-counter model (`gts-perf::bandwidth`) is duty-cycle based
//! and interference stretches both iteration phases equally, so the
//! expected sample for a running job depends only on its placement and
//! batch — which the timeline retains. That lets the series be derived
//! after the fact instead of being carried through the event loop.

use crate::metrics::SimResult;
use gts_perf::{sampled_bandwidth_gbs, PlacementPerf, RouteClass};
use gts_topo::{ClusterTopology, MachineId};

/// Bandwidth-over-time for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineBandwidthSeries {
    /// The machine sampled.
    pub machine: MachineId,
    /// Sample timestamps, seconds.
    pub t_s: Vec<f64>,
    /// P2P (NVLink / switch) bandwidth per sample, GB/s.
    pub p2p_gbs: Vec<f64>,
    /// Host-routed (GPU–CPU–GPU) bandwidth per sample, GB/s.
    pub host_gbs: Vec<f64>,
}

impl MachineBandwidthSeries {
    /// Peak P2P sample.
    pub fn peak_p2p(&self) -> f64 {
        self.p2p_gbs.iter().copied().fold(0.0, f64::max)
    }

    /// Peak host-routed sample.
    pub fn peak_host(&self) -> f64 {
        self.host_gbs.iter().copied().fold(0.0, f64::max)
    }
}

/// Derives per-machine bandwidth series from a finished run.
pub fn bandwidth_series(
    result: &SimResult,
    cluster: &ClusterTopology,
    period_s: f64,
) -> Vec<MachineBandwidthSeries> {
    assert!(period_s > 0.0, "sample period must be positive");
    let n_samples = (result.makespan_s / period_s).ceil() as usize + 1;
    let mut series: Vec<MachineBandwidthSeries> = cluster
        .machines()
        .map(|machine| MachineBandwidthSeries {
            machine,
            t_s: (0..n_samples).map(|k| k as f64 * period_s).collect(),
            p2p_gbs: vec![0.0; n_samples],
            host_gbs: vec![0.0; n_samples],
        })
        .collect();

    for record in &result.records {
        // Per-job expected sample, from its actual placement.
        let perf = PlacementPerf::evaluate_cluster(cluster, &record.gpus);
        let iter = match (&record.spec.comm_graph, record.gpus.len() > 1) {
            (Some(graph), _) if record.gpus.iter().all(|g| g.machine == record.gpus[0].machine) => {
                let machine = record.gpus[0].machine;
                let local: Vec<_> = record.gpus.iter().map(|g| g.gpu).collect();
                gts_perf::placement::graph_iter_time(
                    cluster.machine(machine),
                    record.spec.model,
                    record.spec.batch.representative_batch(),
                    graph,
                    &local,
                )
            }
            _ => perf.iter_time(record.spec.model, record.spec.batch.representative_batch()),
        };
        let bw = sampled_bandwidth_gbs(iter, 0.0);
        let machine = record.gpus[0].machine;
        let s = &mut series[machine.index()];
        let first = (record.placed_at_s / period_s).ceil() as usize;
        let last = ((record.finished_at_s / period_s).floor() as usize).min(n_samples - 1);
        for k in first..=last.min(n_samples - 1) {
            if iter.comm_s > 0.0 && perf.route == RouteClass::P2p {
                s.p2p_gbs[k] += bw;
            } else {
                s.host_gbs[k] += bw;
            }
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use gts_job::{BatchClass, JobSpec, NnModel};
    use gts_perf::ProfileLibrary;
    use gts_sched::{Policy, PolicyKind};
    use gts_topo::power8_minsky;
    use std::sync::Arc;

    fn run(trace: Vec<JobSpec>) -> (SimResult, Arc<ClusterTopology>) {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
        let res = simulate(
            Arc::clone(&cluster),
            profiles,
            Policy::new(PolicyKind::TopoAware),
            trace,
        );
        (res, cluster)
    }

    #[test]
    fn packed_tiny_job_saturates_the_p2p_channel() {
        let (res, cluster) = run(vec![
            JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(400)
        ]);
        let series = bandwidth_series(&res, &cluster, 1.0);
        assert_eq!(series.len(), 1);
        let s = &series[0];
        // Fig. 5's ≈40 GB/s while running; nothing before/after.
        assert!((37.0..43.0).contains(&s.peak_p2p()), "got {}", s.peak_p2p());
        assert_eq!(s.peak_host(), 0.0);
        assert_eq!(*s.p2p_gbs.last().unwrap(), 0.0, "trace must end quiet");
    }

    #[test]
    fn spread_job_shows_up_as_host_traffic() {
        // Occupy one GPU per socket so the 2-GPU job is forced to spread.
        let (res, cluster) = run(vec![
            JobSpec::new(10, NnModel::AlexNet, BatchClass::Big, 1)
                .with_iterations(900)
                .arriving_at(0.0),
            JobSpec::new(11, NnModel::AlexNet, BatchClass::Big, 1)
                .with_iterations(900)
                .arriving_at(0.1),
            JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2)
                .with_iterations(100)
                .arriving_at(1.0),
        ]);
        let r = res.record(gts_job::JobId(0)).unwrap();
        let m = power8_minsky();
        let local: Vec<_> = r.gpus.iter().map(|g| g.gpu).collect();
        assert!(!m.is_packed(&local), "setup failed: {local:?}");

        let series = bandwidth_series(&res, &cluster, 1.0);
        assert!(series[0].peak_host() > 10.0, "got {}", series[0].peak_host());
    }

    #[test]
    fn concurrent_jobs_stack_their_bandwidth() {
        let (res, cluster) = run(vec![
            JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(400),
            JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(400),
        ]);
        let series = bandwidth_series(&res, &cluster, 1.0);
        // Two packed tiny jobs on their own sockets: ≈80 GB/s aggregate.
        assert!(series[0].peak_p2p() > 60.0, "got {}", series[0].peak_p2p());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let (res, cluster) = run(vec![]);
        bandwidth_series(&res, &cluster, 0.0);
    }
}
