//! The ideal-execution baseline.
//!
//! Fig. 8(e)/(f) measure each job's slowdown "in comparison with the ideal
//! scenario, where the job has the fastest execution time": the job alone
//! on an empty machine with the best possible GPU subset. We brute-force
//! that subset (machines carry at most a dozen GPUs) and evaluate the solo
//! iteration time on it.

use gts_job::JobSpec;
use gts_perf::PlacementPerf;
use gts_topo::{GpuId, MachineTopology};

/// The minimum-communication-cost GPU subset of size `n` on an empty
/// machine.
pub fn best_subset(topo: &MachineTopology, n: usize) -> Vec<GpuId> {
    let gpus: Vec<GpuId> = topo.gpus().collect();
    assert!(
        n >= 1 && n <= gpus.len(),
        "cannot pick {n} GPUs from a {}-GPU machine",
        gpus.len()
    );
    if n == 1 {
        return vec![gpus[0]];
    }
    let mut best: Option<(f64, Vec<GpuId>)> = None;
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        let subset: Vec<GpuId> = idx.iter().map(|&i| gpus[i]).collect();
        let cost = topo.pairwise_cost(&subset);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, subset));
        }
        // Next combination.
        let mut i = n;
        let advanced = loop {
            if i == 0 {
                break false;
            }
            i -= 1;
            if idx[i] != i + gpus.len() - n {
                idx[i] += 1;
                for j in (i + 1)..n {
                    idx[j] = idx[j - 1] + 1;
                }
                break true;
            }
        };
        if !advanced {
            return best.expect("at least one subset was evaluated").1;
        }
    }
}

/// Ideal solo duration of a job *wider than any machine*: the best spill is
/// rack-local, so the gradient exchange runs at the full top-of-rack line
/// rate (the placement-independent floor for multi-node jobs).
pub fn ideal_multi_node_duration_s(spec: &JobSpec) -> f64 {
    use gts_perf::{IterTime, RouteClass};
    let comm = gts_perf::comm::comm_time_s(
        spec.model,
        spec.n_gpus,
        RouteClass::HostRouted,
        gts_topo::LinkKind::Network.peak_bandwidth_gbs(),
    );
    let iter = IterTime {
        compute_s: gts_perf::compute_time_s(spec.model, spec.batch.representative_batch()),
        comm_s: comm,
    };
    f64::from(spec.iterations) * iter.total_s()
}

/// Solo duration of `spec` under its ideal placement on `topo`, seconds.
///
/// Jobs with an explicit communication graph additionally get the best task
/// permutation over the chosen subset (orientation matters for a pipeline).
pub fn ideal_duration_s(spec: &JobSpec, topo: &MachineTopology) -> f64 {
    let subset = best_subset(topo, spec.n_gpus as usize);
    let batch = spec.batch.representative_batch();
    let iter_total = match &spec.comm_graph {
        Some(graph) if subset.len() <= 6 => {
            let mut best = f64::INFINITY;
            permute(subset.clone(), &mut |perm| {
                let it = gts_perf::placement::graph_iter_time(
                    topo, spec.model, batch, graph, perm,
                );
                best = best.min(it.total_s());
            });
            best
        }
        Some(graph) => {
            gts_perf::placement::graph_iter_time(topo, spec.model, batch, graph, &subset)
                .total_s()
        }
        None => PlacementPerf::evaluate(topo, &subset)
            .iter_time(spec.model, batch)
            .total_s(),
    };
    f64::from(spec.iterations) * iter_total
}

/// Heap's algorithm: calls `visit` on every permutation of `items`.
fn permute(mut items: Vec<GpuId>, visit: &mut dyn FnMut(&[GpuId])) {
    let n = items.len();
    let mut c = vec![0usize; n];
    visit(&items);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            visit(&items);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};
    use gts_topo::power8_minsky;

    #[test]
    fn best_subset_is_the_nvlink_pair() {
        let m = power8_minsky();
        let s = best_subset(&m, 2);
        assert!(m.is_packed(&s), "got {s:?}");
        assert_eq!(m.pairwise_cost(&s), 1.0);
    }

    #[test]
    fn best_subset_of_four_is_everything() {
        let m = power8_minsky();
        assert_eq!(best_subset(&m, 4).len(), 4);
    }

    #[test]
    fn ideal_duration_beats_spread_duration() {
        let m = power8_minsky();
        let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(100);
        let ideal = ideal_duration_s(&spec, &m);
        let spread = gts_perf::placement::job_duration_s(&spec, &m, &[GpuId(0), GpuId(2)]);
        assert!(ideal < spread);
    }

    #[test]
    fn single_gpu_ideal_is_pure_compute() {
        let m = power8_minsky();
        let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 1).with_iterations(100);
        let d = ideal_duration_s(&spec, &m);
        let expected = 100.0 * gts_perf::compute_time_s(NnModel::AlexNet, 1);
        assert!((d - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn oversized_request_panics() {
        best_subset(&power8_minsky(), 5);
    }
}
