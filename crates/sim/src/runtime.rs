//! Running-job state and interference-coupled progress.
//!
//! A placed job carries a stock of *work* — its solo duration under the
//! placement it received — and burns it down at rate `1/(1+slowdown)`,
//! where the slowdown is the Fig. 6 aggregate over its current co-runners.
//! The engine calls [`RunningJob::advance`] to integrate progress between
//! events and re-derives rates whenever the running set changes.
//!
//! [`current_slowdown`] is a pure function of the victim's allocation and
//! the *ordered* co-runner list: jobs couple only through machines they
//! share (`max_domain_factor` is 0 otherwise), and the aggregate sums
//! per-pair slowdowns in list order. The engine's incremental mode leans
//! on both properties — an event that touches no machine of a job, and
//! moves none of its co-runners within the running vector, provably cannot
//! change that job's slowdown bits.

use gts_perf::{total_slowdown, IterTime, PlacementPerf};
use gts_sched::Allocation;
use gts_topo::ClusterTopology;

/// One placed, in-flight job.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The allocation the scheduler granted.
    pub alloc: Allocation,
    /// Wall-clock time the job started executing.
    pub started_at: f64,
    /// Solo per-iteration profile under this placement.
    pub iter: IterTime,
    /// Remaining work, in solo-execution seconds.
    pub remaining_solo_s: f64,
    /// Current interference slowdown (0 = solo speed).
    pub slowdown: f64,
}

impl RunningJob {
    /// Creates the running state for a fresh placement. Jobs with an
    /// explicit communication graph (model parallelism) are costed per edge
    /// over their actual routes; data-parallel jobs use the ring model.
    pub fn start(alloc: Allocation, cluster: &ClusterTopology, now: f64) -> Self {
        let iter = match (&alloc.spec.comm_graph, alloc.is_single_node()) {
            (Some(graph), true) => {
                let machine = alloc.gpus[0].machine;
                let local: Vec<_> = alloc.gpus.iter().map(|g| g.gpu).collect();
                gts_perf::placement::graph_iter_time(
                    cluster.machine(machine),
                    alloc.spec.model,
                    alloc.spec.batch.representative_batch(),
                    graph,
                    &local,
                )
            }
            _ => PlacementPerf::evaluate_cluster(cluster, &alloc.gpus)
                .iter_time(alloc.spec.model, alloc.spec.batch.representative_batch()),
        };
        let remaining = f64::from(alloc.spec.iterations) * iter.total_s();
        Self {
            alloc,
            started_at: now,
            iter,
            remaining_solo_s: remaining,
            slowdown: 0.0,
        }
    }

    /// Current progress rate in solo-seconds per wall-second.
    pub fn rate(&self) -> f64 {
        1.0 / (1.0 + self.slowdown)
    }

    /// Wall-clock seconds until completion at the current rate.
    pub fn eta_s(&self) -> f64 {
        self.remaining_solo_s / self.rate()
    }

    /// Integrates progress over `dt` wall-clock seconds.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= -1e-9, "time cannot run backwards: {dt}");
        self.remaining_solo_s = (self.remaining_solo_s - dt.max(0.0) * self.rate()).max(0.0);
    }

    /// True once all work is done.
    pub fn finished(&self) -> bool {
        self.remaining_solo_s <= 1e-9
    }
}

/// Re-derives the slowdown of `victim` given every other running job.
///
/// Two jobs interfere through each machine they share; the strongest shared
/// bus domain wins (a pair sharing both a socket and the machine bus is
/// dominated by the socket coupling).
///
/// `others` may be the full running set or any superset of the victim's
/// machine-sharers: non-sharers contribute factor 0 and are filtered out,
/// so both calls return the same bits *provided the surviving co-runners
/// appear in the same order* (the final sum is order-sensitive in f64).
pub fn current_slowdown(
    victim: &RunningJob,
    others: &[&RunningJob],
    cluster: &ClusterTopology,
) -> f64 {
    let spec = &victim.alloc.spec;
    let corunners: Vec<_> = others
        .iter()
        .filter(|o| o.alloc.spec.id != spec.id)
        .filter_map(|o| {
            let factor = max_domain_factor(victim, o, cluster);
            (factor > 0.0).then_some((o.alloc.spec.model, o.alloc.spec.batch, factor))
        })
        .collect();
    total_slowdown((spec.model, spec.batch), &corunners)
}

/// Strongest bus-domain coupling between two allocations across all
/// machines they share.
fn max_domain_factor(a: &RunningJob, b: &RunningJob, cluster: &ClusterTopology) -> f64 {
    let mut factor: f64 = 0.0;
    for machine in a.alloc.machines() {
        let ga = a.alloc.gpus_on(machine);
        let gb = b.alloc.gpus_on(machine);
        if ga.is_empty() || gb.is_empty() {
            continue;
        }
        factor = factor.max(gts_perf::domain_factor(cluster.machine(machine), &ga, &gb));
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, JobSpec, NnModel};
    use gts_topo::{power8_minsky, GlobalGpuId, GpuId, MachineId};
    use std::sync::Arc;

    fn cluster() -> Arc<ClusterTopology> {
        Arc::new(ClusterTopology::homogeneous(power8_minsky(), 2))
    }

    fn alloc(id: u64, machine: u32, gpus: &[u32], batch: BatchClass) -> Allocation {
        Allocation {
            spec: JobSpec::new(id, NnModel::AlexNet, batch, gpus.len() as u32)
                .with_iterations(100),
            gpus: gpus
                .iter()
                .map(|&g| GlobalGpuId { machine: MachineId(machine), gpu: GpuId(g) })
                .collect(),
            utility: 1.0,
        }
    }

    #[test]
    fn solo_job_runs_at_full_rate() {
        let c = cluster();
        let r = RunningJob::start(alloc(0, 0, &[0, 1], BatchClass::Tiny), &c, 0.0);
        assert_eq!(r.rate(), 1.0);
        assert!(!r.finished());
        let expected = 100.0 * r.iter.total_s();
        assert!((r.eta_s() - expected).abs() < 1e-9);
    }

    #[test]
    fn advance_burns_down_work_and_finishes() {
        let c = cluster();
        let mut r = RunningJob::start(alloc(0, 0, &[0], BatchClass::Tiny), &c, 0.0);
        let total = r.remaining_solo_s;
        r.advance(total / 2.0);
        assert!((r.remaining_solo_s - total / 2.0).abs() < 1e-9);
        r.advance(total);
        assert!(r.finished());
        assert_eq!(r.remaining_solo_s, 0.0);
    }

    #[test]
    fn slowdown_stretches_eta() {
        let c = cluster();
        let mut r = RunningJob::start(alloc(0, 0, &[0, 1], BatchClass::Tiny), &c, 0.0);
        let solo_eta = r.eta_s();
        r.slowdown = 0.30;
        assert!((r.eta_s() - solo_eta * 1.3).abs() < 1e-9);
        assert!((r.rate() - 1.0 / 1.3).abs() < 1e-12);
    }

    #[test]
    fn fig6_two_tiny_jobs_same_machine_slow_each_other_30_percent() {
        let c = cluster();
        let a = RunningJob::start(alloc(0, 0, &[0, 1], BatchClass::Tiny), &c, 0.0);
        let b = RunningJob::start(alloc(1, 0, &[2, 3], BatchClass::Tiny), &c, 0.0);
        // Packed on different sockets: the machine-level factor 0.35 scales
        // the 30 % same-socket anchor.
        let s = current_slowdown(&a, &[&b], &c);
        assert!((s - 0.30 * 0.35).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn same_socket_neighbors_interfere_fully() {
        let c = cluster();
        let a = RunningJob::start(alloc(0, 0, &[0], BatchClass::Tiny), &c, 0.0);
        let b = RunningJob::start(alloc(1, 0, &[1], BatchClass::Tiny), &c, 0.0);
        let s = current_slowdown(&a, &[&b], &c);
        assert!((s - 0.30).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn different_machines_do_not_interfere() {
        let c = cluster();
        let a = RunningJob::start(alloc(0, 0, &[0, 1], BatchClass::Tiny), &c, 0.0);
        let b = RunningJob::start(alloc(1, 1, &[0, 1], BatchClass::Tiny), &c, 0.0);
        assert_eq!(current_slowdown(&a, &[&b], &c), 0.0);
    }

    #[test]
    fn victim_is_excluded_from_its_own_corunners() {
        let c = cluster();
        let a = RunningJob::start(alloc(0, 0, &[0, 1], BatchClass::Tiny), &c, 0.0);
        assert_eq!(current_slowdown(&a, &[&a], &c), 0.0);
    }

    #[test]
    fn big_batch_neighbor_barely_hurts_big_batch_victim() {
        let c = cluster();
        let a = RunningJob::start(alloc(0, 0, &[0], BatchClass::Big), &c, 0.0);
        let b = RunningJob::start(alloc(1, 0, &[1], BatchClass::Big), &c, 0.0);
        assert!(current_slowdown(&a, &[&b], &c) < 0.02);
    }
}
