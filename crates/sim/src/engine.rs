//! The discrete-event loop.
//!
//! Events are job arrivals and job completions; after every event batch the
//! scheduler runs one Algorithm 1 iteration ("the scheduler sleeps until a
//! job has finished or a time interval has expired" — with an analytic
//! progress model the interval wakeups are unnecessary, every state change
//! is an event). Between events, running jobs progress at
//! `1/(1+slowdown)`; slowdowns are re-derived after every placement or
//! completion, so interference couples job completion times exactly as on
//! the real machine.

use crate::ideal::ideal_duration_s;
use crate::metrics::{JobRecord, SimEvent, SimResult, TimelineSegment, UtilitySample};
use crate::runtime::{current_slowdown, RunningJob};
use gts_job::JobSpec;
use gts_perf::ProfileLibrary;
use gts_sched::{
    CancelOutcome, ClusterState, EvalParams, PlacementOutcome, Policy, Scheduler, SchedulerConfig,
};
use gts_topo::{ClusterTopology, MachineId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Placement policy under test.
    pub policy: Policy,
    /// Record `(t, mean utility)` samples (cheap; on by default).
    pub sample_utility: bool,
    /// Relative execution-time jitter (±fraction), emulating the run-to-run
    /// variance public clouds exhibit (\[24\], \[27\] in the paper's related
    /// work). Deterministic per `(jitter_seed, job id)`. 0 = exact model.
    pub jitter: f64,
    /// Seed for the jitter draw.
    pub jitter_seed: u64,
    /// Scripted machine failures: at each `(time_s, machine)` the machine
    /// goes offline, its running jobs lose their progress and return to the
    /// waiting queue to be restarted elsewhere.
    pub machine_failures: Vec<(f64, MachineId)>,
    /// Scripted machine recoveries: at each `(time_s, machine)` a failed
    /// machine rejoins the pool.
    pub machine_recoveries: Vec<(f64, MachineId)>,
    /// Record the scheduler's decision trace into `SimResult::trace` —
    /// per-candidate utility breakdowns for every placement decision. Off
    /// by default: tracing allocates per decision, so benches pay nothing.
    pub trace: bool,
    /// Candidate-evaluation engine parameters (defaults to
    /// [`EvalParams::from_env`]; `EvalParams::sequential()` selects the
    /// reference path).
    pub eval: EvalParams,
}

impl SimConfig {
    /// Config with the given policy, utility sampling on, no jitter, no
    /// failures.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            sample_utility: true,
            jitter: 0.0,
            jitter_seed: 0,
            machine_failures: Vec::new(),
            machine_recoveries: Vec::new(),
            trace: false,
            eval: EvalParams::from_env(),
        }
    }

    /// Turns decision-trace recording on.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Overrides the candidate-evaluation engine parameters.
    pub fn with_eval(mut self, eval: EvalParams) -> Self {
        self.eval = eval;
        self
    }

    /// Schedules machine failures.
    pub fn with_machine_failures(mut self, failures: Vec<(f64, MachineId)>) -> Self {
        self.machine_failures = failures;
        self
    }

    /// Schedules machine recoveries.
    pub fn with_machine_recoveries(mut self, recoveries: Vec<(f64, MachineId)>) -> Self {
        self.machine_recoveries = recoveries;
        self
    }

    /// Enables execution-time jitter.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must lie in [0, 1)");
        self.jitter = jitter;
        self.jitter_seed = seed;
        self
    }
}

/// Deterministic per-job jitter factor in `[1-jitter, 1+jitter)`, from a
/// splitmix64 hash of `(seed, job id)` — no RNG state to thread through the
/// event loop.
fn jitter_factor(seed: u64, job: u64, jitter: f64) -> f64 {
    if jitter == 0.0 {
        return 1.0;
    }
    let mut z = seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + jitter * (2.0 * unit - 1.0)
}

/// A trace-driven simulation run.
pub struct Simulation {
    cluster: Arc<ClusterTopology>,
    scheduler: Scheduler,
    config: SimConfig,
    now: f64,
    pending: VecDeque<JobSpec>,
    running: Vec<RunningJob>,
    records: Vec<JobRecord>,
    unplaceable: Vec<JobSpec>,
    timeline: Vec<TimelineSegment>,
    utility_series: Vec<UtilitySample>,
    pending_failures: Vec<(f64, MachineId)>,
    pending_recoveries: Vec<(f64, MachineId)>,
    restarts: std::collections::HashMap<gts_job::JobId, u32>,
    failures_applied: Vec<(f64, MachineId)>,
    events: Vec<SimEvent>,
}

impl Simulation {
    /// Builds a simulation over `cluster` with profile library `profiles`.
    pub fn new(
        cluster: Arc<ClusterTopology>,
        profiles: Arc<ProfileLibrary>,
        config: SimConfig,
    ) -> Self {
        let state = ClusterState::new(Arc::clone(&cluster), profiles);
        let mut scheduler = Scheduler::new(
            state,
            SchedulerConfig { policy: config.policy, eval: config.eval },
        );
        scheduler.set_tracing(config.trace);
        let mut pending_failures = config.machine_failures.clone();
        pending_failures.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite failure times"));
        let mut pending_recoveries = config.machine_recoveries.clone();
        pending_recoveries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite recovery times"));
        Self {
            cluster,
            scheduler,
            config,
            now: 0.0,
            pending: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            unplaceable: Vec::new(),
            timeline: Vec::new(),
            utility_series: Vec::new(),
            pending_failures,
            pending_recoveries,
            restarts: std::collections::HashMap::new(),
            failures_applied: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Runs a whole trace to completion and returns the result.
    pub fn run(mut self, mut trace: Vec<JobSpec>) -> SimResult {
        trace.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("finite arrivals")
                .then(a.id.cmp(&b.id))
        });
        // Reject jobs that can never fit anywhere up front.
        for job in trace {
            if self.fits_somewhere(&job) {
                self.pending.push_back(job);
            } else {
                self.unplaceable.push(job);
            }
        }

        loop {
            let next_arrival = self.pending.front().map(|j| j.arrival_s);
            let next_completion = self
                .running
                .iter()
                .map(|r| self.now + r.eta_s())
                .min_by(|a, b| a.partial_cmp(b).expect("finite"));
            let next_failure = self.pending_failures.first().map(|&(t, _)| t);
            let next_recovery = self.pending_recoveries.first().map(|&(t, _)| t);

            let timed = [next_arrival, next_completion, next_failure, next_recovery]
                .into_iter()
                .flatten()
                .min_by(|a, b| a.partial_cmp(b).expect("finite"));
            let t = match timed {
                Some(t) => t,
                None => {
                    // No more timed events. Give the scheduler one more
                    // chance (the cluster is idle, so anything placeable
                    // places now); whatever still sticks at the head of the
                    // queue can never run.
                    self.run_scheduler();
                    if !self.running.is_empty() {
                        self.refresh_slowdowns();
                        continue;
                    }
                    match self.scheduler.drop_head() {
                        Some(stuck) => {
                            self.unplaceable.push(stuck);
                            continue;
                        }
                        None => break,
                    }
                }
            };

            // Integrate progress up to the event.
            let dt = (t - self.now).max(0.0);
            for r in &mut self.running {
                r.advance(dt);
            }
            self.now = t;
            self.scheduler.set_now(t);

            self.process_completions();
            self.process_failures();
            self.process_recoveries();
            self.process_arrivals();
            self.run_scheduler();
            self.refresh_slowdowns();
            if self.config.sample_utility {
                self.sample_utility();
            }

            if self.pending.is_empty()
                && self.running.is_empty()
                && self.scheduler.queue().fully_drained()
            {
                break;
            }
        }

        let makespan_s = self
            .records
            .iter()
            .map(|r| r.finished_at_s)
            .fold(0.0, f64::max);
        let trace = self.scheduler.take_trace();
        SimResult {
            policy: self.config.policy.kind,
            makespan_s,
            slo_violations: self.scheduler.slo_violations(),
            mean_decision_s: self.scheduler.decision_stats().mean_s(),
            records: self.records,
            unplaceable: self.unplaceable,
            timeline: self.timeline,
            utility_series: self.utility_series,
            failures: self.failures_applied,
            events: self.events,
            trace,
        }
    }

    /// Applies every failure scheduled at or before `now`: the machine's
    /// running jobs are torn down and resubmitted (losing their progress),
    /// then the machine goes dark.
    fn process_failures(&mut self) {
        while let Some(&(t, machine)) = self.pending_failures.first() {
            if t > self.now + 1e-9 {
                break;
            }
            self.pending_failures.remove(0);
            if self.scheduler.state().is_machine_down(machine) {
                continue;
            }
            // Tear down every running job touching the machine.
            let victims: Vec<gts_job::JobId> = self
                .running
                .iter()
                .filter(|r| r.alloc.gpus.iter().any(|g| g.machine == machine))
                .map(|r| r.alloc.spec.id)
                .collect();
            for id in victims {
                let idx = self
                    .running
                    .iter()
                    .position(|r| r.alloc.spec.id == id)
                    .expect("victim is running");
                let lost = self.running.swap_remove(idx);
                match self.scheduler.cancel(id) {
                    CancelOutcome::Stopped(alloc) => {
                        // Interrupted segment still shows in the timeline.
                        self.timeline.push(TimelineSegment {
                            job: id,
                            gpus: alloc.gpus.clone(),
                            start_s: lost.started_at,
                            end_s: self.now,
                        });
                    }
                    other => panic!("cancel of running {id} returned {other:?}"),
                }
                *self.restarts.entry(id).or_insert(0) += 1;
                // Resubmit from scratch; arrival time stays the original so
                // queue fairness is preserved.
                self.scheduler.submit(lost.alloc.spec.clone());
            }
            self.scheduler.fail_machine(machine);
            self.failures_applied.push((self.now, machine));
            let mut interrupted: Vec<gts_job::JobId> = self
                .restarts
                .keys()
                .copied()
                .filter(|id| self.scheduler.queue().contains(*id))
                .collect();
            // `restarts` is a HashMap; sort so the event log is deterministic.
            interrupted.sort();
            self.events.push(SimEvent::MachineFailed {
                t_s: self.now,
                machine,
                interrupted,
            });
        }
    }

    fn fits_somewhere(&self, job: &JobSpec) -> bool {
        if job.constraints.anti_collocate && job.n_gpus > 1 {
            return (job.n_gpus as usize) <= self.cluster.n_machines();
        }
        if !job.constraints.single_node {
            // Multi-node-capable jobs can spill across the whole cluster.
            return (job.n_gpus as usize) <= self.cluster.n_gpus();
        }
        self.cluster
            .machines()
            .any(|m| self.cluster.machine(m).n_gpus() >= job.n_gpus as usize)
    }

    fn process_completions(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].finished() {
                let done = self.running.swap_remove(i);
                let alloc = self.scheduler.complete(done.alloc.spec.id);
                debug_assert_eq!(alloc.gpus, done.alloc.gpus);
                let ideal = self.ideal_for(&done.alloc.spec);
                self.timeline.push(TimelineSegment {
                    job: done.alloc.spec.id,
                    gpus: done.alloc.gpus.clone(),
                    start_s: done.started_at,
                    end_s: self.now,
                });
                self.events.push(SimEvent::Completed {
                    t_s: self.now,
                    job: done.alloc.spec.id,
                });
                self.records.push(JobRecord {
                    placed_at_s: done.started_at,
                    finished_at_s: self.now,
                    gpus: done.alloc.gpus,
                    utility: done.alloc.utility,
                    slo_violated: done.alloc.utility + 1e-9 < done.alloc.spec.min_utility,
                    ideal_duration_s: ideal,
                    postponements: self.scheduler.postpone_count(done.alloc.spec.id),
                    restarts: self.restarts.get(&done.alloc.spec.id).copied().unwrap_or(0),
                    spec: done.alloc.spec,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Brings scheduled machines back online.
    fn process_recoveries(&mut self) {
        while let Some(&(t, machine)) = self.pending_recoveries.first() {
            if t > self.now + 1e-9 {
                break;
            }
            self.pending_recoveries.remove(0);
            if self.scheduler.state().is_machine_down(machine) {
                self.scheduler.recover_machine(machine);
            }
        }
    }

    fn process_arrivals(&mut self) {
        while let Some(job) = self.pending.front() {
            if job.arrival_s <= self.now + 1e-9 {
                let job = self.pending.pop_front().expect("front checked");
                self.events.push(SimEvent::Arrived { t_s: self.now, job: job.id });
                self.scheduler.submit(job);
            } else {
                break;
            }
        }
    }

    fn run_scheduler(&mut self) {
        let outcomes = self.scheduler.run_iteration();
        for outcome in outcomes {
            if let PlacementOutcome::PostponedLowUtility { id, .. } = &outcome {
                self.events.push(SimEvent::Postponed { t_s: self.now, job: *id });
            }
            if let PlacementOutcome::Placed { spec, gpus: _, utility, .. } = outcome {
                self.events.push(SimEvent::Placed {
                    t_s: self.now,
                    job: spec.id,
                    utility,
                });
                let alloc = self
                    .scheduler
                    .state()
                    .allocation(spec.id)
                    .expect("just placed")
                    .clone();
                let mut job = RunningJob::start(alloc, &self.cluster, self.now);
                job.remaining_solo_s *= jitter_factor(
                    self.config.jitter_seed,
                    job.alloc.spec.id.0,
                    self.config.jitter,
                );
                self.running.push(job);
            }
        }
    }

    fn refresh_slowdowns(&mut self) {
        let snapshot: Vec<RunningJob> = self.running.clone();
        let refs: Vec<&RunningJob> = snapshot.iter().collect();
        for r in &mut self.running {
            r.slowdown = current_slowdown(r, &refs, &self.cluster);
        }
    }

    fn sample_utility(&mut self) {
        let mean = if self.running.is_empty() {
            1.0
        } else {
            self.running.iter().map(|r| r.alloc.utility).sum::<f64>() / self.running.len() as f64
        };
        self.utility_series.push(UtilitySample { t_s: self.now, mean_utility: mean });
    }

    fn ideal_for(&self, spec: &JobSpec) -> f64 {
        // Homogeneous clusters (the paper's setting): machine 0 is
        // representative. For heterogeneous clusters, take the fastest.
        let best = self
            .cluster
            .machines()
            .filter(|&m| self.cluster.machine(m).n_gpus() >= spec.n_gpus as usize)
            .map(|m| ideal_duration_s(spec, self.cluster.machine(m)))
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            best
        } else {
            // Wider than any machine: the floor is a rack-local spill.
            crate::ideal::ideal_multi_node_duration_s(spec)
        }
    }
}

/// Convenience: run one trace under one policy on a homogeneous cluster.
///
/// ```
/// use gts_sim::engine::simulate;
/// use gts_sched::{Policy, PolicyKind};
/// use gts_perf::ProfileLibrary;
/// use gts_topo::{power8_minsky, ClusterTopology};
/// use gts_job::{BatchClass, JobSpec, NnModel};
/// use std::sync::Arc;
///
/// let machine = power8_minsky();
/// let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
/// let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
/// let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(10);
/// let result = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAwareP), vec![job]);
/// assert_eq!(result.records.len(), 1);
/// assert_eq!(result.slo_violations, 0);
/// ```
pub fn simulate(
    cluster: Arc<ClusterTopology>,
    profiles: Arc<ProfileLibrary>,
    policy: Policy,
    trace: Vec<JobSpec>,
) -> SimResult {
    Simulation::new(cluster, profiles, SimConfig::new(policy)).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};
    use gts_sched::PolicyKind;
    use gts_topo::power8_minsky;

    fn setup(n_machines: usize) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        (cluster, profiles)
    }

    fn job(id: u64, gpus: u32, batch: BatchClass, arrival: f64, iters: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, batch, gpus)
            .arriving_at(arrival)
            .with_iterations(iters)
            .with_min_utility(if gpus > 1 { 0.5 } else { 0.3 })
    }

    #[test]
    fn single_job_runs_at_ideal_speed() {
        let (c, p) = setup(1);
        let trace = vec![job(0, 2, BatchClass::Tiny, 0.0, 100)];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.records.len(), 1);
        let r = &res.records[0];
        assert!(r.qos_slowdown() < 1e-9, "got {}", r.qos_slowdown());
        assert_eq!(r.waiting_s(), 0.0);
        assert_eq!(res.slo_violations, 0);
        assert!(res.makespan_s > 0.0);
    }

    #[test]
    fn two_collocated_tiny_jobs_suffer_the_fig6_slowdown() {
        let (c, p) = setup(1);
        // Two 2-GPU tiny jobs on one machine: each packs a socket, they
        // interfere at the machine level (0.35 × 30 %).
        let trace = vec![
            job(0, 2, BatchClass::Tiny, 0.0, 400),
            job(1, 2, BatchClass::Tiny, 0.0, 400),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.records.len(), 2);
        for r in &res.records {
            let s = r.qos_slowdown();
            assert!((s - 0.105).abs() < 0.02, "expected ≈10.5 %, got {s}");
        }
    }

    #[test]
    fn sequential_jobs_do_not_interfere() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 4, BatchClass::Tiny, 0.0, 50),
            job(1, 4, BatchClass::Tiny, 1e6, 50),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        for r in &res.records {
            assert!(r.qos_slowdown() < 1e-9);
        }
    }

    #[test]
    fn queued_job_waits_for_capacity() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 4, BatchClass::Big, 0.0, 20),
            job(1, 4, BatchClass::Big, 1.0, 20),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::Fcfs), trace);
        let r0 = res.record(gts_job::JobId(0)).unwrap();
        let r1 = res.record(gts_job::JobId(1)).unwrap();
        assert_eq!(r0.waiting_s(), 0.0);
        assert!(r1.waiting_s() > 0.0);
        assert!((r1.placed_at_s - r0.finished_at_s).abs() < 1e-6);
    }

    #[test]
    fn oversized_jobs_are_reported_unplaceable() {
        let (c, p) = setup(2);
        let trace = vec![
            job(0, 8, BatchClass::Tiny, 0.0, 10), // no machine has 8 GPUs
            job(1, 1, BatchClass::Tiny, 0.0, 10),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.unplaceable.len(), 1);
        assert_eq!(res.unplaceable[0].id, gts_job::JobId(0));
        assert_eq!(res.records.len(), 1);
    }

    #[test]
    fn timeline_matches_records() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 2, BatchClass::Small, 0.0, 100),
            job(1, 2, BatchClass::Small, 5.0, 100),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.timeline.len(), 2);
        for seg in &res.timeline {
            let r = res.record(seg.job).unwrap();
            assert_eq!(seg.start_s, r.placed_at_s);
            assert_eq!(seg.end_s, r.finished_at_s);
            assert_eq!(seg.gpus, r.gpus);
        }
    }

    #[test]
    fn utility_series_is_time_ordered() {
        let (c, p) = setup(1);
        let trace: Vec<JobSpec> = (0..6)
            .map(|i| job(i, 1 + (i % 2) as u32, BatchClass::Small, i as f64 * 3.0, 100))
            .collect();
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAwareP), trace);
        for w in res.utility_series.windows(2) {
            assert!(w[0].t_s <= w[1].t_s + 1e-9);
        }
        assert!(!res.utility_series.is_empty());
        for s in &res.utility_series {
            assert!((0.0..=1.0 + 1e-9).contains(&s.mean_utility));
        }
    }

    #[test]
    fn topo_aware_p_beats_fcfs_on_the_fragmentation_trap() {
        // The Fig. 8 situation in miniature: two 1-GPU jobs land on
        // different sockets; a 2-GPU tiny job arrives while they run. FCFS
        // spreads it across sockets; TOPO-AWARE-P waits for a free pair.
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 1, BatchClass::Tiny, 0.0, 1200),
            job(1, 1, BatchClass::Tiny, 1.0, 2400),
            job(2, 2, BatchClass::Tiny, 2.0, 800),
        ];
        let fcfs = simulate(
            Arc::clone(&c),
            Arc::clone(&p),
            Policy::new(PolicyKind::Fcfs),
            trace.clone(),
        );
        let tap = simulate(c, p, Policy::new(PolicyKind::TopoAwareP), trace);

        let fcfs_j2 = fcfs.record(gts_job::JobId(2)).unwrap();
        let tap_j2 = tap.record(gts_job::JobId(2)).unwrap();
        // FCFS executes J2 spread (slow); TOPO-AWARE-P packs it (fast).
        assert!(
            tap_j2.execution_s() < fcfs_j2.execution_s(),
            "TAP exec {} !< FCFS exec {}",
            tap_j2.execution_s(),
            fcfs_j2.execution_s()
        );
        assert_eq!(tap.slo_violations, 0);
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let (c, p) = setup(2);
        let trace: Vec<JobSpec> = (0..20)
            .map(|i| {
                job(
                    i,
                    [1u32, 2, 2, 4][(i % 4) as usize],
                    BatchClass::ALL[(i % 4) as usize],
                    i as f64 * 4.0,
                    150,
                )
            })
            .collect();
        for kind in PolicyKind::ALL {
            let res = simulate(
                Arc::clone(&c),
                Arc::clone(&p),
                Policy::new(kind),
                trace.clone(),
            );
            assert_eq!(res.records.len(), 20, "{kind} lost jobs");
            assert!(res.unplaceable.is_empty(), "{kind}");
            // GPUs are never double-booked: check overlapping segments.
            for (i, a) in res.timeline.iter().enumerate() {
                for b in &res.timeline[i + 1..] {
                    let overlap = a.start_s < b.end_s - 1e-9 && b.start_s < a.end_s - 1e-9;
                    if overlap {
                        for g in &a.gpus {
                            assert!(
                                !b.gpus.contains(g),
                                "{kind}: {g} double-booked by {} and {}",
                                a.job,
                                b.job
                            );
                        }
                    }
                }
            }
        }
    }
}
