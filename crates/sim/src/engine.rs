//! The discrete-event loop.
//!
//! Events are job arrivals, job completions, and scripted machine
//! failures/recoveries; after every event batch the scheduler runs one
//! Algorithm 1 iteration ("the scheduler sleeps until a job has finished or
//! a time interval has expired" — with an analytic progress model the
//! interval wakeups are unnecessary, every state change is an event).
//! Between events, running jobs progress at `1/(1+slowdown)`; slowdowns are
//! re-derived after every placement or completion, so interference couples
//! job completion times exactly as on the real machine.
//!
//! # Incremental event loop
//!
//! The loop runs in one of two modes, selected by
//! [`SimConfig::incremental`] (env default: `GTS_SIM_INCREMENTAL`, on
//! unless set to `0`/`false`/`off`):
//!
//! * **Reference** — after every event, every running job's slowdown is
//!   re-derived against every other running job (O(J²) pairwise with a
//!   machine-set intersection per pair), and the next completion is found
//!   by a full scan over the running set.
//! * **Incremental** — interference couples jobs solely through shared
//!   machines ([`crate::runtime::current_slowdown`] takes the max
//!   `domain_factor` over shared machines and ignores everything else), so
//!   an event can only change the slowdown of jobs holding GPUs on the
//!   machines it touched. The loop tracks a *dirty-machine set* fed by
//!   placements, completions, failures, and running-vector reorders, and
//!   refreshes only the jobs on dirty machines — bit-identical to the
//!   reference, at O(affected) instead of O(J²) per event. The next
//!   completion comes from a lazy min-heap keyed by `(eta bits, job id)`
//!   that is re-keyed only when a job's rate changes, and the sorted
//!   failure/recovery schedules pop through cursors instead of
//!   `Vec::remove(0)`.
//!
//! Bit-identity of the two modes across policies, seeds, failures, and
//! jitter is enforced by `tests/stack_properties.rs` at the workspace root
//! and, in debug builds, by a full O(J²) shadow check after every scoped
//! refresh.

use crate::ideal::ideal_duration_s;
use crate::metrics::{JobRecord, SimEvent, SimResult, TimelineSegment, UtilitySample};
use crate::runtime::{current_slowdown, RunningJob};
use gts_job::{BatchClass, JobId, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::{
    Allocation, CancelOutcome, ClusterState, EvalCache, EvalParams, PlacementOutcome, Policy,
    Scheduler, SchedulerConfig, ShardSpec, TraceEvent,
};
use gts_topo::{ClusterTopology, MachineId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, OnceLock};

/// A rejected [`SimConfig`] input, caught at construction time instead of
/// panicking deep inside the event loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SimConfigError {
    /// A scripted failure/recovery schedule contains a NaN or infinite
    /// timestamp. The event loop orders schedules by time, so a non-finite
    /// entry has no well-defined position.
    NonFiniteTime {
        /// Which schedule the bad entry came from (`"failure"`/`"recovery"`).
        schedule: &'static str,
        /// Index of the offending entry in the caller's vector.
        index: usize,
        /// The rejected timestamp.
        time_s: f64,
    },
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteTime { schedule, index, time_s } => write!(
                f,
                "{schedule} schedule entry {index} has non-finite time {time_s}"
            ),
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Placement policy under test.
    pub policy: Policy,
    /// Record `(t, mean utility)` samples (cheap; on by default).
    pub sample_utility: bool,
    /// Relative execution-time jitter (±fraction), emulating the run-to-run
    /// variance public clouds exhibit (\[24\], \[27\] in the paper's related
    /// work). Deterministic per `(jitter_seed, job id)`. 0 = exact model.
    pub jitter: f64,
    /// Seed for the jitter draw.
    pub jitter_seed: u64,
    /// Scripted machine failures: at each `(time_s, machine)` the machine
    /// goes offline, its running jobs lose their progress and return to the
    /// waiting queue to be restarted elsewhere.
    pub machine_failures: Vec<(f64, MachineId)>,
    /// Scripted machine recoveries: at each `(time_s, machine)` a failed
    /// machine rejoins the pool.
    pub machine_recoveries: Vec<(f64, MachineId)>,
    /// Record the scheduler's decision trace into `SimResult::trace` —
    /// per-candidate utility breakdowns for every placement decision. Off
    /// by default: tracing allocates per decision, so benches pay nothing.
    pub trace: bool,
    /// Candidate-evaluation engine parameters (defaults to
    /// [`EvalParams::from_env`]; `EvalParams::sequential()` selects the
    /// reference path).
    pub eval: EvalParams,
    /// Run the incremental event loop (machine-scoped slowdown refresh +
    /// completion heap) instead of the O(J²)-per-event reference loop.
    /// Defaults from `GTS_SIM_INCREMENTAL` (on unless `0`/`false`/`off`);
    /// both modes produce bit-identical [`SimResult`]s.
    pub incremental: bool,
    /// Keep the cross-event placement cache ([`EvalCache`]) alive for the
    /// whole run, so arrivals that see a machine/job equivalence class any
    /// earlier arrival already evaluated skip the DRB mapping entirely.
    /// Defaults from `GTS_EVAL_CACHE` (on unless `0`/`false`/`off`); cache
    /// on and off produce bit-identical [`SimResult`]s (modulo the
    /// [`TraceEvent::EvalCacheStats`] footer when tracing).
    pub eval_cache: bool,
    /// Overrides the cluster-state shard count (`None` = `GTS_SHARDS` env
    /// default, rack-aligned auto partition). `Some(1)` forces the
    /// single-shard reference decision path; any count produces
    /// bit-identical [`SimResult`]s.
    pub shards: Option<usize>,
    /// Meter per-phase wall time (decision / refresh / heap / drain) into
    /// [`SimLoopStats`]. Off by default: the heap/refresh/drain phases
    /// need two `Instant` reads per event, which timed benches should not
    /// pay. Decision time is always available (the scheduler meters every
    /// decision regardless).
    pub phase_timing: bool,
}

/// Reads `GTS_SIM_INCREMENTAL` (cached after the first read). The
/// incremental loop is on unless the variable is set to `0`, `false`, or
/// `off` — it is bit-identical to the reference loop, so there is no
/// accuracy reason to opt out.
fn incremental_default() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("GTS_SIM_INCREMENTAL") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    })
}

impl SimConfig {
    /// Config with the given policy, utility sampling on, no jitter, no
    /// failures.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            sample_utility: true,
            jitter: 0.0,
            jitter_seed: 0,
            machine_failures: Vec::new(),
            machine_recoveries: Vec::new(),
            trace: false,
            eval: EvalParams::from_env(),
            incremental: incremental_default(),
            eval_cache: EvalCache::enabled_by_env(),
            shards: None,
            phase_timing: false,
        }
    }

    /// Turns decision-trace recording on.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Overrides the candidate-evaluation engine parameters.
    pub fn with_eval(mut self, eval: EvalParams) -> Self {
        self.eval = eval;
        self
    }

    /// Selects the incremental (`true`) or reference (`false`) event loop.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Enables (`true`) or disables (`false`) the cross-event placement
    /// cache, overriding `GTS_EVAL_CACHE`.
    pub fn with_eval_cache(mut self, eval_cache: bool) -> Self {
        self.eval_cache = eval_cache;
        self
    }

    /// Rejects non-finite timestamps in a failure/recovery schedule. The
    /// event loop sorts and merges schedules by time, so a NaN or infinite
    /// entry has no meaningful position — catch it here, at construction,
    /// instead of panicking (or silently mis-sorting) mid-run.
    fn validate_schedule(
        schedule: &'static str,
        entries: &[(f64, MachineId)],
    ) -> Result<(), SimConfigError> {
        for (index, &(time_s, _)) in entries.iter().enumerate() {
            if !time_s.is_finite() {
                return Err(SimConfigError::NonFiniteTime { schedule, index, time_s });
            }
        }
        Ok(())
    }

    /// Schedules machine failures, rejecting non-finite timestamps.
    pub fn try_with_machine_failures(
        mut self,
        failures: Vec<(f64, MachineId)>,
    ) -> Result<Self, SimConfigError> {
        Self::validate_schedule("failure", &failures)?;
        self.machine_failures = failures;
        Ok(self)
    }

    /// Schedules machine recoveries, rejecting non-finite timestamps.
    pub fn try_with_machine_recoveries(
        mut self,
        recoveries: Vec<(f64, MachineId)>,
    ) -> Result<Self, SimConfigError> {
        Self::validate_schedule("recovery", &recoveries)?;
        self.machine_recoveries = recoveries;
        Ok(self)
    }

    /// Schedules machine failures.
    ///
    /// # Panics
    /// On non-finite timestamps; use
    /// [`try_with_machine_failures`](Self::try_with_machine_failures) to
    /// handle the error instead.
    pub fn with_machine_failures(self, failures: Vec<(f64, MachineId)>) -> Self {
        self.try_with_machine_failures(failures)
            .expect("failure schedule must use finite times")
    }

    /// Schedules machine recoveries.
    ///
    /// # Panics
    /// On non-finite timestamps; use
    /// [`try_with_machine_recoveries`](Self::try_with_machine_recoveries)
    /// to handle the error instead.
    pub fn with_machine_recoveries(self, recoveries: Vec<(f64, MachineId)>) -> Self {
        self.try_with_machine_recoveries(recoveries)
            .expect("recovery schedule must use finite times")
    }

    /// Overrides the shard count (`1` = single-shard reference path).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Enables the per-phase wall-time breakdown in [`SimLoopStats`].
    pub fn with_phase_timing(mut self, on: bool) -> Self {
        self.phase_timing = on;
        self
    }

    /// Enables execution-time jitter.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must lie in [0, 1)");
        self.jitter = jitter;
        self.jitter_seed = seed;
        self
    }
}

/// Deterministic per-job jitter factor in `[1-jitter, 1+jitter)`, from a
/// splitmix64 hash of `(seed, job id)` — no RNG state to thread through the
/// event loop.
fn jitter_factor(seed: u64, job: u64, jitter: f64) -> f64 {
    if jitter == 0.0 {
        return 1.0;
    }
    let mut z = seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + jitter * (2.0 * unit - 1.0)
}

/// Event-loop instrumentation: how much slowdown-derivation work the run
/// actually did. The scoped-refresh unit tests assert on these counters to
/// prove jobs on untouched machines are *not* recomputed.
#[derive(Debug, Clone, Default)]
pub struct SimLoopStats {
    /// Total `current_slowdown` derivations across the run.
    pub slowdown_evals: u64,
    /// Per-job `current_slowdown` derivation counts.
    pub evals_by_job: HashMap<JobId, u64>,
    /// Placement-cache lookups answered without running the DRB mapping
    /// (one lookup per machine equivalence class per arrival). 0 when the
    /// cache is off.
    pub eval_cache_hits: u64,
    /// Placement-cache lookups that ran the full evaluation.
    pub eval_cache_misses: u64,
    /// Placement-cache entries displaced by LRU capacity pressure.
    pub eval_cache_evictions: u64,
    /// Shards examined by the two-level admission pass (one count per
    /// shard per topo-aware decision). 0 on the single-shard path.
    pub shard_admission_checked: u64,
    /// Shards the admission pass skipped outright — no machine in the
    /// shard had enough free GPUs, so placement never scanned it.
    pub shard_admission_skipped: u64,
    /// Memo-miss shards whose admissible utility bound was consulted by
    /// the branch-and-bound prune pass. 0 with `GTS_SHARD_BOUND=0` or on
    /// the single-shard path.
    pub shard_bound_checked: u64,
    /// Memo-miss shards skipped outright because their bound proved no
    /// candidate could enter the selection window.
    pub shard_bound_pruned: u64,
    /// Queue-drain retries answered from a cross-event decision snapshot
    /// (`GTS_DECISION_REPLAY`, DESIGN.md §12). 0 with replay off, on the
    /// single-shard path, or with the eval cache disabled.
    pub replay_hits: u64,
    /// Shards re-evaluated by partial replays — everything else those
    /// retries needed was reused from the snapshot.
    pub replay_shards_reeval: u64,
    /// Snapshots present but unusable (epoch/guard mismatch), falling
    /// back to the full decision path.
    pub replay_full_fallbacks: u64,
    /// Wall nanoseconds spent inside placement decisions (always metered).
    pub phase_decision_ns: u64,
    /// 99th-percentile placement-decision latency, nanoseconds (always
    /// metered) — the retry tail a mean hides once most replays are O(1).
    pub decision_p99_ns: u64,
    /// Wall nanoseconds re-deriving slowdowns after event batches. 0
    /// unless [`SimConfig::phase_timing`] is on.
    pub phase_refresh_ns: u64,
    /// Wall nanoseconds in completion-heap maintenance (next-completion
    /// queries + completion processing). 0 unless phase timing is on.
    pub phase_heap_ns: u64,
    /// Wall nanoseconds inside `run_scheduler` queue drains (includes
    /// `phase_decision_ns`). 0 unless phase timing is on.
    pub phase_drain_ns: u64,
}

impl SimLoopStats {
    fn note_eval(&mut self, id: JobId) {
        self.slowdown_evals += 1;
        *self.evals_by_job.entry(id).or_insert(0) += 1;
    }

    /// Derivation count for one job (0 if it never ran).
    pub fn evals_for(&self, id: JobId) -> u64 {
        self.evals_by_job.get(&id).copied().unwrap_or(0)
    }
}

/// A trace-driven simulation run.
pub struct Simulation {
    cluster: Arc<ClusterTopology>,
    scheduler: Scheduler,
    config: SimConfig,
    now: f64,
    pending: VecDeque<JobSpec>,
    running: Vec<RunningJob>,
    /// Position of each running job in `running` — kept exact across
    /// `push`/`swap_remove` so event processing never scans for a job.
    job_pos: HashMap<JobId, usize>,
    /// Machines touched since the last refresh (mask + list, so marking is
    /// O(1) and clearing is O(|dirty|)). Only fed in incremental mode.
    dirty_mask: Vec<bool>,
    dirty_list: Vec<MachineId>,
    /// Lazy min-heap of completion times: `(completion-time bits, job id)`.
    /// Positive-finite f64 bits order identically to the values, and the
    /// job id breaks exact ties deterministically. Entries are invalidated
    /// (not removed) when a job's rate changes or it leaves `running`;
    /// `heap_key` holds the one live key per job.
    completion_heap: BinaryHeap<Reverse<(u64, JobId)>>,
    heap_key: HashMap<JobId, u64>,
    /// Cursors into the sorted failure/recovery schedules — O(1) pops
    /// instead of `Vec::remove(0)`.
    failure_cursor: usize,
    recovery_cursor: usize,
    records: Vec<JobRecord>,
    unplaceable: Vec<JobSpec>,
    timeline: Vec<TimelineSegment>,
    utility_series: Vec<UtilitySample>,
    pending_failures: Vec<(f64, MachineId)>,
    pending_recoveries: Vec<(f64, MachineId)>,
    restarts: HashMap<JobId, u32>,
    failures_applied: Vec<(f64, MachineId)>,
    events: Vec<SimEvent>,
    stats: SimLoopStats,
    /// Largest single-machine GPU count, precomputed so the admission
    /// pre-pass is O(1) per job instead of a cluster scan.
    max_machine_gpus: usize,
    /// `ideal_for` is a pure function of the spec shape (the machine set is
    /// fixed per run), so completed-job records memoize it instead of
    /// brute-forcing every machine per completion.
    ideal_cache: HashMap<(NnModel, BatchClass, u32, u32), f64>,
    /// Jobs with an explicit communication graph can't use `ideal_cache`
    /// directly (the graph is part of the cost), but generated workloads
    /// draw graphs from a tiny family, so a per-key list of seen
    /// `(graph, ideal)` pairs resolves almost every completion with one
    /// cheap structural compare.
    ideal_graph_cache: HashMap<IdealKey, Vec<(gts_job::JobGraph, f64)>>,
}

/// Spec-shape key for the `ideal_for` memo tables: model, batch class,
/// GPU count, and per-GPU memory demand.
type IdealKey = (NnModel, BatchClass, u32, u32);

impl Simulation {
    /// Builds a simulation over `cluster` with profile library `profiles`.
    pub fn new(
        cluster: Arc<ClusterTopology>,
        profiles: Arc<ProfileLibrary>,
        config: SimConfig,
    ) -> Self {
        let mut state = ClusterState::new(Arc::clone(&cluster), profiles);
        if let Some(n) = config.shards {
            state = state.with_shards(ShardSpec::Count(n));
        }
        let mut scheduler = Scheduler::new(
            state,
            SchedulerConfig {
                policy: config.policy,
                eval: config.eval,
                eval_cache: config.eval_cache,
            },
        );
        scheduler.set_tracing(config.trace);
        // Schedule times are validated finite at config construction;
        // `total_cmp` keeps the sort a total order even for a config built
        // by hand with literal NaNs (which then fail loudly in the loop's
        // time comparisons rather than corrupting the sort).
        let mut pending_failures = config.machine_failures.clone();
        pending_failures.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut pending_recoveries = config.machine_recoveries.clone();
        pending_recoveries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let n_machines = cluster.n_machines();
        let max_machine_gpus = cluster
            .machines()
            .map(|m| cluster.machine(m).n_gpus())
            .max()
            .unwrap_or(0);
        Self {
            cluster,
            scheduler,
            config,
            now: 0.0,
            pending: VecDeque::new(),
            running: Vec::new(),
            job_pos: HashMap::new(),
            dirty_mask: vec![false; n_machines],
            dirty_list: Vec::new(),
            completion_heap: BinaryHeap::new(),
            heap_key: HashMap::new(),
            failure_cursor: 0,
            recovery_cursor: 0,
            records: Vec::new(),
            unplaceable: Vec::new(),
            timeline: Vec::new(),
            utility_series: Vec::new(),
            pending_failures,
            pending_recoveries,
            restarts: HashMap::new(),
            failures_applied: Vec::new(),
            events: Vec::new(),
            stats: SimLoopStats::default(),
            max_machine_gpus,
            ideal_cache: HashMap::new(),
            ideal_graph_cache: HashMap::new(),
        }
    }

    /// Runs a whole trace to completion and returns the result.
    pub fn run(self, trace: Vec<JobSpec>) -> SimResult {
        self.run_with_stats(trace).0
    }

    /// Runs a whole trace to completion, also returning the event-loop
    /// instrumentation counters (see [`SimLoopStats`]).
    pub fn run_with_stats(mut self, mut trace: Vec<JobSpec>) -> (SimResult, SimLoopStats) {
        trace.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        // Reject jobs that can never fit anywhere up front.
        for job in trace {
            if self.fits_somewhere(&job) {
                self.pending.push_back(job);
            } else {
                self.unplaceable.push(job);
            }
        }

        let phase_timing = self.config.phase_timing;
        loop {
            let next_arrival = self.pending.front().map(|j| j.arrival_s);
            let t0 = phase_timing.then(std::time::Instant::now);
            let next_completion = self.next_completion();
            if let Some(t0) = t0 {
                self.stats.phase_heap_ns += t0.elapsed().as_nanos() as u64;
            }
            let next_failure = self.pending_failures.get(self.failure_cursor).map(|&(t, _)| t);
            let next_recovery =
                self.pending_recoveries.get(self.recovery_cursor).map(|&(t, _)| t);

            let timed = [next_arrival, next_completion, next_failure, next_recovery]
                .into_iter()
                .flatten()
                .min_by(|a, b| a.partial_cmp(b).expect("finite"));
            let t = match timed {
                Some(t) => t,
                None => {
                    // No more timed events. Give the scheduler one more
                    // chance (the cluster is idle, so anything placeable
                    // places now); whatever still sticks at the head of the
                    // queue can never run.
                    self.run_scheduler();
                    if !self.running.is_empty() {
                        self.refresh_slowdowns();
                        continue;
                    }
                    match self.scheduler.drop_head() {
                        Some(stuck) => {
                            self.unplaceable.push(stuck);
                            continue;
                        }
                        None => break,
                    }
                }
            };

            // Integrate progress up to the event.
            let dt = (t - self.now).max(0.0);
            for r in &mut self.running {
                r.advance(dt);
            }
            self.now = t;
            self.scheduler.set_now(t);

            let t0 = phase_timing.then(std::time::Instant::now);
            self.process_completions();
            if let Some(t0) = t0 {
                self.stats.phase_heap_ns += t0.elapsed().as_nanos() as u64;
            }
            self.process_failures();
            self.process_recoveries();
            self.process_arrivals();
            let t0 = phase_timing.then(std::time::Instant::now);
            self.run_scheduler();
            if let Some(t0) = t0 {
                self.stats.phase_drain_ns += t0.elapsed().as_nanos() as u64;
            }
            let t0 = phase_timing.then(std::time::Instant::now);
            self.refresh_slowdowns();
            if let Some(t0) = t0 {
                self.stats.phase_refresh_ns += t0.elapsed().as_nanos() as u64;
            }
            if self.config.sample_utility {
                self.sample_utility();
            }

            if self.pending.is_empty()
                && self.running.is_empty()
                && self.scheduler.queue().fully_drained()
            {
                break;
            }
        }

        let makespan_s = self
            .records
            .iter()
            .map(|r| r.finished_at_s)
            .fold(0.0, f64::max);
        let mut trace = self.scheduler.take_trace();
        if let Some(cache) = self.scheduler.eval_cache_stats() {
            self.stats.eval_cache_hits = cache.hits;
            self.stats.eval_cache_misses = cache.misses;
            self.stats.eval_cache_evictions = cache.evictions;
            if self.config.trace {
                trace.push(TraceEvent::EvalCacheStats {
                    t_s: self.now,
                    hits: cache.hits,
                    misses: cache.misses,
                    evictions: cache.evictions,
                });
            }
        }
        if let Some(replay) = self.scheduler.decision_replay_stats() {
            self.stats.replay_hits = replay.hits;
            self.stats.replay_shards_reeval = replay.shards_reeval;
            self.stats.replay_full_fallbacks = replay.full_fallbacks;
            // Footer only when there was replay activity: traced runs take
            // the flat reference path (tracing needs per-candidate
            // records), so their counters are zero and replay-off traces
            // stay comparable event-for-event without stripping.
            if self.config.trace
                && (replay.hits > 0 || replay.shards_reeval > 0 || replay.full_fallbacks > 0)
            {
                trace.push(TraceEvent::DecisionReplayStats {
                    t_s: self.now,
                    hits: replay.hits,
                    shards_reeval: replay.shards_reeval,
                    full_fallbacks: replay.full_fallbacks,
                });
            }
        }
        let (checked, skipped) = self.scheduler.state().shards().admission_stats();
        self.stats.shard_admission_checked = checked;
        self.stats.shard_admission_skipped = skipped;
        let (bound_checked, bound_pruned) = self.scheduler.state().shards().bound_stats();
        self.stats.shard_bound_checked = bound_checked;
        self.stats.shard_bound_pruned = bound_pruned;
        self.stats.phase_decision_ns =
            self.scheduler.decision_stats().total().as_nanos() as u64;
        self.stats.decision_p99_ns =
            self.scheduler.decision_stats().p99().as_nanos() as u64;
        let stats = std::mem::take(&mut self.stats);
        let result = SimResult {
            policy: self.config.policy.kind,
            makespan_s,
            slo_violations: self.scheduler.slo_violations(),
            mean_decision_s: self.scheduler.decision_stats().mean_s(),
            records: self.records,
            unplaceable: self.unplaceable,
            timeline: self.timeline,
            utility_series: self.utility_series,
            failures: self.failures_applied,
            events: self.events,
            trace,
        };
        (result, stats)
    }

    /// Marks a machine as touched by the current event batch.
    fn mark_dirty(&mut self, machine: MachineId) {
        if !self.config.incremental {
            return;
        }
        let i = machine.index();
        if !self.dirty_mask[i] {
            self.dirty_mask[i] = true;
            self.dirty_list.push(machine);
        }
    }

    /// Appends to `running`, keeping the position index exact.
    fn push_running(&mut self, job: RunningJob) {
        self.job_pos.insert(job.alloc.spec.id, self.running.len());
        self.running.push(job);
    }

    /// `swap_remove` from `running`, keeping the position index exact and
    /// invalidating the removed job's completion-heap entry. The relocated
    /// tail job changes its position in the vector; co-runner lists (and
    /// therefore the reference loop's f64 summation order) follow vector
    /// order, so every job sharing a machine with it must be re-summed —
    /// its machines join the dirty set.
    fn remove_running(&mut self, idx: usize) -> RunningJob {
        let job = self.running.swap_remove(idx);
        self.job_pos.remove(&job.alloc.spec.id);
        self.heap_key.remove(&job.alloc.spec.id);
        if idx < self.running.len() {
            let moved = self.running[idx].alloc.spec.id;
            self.job_pos.insert(moved, idx);
            if self.config.incremental {
                for m in self.running[idx].alloc.machines() {
                    self.mark_dirty(m);
                }
            }
        }
        debug_assert_eq!(self.job_pos.len(), self.running.len());
        job
    }

    /// Earliest completion time across the running set, or `None` if
    /// nothing runs. The reference mode scans; the incremental mode polls
    /// the lazy heap.
    fn next_completion(&mut self) -> Option<f64> {
        if !self.config.incremental {
            return self
                .running
                .iter()
                .map(|r| self.now + r.eta_s())
                .min_by(|a, b| a.partial_cmp(b).expect("finite"));
        }
        // Discard stale heads (entries whose key was superseded by a rate
        // change, or whose job left the running set).
        let top = loop {
            match self.completion_heap.peek() {
                None => return None,
                Some(&Reverse((bits, id))) => {
                    if self.heap_key.get(&id) == Some(&bits) {
                        break f64::from_bits(bits);
                    }
                    self.completion_heap.pop();
                }
            }
        };
        // Stored keys are exact samples of `fl(now + eta)` from the moment
        // each job was last refreshed. For jobs untouched since, the
        // reference scan re-rounds `now + remaining/rate` after every
        // `advance`, drifting by a few ulps per event — so the true minimum
        // can hide an ulp behind the heap top. Re-poll everything within a
        // band around the top, recompute exactly, and take the min; the
        // band (relative 1e-9) is orders of magnitude wider than any
        // accumulated rounding drift. The debug shadow check below pins
        // this against the full scan on every call.
        let band = top + 2.0 * (1e-9 + 1e-9 * top.abs());
        let mut best = f64::INFINITY;
        let mut polled: Vec<(u64, JobId)> = Vec::new();
        while let Some(&Reverse((bits, id))) = self.completion_heap.peek() {
            if f64::from_bits(bits) > band {
                break;
            }
            self.completion_heap.pop();
            if self.heap_key.get(&id) != Some(&bits) {
                continue; // stale entry inside the band: drop it
            }
            let exact = self.now + self.running[self.job_pos[&id]].eta_s();
            best = best.min(exact);
            polled.push((bits, id));
        }
        for (bits, id) in polled {
            self.completion_heap.push(Reverse((bits, id)));
        }
        debug_assert!(best.is_finite(), "band poll found no live entry");
        #[cfg(debug_assertions)]
        {
            let reference = self
                .running
                .iter()
                .map(|r| self.now + r.eta_s())
                .min_by(|a, b| a.partial_cmp(b).expect("finite"));
            assert_eq!(
                reference.map(f64::to_bits),
                Some(best.to_bits()),
                "completion heap diverged from the scan: {reference:?} vs {best}"
            );
        }
        Some(best)
    }

    /// Applies every failure scheduled at or before `now`: the machine's
    /// running jobs are torn down and resubmitted (losing their progress),
    /// then the machine goes dark.
    fn process_failures(&mut self) {
        while let Some(&(t, machine)) = self.pending_failures.get(self.failure_cursor) {
            if t > self.now + 1e-9 {
                break;
            }
            self.failure_cursor += 1;
            if self.scheduler.state().is_machine_down(machine) {
                continue;
            }
            // Tear down every running job touching the machine. The
            // per-machine index hands us the victims directly; sorting by
            // position reproduces the running-vector order the old full
            // filter scan produced, so teardown order (and everything
            // downstream of it) is unchanged.
            let mut victims: Vec<JobId> =
                self.scheduler.state().jobs_on_machine(machine).to_vec();
            victims.sort_unstable_by_key(|id| self.job_pos[id]);
            for id in victims {
                let idx = self.job_pos[&id];
                let lost = self.remove_running(idx);
                match self.scheduler.cancel(id) {
                    CancelOutcome::Stopped(alloc) => {
                        // A multi-node victim's other machines lose a
                        // co-runner too.
                        for m in alloc.machines() {
                            self.mark_dirty(m);
                        }
                        // Interrupted segment still shows in the timeline.
                        self.timeline.push(TimelineSegment {
                            job: id,
                            gpus: alloc.gpus,
                            start_s: lost.started_at,
                            end_s: self.now,
                        });
                    }
                    other => panic!("cancel of running {id} returned {other:?}"),
                }
                *self.restarts.entry(id).or_insert(0) += 1;
                // Resubmit from scratch; arrival time stays the original so
                // queue fairness is preserved. `lost` is consumed here, so
                // the spec moves instead of cloning.
                self.scheduler.submit(lost.alloc.spec);
            }
            self.scheduler.fail_machine(machine);
            self.failures_applied.push((self.now, machine));
            let mut interrupted: Vec<JobId> = self
                .restarts
                .keys()
                .copied()
                .filter(|id| self.scheduler.queue().contains(*id))
                .collect();
            // `restarts` is a HashMap; sort so the event log is deterministic.
            interrupted.sort();
            self.events.push(SimEvent::MachineFailed {
                t_s: self.now,
                machine,
                interrupted,
            });
        }
    }

    fn fits_somewhere(&self, job: &JobSpec) -> bool {
        if job.constraints.anti_collocate && job.n_gpus > 1 {
            return (job.n_gpus as usize) <= self.cluster.n_machines();
        }
        if !job.constraints.single_node {
            // Multi-node-capable jobs can spill across the whole cluster.
            return (job.n_gpus as usize) <= self.cluster.n_gpus();
        }
        (job.n_gpus as usize) <= self.max_machine_gpus
    }

    fn process_completions(&mut self) {
        if self.config.incremental {
            self.process_completions_heap();
            return;
        }
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].finished() {
                self.complete_at(i);
            } else {
                i += 1;
            }
        }
    }

    /// Heap-assisted completion discovery for the incremental mode: every
    /// finished job's completion-heap key sits within a rounding hair of
    /// `now` (keys are exact `fl(refresh_now + eta)` samples; `finished()`
    /// tolerates `1e-9` of leftover solo-seconds, i.e. `1e-9 × slowdown`
    /// of wall time, and per-event integration drift adds ulps), so a band
    /// five orders of magnitude wider than both — and still three orders
    /// below the event spacing — bounds the candidate set. `finished()`
    /// on the live job stays the ground truth; the band only proposes.
    /// Processing order reproduces the reference scan exactly: the scan
    /// always handles the finished job at the lowest vector position next
    /// (a `swap_remove` re-examines the vacated slot, which holds the old
    /// tail — below every other index it could have been checked at), so
    /// draining by minimum current position is the same order.
    fn process_completions_heap(&mut self) {
        let band = self.now + 1e-6 + 1e-9 * self.now.abs();
        let mut finished: Vec<JobId> = Vec::new();
        let mut keep: Vec<(u64, JobId)> = Vec::new();
        while let Some(&Reverse((bits, id))) = self.completion_heap.peek() {
            if f64::from_bits(bits) > band {
                break;
            }
            self.completion_heap.pop();
            if self.heap_key.get(&id) != Some(&bits) {
                continue; // stale entry inside the band: drop it
            }
            if self.running[self.job_pos[&id]].finished() {
                // Claim the id: a re-keyed-and-back job can leave two heap
                // entries carrying the same live bits — dropping the map
                // entry makes any duplicate fail the liveness check above
                // (the job is completing; `remove_running` would drop the
                // key anyway).
                self.heap_key.remove(&id);
                finished.push(id);
            } else {
                keep.push((bits, id));
            }
        }
        for e in keep {
            self.completion_heap.push(Reverse(e));
        }
        #[cfg(debug_assertions)]
        {
            let mut by_scan: Vec<JobId> = self
                .running
                .iter()
                .filter(|r| r.finished())
                .map(|r| r.alloc.spec.id)
                .collect();
            by_scan.sort_unstable();
            let mut by_heap = finished.clone();
            by_heap.sort_unstable();
            assert_eq!(
                by_scan, by_heap,
                "completion-heap band diverged from the reference scan"
            );
        }
        while !finished.is_empty() {
            let fi = finished
                .iter()
                .enumerate()
                .min_by_key(|(_, id)| self.job_pos[*id])
                .map(|(fi, _)| fi)
                .expect("nonempty");
            let id = finished.swap_remove(fi);
            let idx = self.job_pos[&id];
            self.complete_at(idx);
        }
    }

    /// Completes the running job at vector position `idx`: releases it
    /// from the scheduler and appends its timeline/event/record entries.
    fn complete_at(&mut self, idx: usize) {
        let done = self.remove_running(idx);
        for m in done.alloc.machines() {
            self.mark_dirty(m);
        }
        let alloc = self.scheduler.complete(done.alloc.spec.id);
        debug_assert_eq!(alloc.gpus, done.alloc.gpus);
        let ideal = self.ideal_for(&done.alloc.spec);
        self.timeline.push(TimelineSegment {
            job: done.alloc.spec.id,
            gpus: done.alloc.gpus.clone(),
            start_s: done.started_at,
            end_s: self.now,
        });
        self.events.push(SimEvent::Completed {
            t_s: self.now,
            job: done.alloc.spec.id,
        });
        self.records.push(JobRecord {
            placed_at_s: done.started_at,
            finished_at_s: self.now,
            gpus: done.alloc.gpus,
            utility: done.alloc.utility,
            slo_violated: done.alloc.utility + 1e-9 < done.alloc.spec.min_utility,
            ideal_duration_s: ideal,
            postponements: self.scheduler.postpone_count(done.alloc.spec.id),
            restarts: self.restarts.get(&done.alloc.spec.id).copied().unwrap_or(0),
            spec: done.alloc.spec,
        });
    }

    /// Brings scheduled machines back online. A recovered machine is empty,
    /// so no running job's slowdown can change — nothing to mark dirty.
    fn process_recoveries(&mut self) {
        while let Some(&(t, machine)) = self.pending_recoveries.get(self.recovery_cursor) {
            if t > self.now + 1e-9 {
                break;
            }
            self.recovery_cursor += 1;
            if self.scheduler.state().is_machine_down(machine) {
                self.scheduler.recover_machine(machine);
            }
        }
    }

    fn process_arrivals(&mut self) {
        while let Some(job) = self.pending.front() {
            if job.arrival_s <= self.now + 1e-9 {
                let job = self.pending.pop_front().expect("front checked");
                self.events.push(SimEvent::Arrived { t_s: self.now, job: job.id });
                self.scheduler.submit(job);
            } else {
                break;
            }
        }
    }

    fn run_scheduler(&mut self) {
        let outcomes = self.scheduler.run_iteration();
        for outcome in outcomes {
            match outcome {
                PlacementOutcome::PostponedLowUtility { id, .. } => {
                    self.events.push(SimEvent::Postponed { t_s: self.now, job: id });
                }
                PlacementOutcome::Placed { spec, gpus, utility, .. } => {
                    self.events.push(SimEvent::Placed {
                        t_s: self.now,
                        job: spec.id,
                        utility,
                    });
                    // The outcome owns the same spec/gpus/utility the
                    // scheduler just committed to its state, so the running
                    // entry is built directly from it — no state lookup, no
                    // clone.
                    #[cfg(debug_assertions)]
                    {
                        let placed =
                            self.scheduler.state().allocation(spec.id).expect("just placed");
                        assert_eq!(placed.gpus, gpus);
                        assert_eq!(placed.utility.to_bits(), utility.to_bits());
                    }
                    let alloc = Allocation { spec, gpus, utility };
                    let mut job = RunningJob::start(alloc, &self.cluster, self.now);
                    if self.config.jitter != 0.0 {
                        job.remaining_solo_s *= jitter_factor(
                            self.config.jitter_seed,
                            job.alloc.spec.id.0,
                            self.config.jitter,
                        );
                    }
                    for m in job.alloc.machines() {
                        self.mark_dirty(m);
                    }
                    self.push_running(job);
                }
                PlacementOutcome::WaitingForCapacity { .. } => {}
            }
        }
    }

    fn refresh_slowdowns(&mut self) {
        if self.config.incremental {
            self.refresh_dirty_slowdowns();
            return;
        }
        let snapshot: Vec<RunningJob> = self.running.clone();
        let refs: Vec<&RunningJob> = snapshot.iter().collect();
        for r in &mut self.running {
            r.slowdown = current_slowdown(r, &refs, &self.cluster);
            self.stats.note_eval(r.alloc.spec.id);
        }
    }

    /// Machine-scoped refresh: re-derives slowdowns only for jobs holding
    /// GPUs on machines in the dirty set.
    ///
    /// **Why this is exact** — a job's slowdown is
    /// `total_slowdown(victim, corunners)` where the co-runner list holds
    /// `(model, batch, max_domain_factor)` for every *other* running job
    /// sharing at least one machine, in running-vector order. For a job
    /// with no GPU on a dirty machine: (1) no allocation on any of its
    /// machines was created, destroyed, or resized (every such change marks
    /// the machine dirty), so its co-runner set and every shared-domain
    /// factor are unchanged; (2) no co-runner changed its position in the
    /// running vector (`swap_remove` relocations mark the moved job's
    /// machines dirty), so the summation *order* is unchanged too. The
    /// reference recomputation would therefore reproduce the stored value
    /// bit for bit — skipping it changes nothing. Debug builds verify this
    /// with a full O(J²) shadow recompute after every scoped refresh.
    fn refresh_dirty_slowdowns(&mut self) {
        if !self.dirty_list.is_empty() {
            let mut victims: Vec<usize> = Vec::new();
            for &m in &self.dirty_list {
                for &id in self.scheduler.state().jobs_on_machine(m) {
                    victims.push(self.job_pos[&id]);
                }
            }
            for &m in &self.dirty_list {
                self.dirty_mask[m.index()] = false;
            }
            self.dirty_list.clear();
            victims.sort_unstable();
            victims.dedup();

            let mut updates: Vec<(usize, f64)> = Vec::with_capacity(victims.len());
            for &pos in &victims {
                let victim = &self.running[pos];
                // Co-runners via the per-machine index, sorted into
                // running-vector order: the same filtered list (and the
                // same f64 summation order) the reference full scan builds.
                let mut co_pos: Vec<usize> = Vec::new();
                for m in victim.alloc.machines() {
                    for &id in self.scheduler.state().jobs_on_machine(m) {
                        let p = self.job_pos[&id];
                        if p != pos {
                            co_pos.push(p);
                        }
                    }
                }
                co_pos.sort_unstable();
                co_pos.dedup();
                let refs: Vec<&RunningJob> =
                    co_pos.iter().map(|&p| &self.running[p]).collect();
                updates.push((pos, current_slowdown(victim, &refs, &self.cluster)));
            }
            for (pos, slowdown) in updates {
                let id = self.running[pos].alloc.spec.id;
                self.stats.note_eval(id);
                self.running[pos].slowdown = slowdown;
                // Re-key the completion heap with the exact post-refresh
                // completion time; the old entry (if any) goes stale and is
                // skipped at poll time.
                let t = self.now + self.running[pos].eta_s();
                debug_assert!(t.is_finite() && t >= 0.0);
                let bits = t.to_bits();
                if self.heap_key.insert(id, bits) != Some(bits) {
                    self.completion_heap.push(Reverse((bits, id)));
                }
            }
        }
        #[cfg(debug_assertions)]
        self.debug_verify_slowdowns();
    }

    /// Debug shadow check: the scoped refresh must leave every running
    /// job's slowdown bit-identical to a full reference recomputation.
    #[cfg(debug_assertions)]
    fn debug_verify_slowdowns(&self) {
        let refs: Vec<&RunningJob> = self.running.iter().collect();
        for r in &self.running {
            let want = current_slowdown(r, &refs, &self.cluster);
            assert_eq!(
                want.to_bits(),
                r.slowdown.to_bits(),
                "scoped refresh diverged for {}: want {want}, have {}",
                r.alloc.spec.id,
                r.slowdown
            );
        }
    }

    fn sample_utility(&mut self) {
        let mean = if self.running.is_empty() {
            1.0
        } else {
            self.running.iter().map(|r| r.alloc.utility).sum::<f64>() / self.running.len() as f64
        };
        self.utility_series.push(UtilitySample { t_s: self.now, mean_utility: mean });
    }

    fn ideal_for(&mut self, spec: &JobSpec) -> f64 {
        // `ideal_duration_s` depends only on the spec shape and the (fixed)
        // machine set — memoize it. Graph-free jobs key directly on the
        // shape tuple; jobs with an explicit communication graph are costed
        // per edge, so they key on the tuple plus a structural compare of
        // the graph against previously seen ones (generated workloads draw
        // graphs from a tiny family, so the list stays short).
        let key = (spec.model, spec.batch, spec.n_gpus, spec.iterations);
        match &spec.comm_graph {
            None => {
                if let Some(&v) = self.ideal_cache.get(&key) {
                    return v;
                }
            }
            Some(g) => {
                if let Some(seen) = self.ideal_graph_cache.get(&key) {
                    if let Some((_, v)) = seen.iter().find(|(sg, _)| sg == g) {
                        return *v;
                    }
                }
            }
        }
        // Machines sharing a topology class share the ideal duration, so
        // evaluate one representative per class (one machine total on the
        // homogeneous clusters of the paper's setting). For heterogeneous
        // clusters this still takes the fastest class.
        let mut seen_classes: Vec<u32> = Vec::new();
        let best = self
            .cluster
            .machines()
            .filter(|&m| self.cluster.machine(m).n_gpus() >= spec.n_gpus as usize)
            .filter(|&m| {
                let c = self.cluster.machine_class(m);
                if seen_classes.contains(&c) {
                    false
                } else {
                    seen_classes.push(c);
                    true
                }
            })
            .map(|m| ideal_duration_s(spec, self.cluster.machine(m)))
            .fold(f64::INFINITY, f64::min);
        let v = if best.is_finite() {
            best
        } else {
            // Wider than any machine: the floor is a rack-local spill.
            crate::ideal::ideal_multi_node_duration_s(spec)
        };
        match &spec.comm_graph {
            None => {
                self.ideal_cache.insert(key, v);
            }
            Some(g) => {
                self.ideal_graph_cache.entry(key).or_default().push((g.clone(), v));
            }
        }
        v
    }
}

/// Convenience: run one trace under one policy on a homogeneous cluster.
///
/// ```
/// use gts_sim::engine::simulate;
/// use gts_sched::{Policy, PolicyKind};
/// use gts_perf::ProfileLibrary;
/// use gts_topo::{power8_minsky, ClusterTopology};
/// use gts_job::{BatchClass, JobSpec, NnModel};
/// use std::sync::Arc;
///
/// let machine = power8_minsky();
/// let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
/// let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
/// let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_iterations(10);
/// let result = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAwareP), vec![job]);
/// assert_eq!(result.records.len(), 1);
/// assert_eq!(result.slo_violations, 0);
/// ```
pub fn simulate(
    cluster: Arc<ClusterTopology>,
    profiles: Arc<ProfileLibrary>,
    policy: Policy,
    trace: Vec<JobSpec>,
) -> SimResult {
    Simulation::new(cluster, profiles, SimConfig::new(policy)).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};
    use gts_sched::PolicyKind;
    use gts_topo::power8_minsky;

    fn setup(n_machines: usize) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        (cluster, profiles)
    }

    fn job(id: u64, gpus: u32, batch: BatchClass, arrival: f64, iters: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, batch, gpus)
            .arriving_at(arrival)
            .with_iterations(iters)
            .with_min_utility(if gpus > 1 { 0.5 } else { 0.3 })
    }

    #[test]
    fn single_job_runs_at_ideal_speed() {
        let (c, p) = setup(1);
        let trace = vec![job(0, 2, BatchClass::Tiny, 0.0, 100)];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.records.len(), 1);
        let r = &res.records[0];
        assert!(r.qos_slowdown() < 1e-9, "got {}", r.qos_slowdown());
        assert_eq!(r.waiting_s(), 0.0);
        assert_eq!(res.slo_violations, 0);
        assert!(res.makespan_s > 0.0);
    }

    #[test]
    fn two_collocated_tiny_jobs_suffer_the_fig6_slowdown() {
        let (c, p) = setup(1);
        // Two 2-GPU tiny jobs on one machine: each packs a socket, they
        // interfere at the machine level (0.35 × 30 %).
        let trace = vec![
            job(0, 2, BatchClass::Tiny, 0.0, 400),
            job(1, 2, BatchClass::Tiny, 0.0, 400),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.records.len(), 2);
        for r in &res.records {
            let s = r.qos_slowdown();
            assert!((s - 0.105).abs() < 0.02, "expected ≈10.5 %, got {s}");
        }
    }

    #[test]
    fn sequential_jobs_do_not_interfere() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 4, BatchClass::Tiny, 0.0, 50),
            job(1, 4, BatchClass::Tiny, 1e6, 50),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        for r in &res.records {
            assert!(r.qos_slowdown() < 1e-9);
        }
    }

    #[test]
    fn queued_job_waits_for_capacity() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 4, BatchClass::Big, 0.0, 20),
            job(1, 4, BatchClass::Big, 1.0, 20),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::Fcfs), trace);
        let r0 = res.record(gts_job::JobId(0)).unwrap();
        let r1 = res.record(gts_job::JobId(1)).unwrap();
        assert_eq!(r0.waiting_s(), 0.0);
        assert!(r1.waiting_s() > 0.0);
        assert!((r1.placed_at_s - r0.finished_at_s).abs() < 1e-6);
    }

    #[test]
    fn oversized_jobs_are_reported_unplaceable() {
        let (c, p) = setup(2);
        let trace = vec![
            job(0, 8, BatchClass::Tiny, 0.0, 10), // no machine has 8 GPUs
            job(1, 1, BatchClass::Tiny, 0.0, 10),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.unplaceable.len(), 1);
        assert_eq!(res.unplaceable[0].id, gts_job::JobId(0));
        assert_eq!(res.records.len(), 1);
    }

    #[test]
    fn timeline_matches_records() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 2, BatchClass::Small, 0.0, 100),
            job(1, 2, BatchClass::Small, 5.0, 100),
        ];
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAware), trace);
        assert_eq!(res.timeline.len(), 2);
        for seg in &res.timeline {
            let r = res.record(seg.job).unwrap();
            assert_eq!(seg.start_s, r.placed_at_s);
            assert_eq!(seg.end_s, r.finished_at_s);
            assert_eq!(seg.gpus, r.gpus);
        }
    }

    #[test]
    fn utility_series_is_time_ordered() {
        let (c, p) = setup(1);
        let trace: Vec<JobSpec> = (0..6)
            .map(|i| job(i, 1 + (i % 2) as u32, BatchClass::Small, i as f64 * 3.0, 100))
            .collect();
        let res = simulate(c, p, Policy::new(PolicyKind::TopoAwareP), trace);
        for w in res.utility_series.windows(2) {
            assert!(w[0].t_s <= w[1].t_s + 1e-9);
        }
        assert!(!res.utility_series.is_empty());
        for s in &res.utility_series {
            assert!((0.0..=1.0 + 1e-9).contains(&s.mean_utility));
        }
    }

    #[test]
    fn topo_aware_p_beats_fcfs_on_the_fragmentation_trap() {
        // The Fig. 8 situation in miniature: two 1-GPU jobs land on
        // different sockets; a 2-GPU tiny job arrives while they run. FCFS
        // spreads it across sockets; TOPO-AWARE-P waits for a free pair.
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 1, BatchClass::Tiny, 0.0, 1200),
            job(1, 1, BatchClass::Tiny, 1.0, 2400),
            job(2, 2, BatchClass::Tiny, 2.0, 800),
        ];
        let fcfs = simulate(
            Arc::clone(&c),
            Arc::clone(&p),
            Policy::new(PolicyKind::Fcfs),
            trace.clone(),
        );
        let tap = simulate(c, p, Policy::new(PolicyKind::TopoAwareP), trace);

        let fcfs_j2 = fcfs.record(gts_job::JobId(2)).unwrap();
        let tap_j2 = tap.record(gts_job::JobId(2)).unwrap();
        // FCFS executes J2 spread (slow); TOPO-AWARE-P packs it (fast).
        assert!(
            tap_j2.execution_s() < fcfs_j2.execution_s(),
            "TAP exec {} !< FCFS exec {}",
            tap_j2.execution_s(),
            fcfs_j2.execution_s()
        );
        assert_eq!(tap.slo_violations, 0);
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let (c, p) = setup(2);
        let trace: Vec<JobSpec> = (0..20)
            .map(|i| {
                job(
                    i,
                    [1u32, 2, 2, 4][(i % 4) as usize],
                    BatchClass::ALL[(i % 4) as usize],
                    i as f64 * 4.0,
                    150,
                )
            })
            .collect();
        for kind in PolicyKind::ALL {
            let res = simulate(
                Arc::clone(&c),
                Arc::clone(&p),
                Policy::new(kind),
                trace.clone(),
            );
            assert_eq!(res.records.len(), 20, "{kind} lost jobs");
            assert!(res.unplaceable.is_empty(), "{kind}");
            // GPUs are never double-booked: check overlapping segments.
            for (i, a) in res.timeline.iter().enumerate() {
                for b in &res.timeline[i + 1..] {
                    let overlap = a.start_s < b.end_s - 1e-9 && b.start_s < a.end_s - 1e-9;
                    if overlap {
                        for g in &a.gpus {
                            assert!(
                                !b.gpus.contains(g),
                                "{kind}: {g} double-booked by {} and {}",
                                a.job,
                                b.job
                            );
                        }
                    }
                }
            }
        }
    }

    /// Both event loops must agree on a workload that exercises queueing,
    /// interference, and staggered completions.
    #[test]
    fn incremental_and_reference_loops_agree() {
        let (c, p) = setup(2);
        let trace: Vec<JobSpec> = (0..16)
            .map(|i| {
                job(
                    i,
                    [1u32, 2, 2, 4][(i % 4) as usize],
                    BatchClass::ALL[(i % 4) as usize],
                    i as f64 * 3.0,
                    120,
                )
            })
            .collect();
        for kind in PolicyKind::ALL {
            let run = |incremental: bool| {
                Simulation::new(
                    Arc::clone(&c),
                    Arc::clone(&p),
                    SimConfig::new(Policy::new(kind)).with_incremental(incremental),
                )
                .run(trace.clone())
            };
            let inc = run(true);
            let reference = run(false);
            assert_eq!(inc.records, reference.records, "{kind}");
            assert_eq!(inc.events, reference.events, "{kind}");
            assert_eq!(inc.makespan_s.to_bits(), reference.makespan_s.to_bits(), "{kind}");
        }
    }

    /// Cache-on and cache-off runs must agree bit for bit, and a cached
    /// run must surface its counters through `SimLoopStats` and the trace
    /// footer (which is the only trace difference between the two).
    #[test]
    fn eval_cache_is_transparent_and_counted() {
        let (c, p) = setup(2);
        let trace: Vec<JobSpec> = (0..16)
            .map(|i| {
                job(
                    i,
                    [1u32, 2, 2, 4][(i % 4) as usize],
                    BatchClass::ALL[(i % 4) as usize],
                    i as f64 * 3.0,
                    120,
                )
            })
            .collect();
        let run = |cached: bool| {
            Simulation::new(
                Arc::clone(&c),
                Arc::clone(&p),
                SimConfig::new(Policy::new(PolicyKind::TopoAware))
                    .with_eval(EvalParams::parallel(2))
                    .with_trace()
                    .with_eval_cache(cached),
            )
            .run_with_stats(trace.clone())
        };
        let (mut on, on_stats) = run(true);
        let (off, off_stats) = run(false);
        assert!(on_stats.eval_cache_hits + on_stats.eval_cache_misses > 0);
        assert_eq!(off_stats.eval_cache_hits, 0);
        assert_eq!(off_stats.eval_cache_misses, 0);
        match on.trace.pop() {
            Some(TraceEvent::EvalCacheStats { hits, misses, evictions, .. }) => {
                assert_eq!(hits, on_stats.eval_cache_hits);
                assert_eq!(misses, on_stats.eval_cache_misses);
                assert_eq!(evictions, on_stats.eval_cache_evictions);
            }
            other => panic!("expected EvalCacheStats footer, got {other:?}"),
        }
        assert_eq!(on.records, off.records, "records diverged");
        assert_eq!(on.events, off.events, "events diverged");
        assert_eq!(on.trace, off.trace, "traces diverged beyond the footer");
        assert_eq!(on.makespan_s.to_bits(), off.makespan_s.to_bits());
    }

    /// The failure cursor must apply scripted failures exactly like the old
    /// `Vec::remove(0)` pop, including skipping already-down machines.
    #[test]
    fn failure_and_recovery_cursors_apply_in_order() {
        let (c, p) = setup(2);
        let trace = vec![
            job(0, 2, BatchClass::Small, 0.0, 2000),
            job(1, 2, BatchClass::Small, 0.0, 2000),
        ];
        let config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
            .with_machine_failures(vec![
                (10.0, MachineId(0)),
                (20.0, MachineId(0)), // already down: skipped
                (30.0, MachineId(1)),
            ])
            .with_machine_recoveries(vec![(40.0, MachineId(0)), (50.0, MachineId(1))]);
        let res = Simulation::new(c, p, config).run(trace);
        assert_eq!(
            res.failures,
            vec![(10.0, MachineId(0)), (30.0, MachineId(1))]
        );
        // Both jobs restart after their machines fail and still finish.
        assert_eq!(res.records.len(), 2);
        for r in &res.records {
            assert!(r.restarts >= 1, "{} never restarted", r.spec.id);
        }
    }

    /// Non-finite schedule times must be rejected at construction with a
    /// descriptive error, not discovered as a panic (or a silently corrupt
    /// sort order) deep inside the event loop.
    #[test]
    fn non_finite_schedule_times_are_rejected_at_construction() {
        let base = || SimConfig::new(Policy::new(PolicyKind::TopoAware));
        let err = base()
            .try_with_machine_failures(vec![(10.0, MachineId(0)), (f64::NAN, MachineId(1))])
            .unwrap_err();
        // NaN != NaN under the derived PartialEq, so match on shape and
        // check the payload is the NaN we passed in.
        let SimConfigError::NonFiniteTime { schedule, index, time_s } = &err;
        assert_eq!((*schedule, *index), ("failure", 1));
        assert!(time_s.is_nan());
        assert!(err.to_string().contains("failure schedule entry 1"));
        let err = base()
            .try_with_machine_recoveries(vec![(f64::INFINITY, MachineId(0))])
            .unwrap_err();
        assert!(matches!(
            err,
            SimConfigError::NonFiniteTime { schedule: "recovery", index: 0, .. }
        ));
        // Finite schedules still pass through both the fallible and the
        // panicking builders.
        let ok = base()
            .try_with_machine_failures(vec![(10.0, MachineId(0))])
            .unwrap()
            .with_machine_recoveries(vec![(20.0, MachineId(0))]);
        assert_eq!(ok.machine_failures.len(), 1);
        assert_eq!(ok.machine_recoveries.len(), 1);
    }

    #[test]
    #[should_panic(expected = "failure schedule must use finite times")]
    fn infallible_failure_builder_panics_on_nan() {
        let _ = SimConfig::new(Policy::new(PolicyKind::TopoAware))
            .with_machine_failures(vec![(f64::NAN, MachineId(0))]);
    }

    /// A sharded run must surface admission counters through
    /// `SimLoopStats`, and a forced single-shard run must not count.
    #[test]
    fn shard_admission_counters_surface_in_stats() {
        let run = |shards: usize| {
            let machine = power8_minsky();
            let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
            let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 4, 2));
            let trace: Vec<JobSpec> = (0..12)
                .map(|i| job(i, [1u32, 2, 4][(i % 3) as usize], BatchClass::Tiny, i as f64, 60))
                .collect();
            Simulation::new(
                cluster,
                profiles,
                SimConfig::new(Policy::new(PolicyKind::TopoAware))
                    .with_eval(EvalParams::parallel(2))
                    .with_shards(shards),
            )
            .run_with_stats(trace)
        };
        let (sharded_res, sharded) = run(4);
        let (single_res, single) = run(1);
        assert!(sharded.shard_admission_checked > 0, "sharded path never ran");
        assert_eq!(single.shard_admission_checked, 0);
        assert_eq!(single.shard_admission_skipped, 0);
        // And the shard count is invisible in the results themselves.
        assert_eq!(sharded_res.records, single_res.records);
        assert_eq!(sharded_res.events, single_res.events);
        assert_eq!(sharded_res.makespan_s.to_bits(), single_res.makespan_s.to_bits());
    }

    /// The utility-bound pruner must surface its counters through
    /// `SimLoopStats`, actually prune in a scenario built to trip the
    /// min-utility gate arm, and leave results bit-identical to the
    /// unpruned path. Scenario: 2 machines / 2 shards; job 0 occupies
    /// machine 0, so job 1 (min_utility just under 1) sees shard 1 as a
    /// memo hit at utility 1.0 (the floor) while shard 0's occupied-machine
    /// bound falls below the gate — an exact prune in both serial and
    /// parallel fan-out modes.
    #[test]
    fn shard_bound_counters_surface_in_stats() {
        let run = |par: bool, bound: bool| {
            let machine = power8_minsky();
            let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
            let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 2, 1));
            let trace = vec![
                JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 1)
                    .arriving_at(0.0)
                    .with_iterations(2000)
                    .with_min_utility(0.3),
                JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 1)
                    .arriving_at(1.0)
                    .with_iterations(2000)
                    .with_min_utility(0.9999),
            ];
            Simulation::new(
                cluster,
                profiles,
                SimConfig::new(Policy::new(PolicyKind::TopoAware))
                    .with_eval(
                        EvalParams::parallel(2).with_shard_par(par).with_shard_bound(bound),
                    )
                    .with_eval_cache(true)
                    .with_shards(2),
            )
            .run_with_stats(trace)
        };
        let (base_res, base) = run(false, false);
        assert_eq!(base.shard_bound_checked, 0);
        assert_eq!(base.shard_bound_pruned, 0);
        for par in [false, true] {
            let (res, stats) = run(par, true);
            assert!(stats.shard_bound_checked > 0, "par={par}: no shard was bound-checked");
            assert!(stats.shard_bound_pruned > 0, "par={par}: gate-arm scenario never pruned");
            assert_eq!(res.records, base_res.records, "par={par}");
            assert_eq!(res.events, base_res.events, "par={par}");
            assert_eq!(res.makespan_s.to_bits(), base_res.makespan_s.to_bits(), "par={par}");
        }
    }

    /// Cross-event decision replay must surface its counters through
    /// `SimLoopStats`, actually fire under a queue that retries across
    /// completions, and leave results bit-identical to the replay-off
    /// path. Scenario: 2 machines / 2 shards, machine-filling jobs, so
    /// every completion re-decides the queue head after mutating exactly
    /// one shard — the partial-replay shape — while arrival-only event
    /// batches retry with nothing moved — the O(1) full-hit shape.
    #[test]
    fn decision_replay_counters_surface_in_stats() {
        let run = |replay: bool, phase_timing: bool| {
            let machine = power8_minsky();
            let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
            let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 2, 1));
            let trace: Vec<JobSpec> = (0..6)
                .map(|i| {
                    JobSpec::new(i, NnModel::AlexNet, BatchClass::Tiny, 4)
                        .arriving_at(i as f64 * 0.5)
                        .with_iterations(500)
                        .with_min_utility(0.3)
                })
                .collect();
            Simulation::new(
                cluster,
                profiles,
                SimConfig::new(Policy::new(PolicyKind::TopoAware))
                    .with_eval(EvalParams::parallel(2).with_decision_replay(replay))
                    .with_eval_cache(true)
                    .with_shards(2)
                    .with_phase_timing(phase_timing),
            )
            .run_with_stats(trace)
        };
        let (off_res, off) = run(false, false);
        assert_eq!(off.replay_hits, 0, "replay off must not snapshot");
        assert_eq!(off.replay_shards_reeval, 0);
        assert_eq!(off.replay_full_fallbacks, 0);
        assert_eq!(off.phase_drain_ns, 0, "phase timing off leaves drain unmetered");
        let (on_res, on) = run(true, true);
        assert!(on.replay_hits > 0, "queue retries never replayed");
        assert!(on.phase_decision_ns > 0, "decisions are always metered");
        assert!(on.phase_drain_ns > 0, "phase timing on must meter the drain");
        assert!(
            on.phase_drain_ns >= on.phase_decision_ns / 2,
            "the drain phase contains the decisions"
        );
        assert_eq!(on_res.records, off_res.records);
        assert_eq!(on_res.events, off_res.events);
        assert_eq!(on_res.makespan_s.to_bits(), off_res.makespan_s.to_bits());
    }

    /// The admission pre-pass must reject oversized jobs with the cached
    /// machine width, identically to the old per-job cluster scan.
    #[test]
    fn eval_counters_are_populated() {
        let (c, p) = setup(1);
        let trace = vec![
            job(0, 2, BatchClass::Tiny, 0.0, 100),
            job(1, 2, BatchClass::Tiny, 0.0, 100),
        ];
        let (res, stats) = Simulation::new(
            c,
            p,
            SimConfig::new(Policy::new(PolicyKind::TopoAware)),
        )
        .run_with_stats(trace);
        assert_eq!(res.records.len(), 2);
        assert!(stats.slowdown_evals >= 2, "got {}", stats.slowdown_evals);
        assert_eq!(
            stats.slowdown_evals,
            stats.evals_by_job.values().sum::<u64>()
        );
        assert!(stats.evals_for(gts_job::JobId(0)) >= 1);
    }
}
