//! The dirty-set argument, tested directly: an event on one machine must
//! not recompute the slowdowns of jobs on other machines (counted by
//! [`SimLoopStats`]), while every value stays numerically identical to the
//! reference loop's recompute-everything answer.

use gts_job::{BatchClass, JobId, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::{Policy, PolicyKind};
use gts_sim::{SimConfig, SimLoopStats, SimResult, Simulation};
use gts_topo::{power8_minsky, ClusterTopology};
use std::sync::Arc;

fn job(id: u64, gpus: u32, batch: BatchClass, iters: u32) -> JobSpec {
    JobSpec::new(id, NnModel::AlexNet, batch, gpus)
        .arriving_at(0.0)
        .with_iterations(iters)
        .with_min_utility(0.3)
}

fn run(n_machines: usize, trace: Vec<JobSpec>, incremental: bool) -> (SimResult, SimLoopStats) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let config = SimConfig::new(Policy::new(PolicyKind::TopoAware)).with_incremental(incremental);
    Simulation::new(cluster, profiles, config).run_with_stats(trace)
}

/// Three machine-filling jobs on three disjoint machines: the short one's
/// completion is an event on *its* machine only, so the incremental loop
/// must not re-derive the other two (one derivation each, at placement),
/// while the reference loop re-derives everything after every event.
#[test]
fn disjoint_machines_are_not_recomputed() {
    let trace = vec![
        job(0, 4, BatchClass::Tiny, 3000),
        job(1, 4, BatchClass::Tiny, 3000),
        job(2, 4, BatchClass::Tiny, 300), // completes first
    ];
    let (inc_res, inc) = run(3, trace.clone(), true);
    let (ref_res, reference) = run(3, trace, false);

    // Exactly one derivation per job: at placement time. Job 2's completion
    // leaves its machine empty, and jobs 0/1 share nothing with it.
    for id in 0..3 {
        assert_eq!(inc.evals_for(JobId(id)), 1, "job {id} recomputed needlessly");
    }
    assert_eq!(inc.slowdown_evals, 3);

    // The reference loop recomputed the survivors after job 2 completed.
    assert_eq!(reference.evals_for(JobId(0)), 2);
    assert_eq!(reference.evals_for(JobId(1)), 2);
    assert_eq!(reference.evals_for(JobId(2)), 1);

    // Skipping the recompute changed nothing: bit-identical results.
    assert_eq!(inc_res.records, ref_res.records);
    assert_eq!(inc_res.events, ref_res.events);
    assert_eq!(inc_res.makespan_s.to_bits(), ref_res.makespan_s.to_bits());
    // Disjoint machines ⇒ no interference anywhere.
    for r in &inc_res.records {
        assert!(r.qos_slowdown() < 1e-9, "{}: {}", r.spec.id, r.qos_slowdown());
    }
}

/// A completion on a *shared* machine must re-derive the surviving sharer
/// (its co-runner set changed) but still skip the job on the other machine.
#[test]
fn shared_machine_sharers_are_recomputed_and_bystanders_skipped() {
    let trace = vec![
        job(0, 4, BatchClass::Tiny, 4000), // fills one machine, runs longest
        job(1, 2, BatchClass::Tiny, 600),  // shares the other machine…
        job(2, 2, BatchClass::Tiny, 200),  // …with this one, which finishes first
    ];
    let (inc_res, inc) = run(2, trace.clone(), true);
    let (ref_res, reference) = run(2, trace, false);

    // Job 2's completion re-derives its machine-sharer (job 1) only; job 0
    // on the other machine is never touched again. Job 1's later completion
    // leaves its machine empty, so it triggers nothing.
    assert_eq!(inc.evals_for(JobId(0)), 1, "bystander recomputed");
    assert_eq!(inc.evals_for(JobId(1)), 2, "sharer not recomputed");
    assert_eq!(inc.evals_for(JobId(2)), 1);

    // The reference loop re-derives every survivor after both completions.
    assert_eq!(reference.evals_for(JobId(0)), 3);
    assert_eq!(reference.evals_for(JobId(1)), 2);
    assert_eq!(reference.evals_for(JobId(2)), 1);

    assert_eq!(inc_res.records, ref_res.records);
    assert_eq!(inc_res.events, ref_res.events);
    assert_eq!(inc_res.makespan_s.to_bits(), ref_res.makespan_s.to_bits());
    // The shared pair really interfered (otherwise this test proves less
    // than it claims); the bystander ran clean.
    let rec = |id| inc_res.record(JobId(id)).unwrap();
    assert!(rec(1).qos_slowdown() > 0.01, "sharers did not interfere");
    assert!(rec(0).qos_slowdown() < 1e-9, "bystander interfered");
}
