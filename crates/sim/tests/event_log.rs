//! The simulation event log: a faithful, time-ordered account of the run.

use gts_job::scenario::table1;
use gts_job::JobId;
use gts_perf::ProfileLibrary;
use gts_sched::{Policy, PolicyKind};
use gts_sim::engine::simulate;
use gts_sim::SimEvent;
use gts_topo::{power8_minsky, ClusterTopology, MachineId};
use std::sync::Arc;

fn run(kind: PolicyKind) -> gts_sim::SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    simulate(cluster, profiles, Policy::new(kind), table1())
}

#[test]
fn log_is_time_ordered_and_complete() {
    let res = run(PolicyKind::TopoAwareP);
    assert!(!res.events.is_empty());
    for w in res.events.windows(2) {
        assert!(w[0].t_s() <= w[1].t_s() + 1e-9, "{w:?}");
    }
    // Every job arrives, places and completes exactly once.
    for id in 0..6u64 {
        let job = JobId(id);
        let arrived = res.events.iter().filter(|e| matches!(e, SimEvent::Arrived { job: j, .. } if *j == job)).count();
        let placed = res.events.iter().filter(|e| matches!(e, SimEvent::Placed { job: j, .. } if *j == job)).count();
        let completed = res.events.iter().filter(|e| matches!(e, SimEvent::Completed { job: j, .. } if *j == job)).count();
        assert_eq!((arrived, placed, completed), (1, 1, 1), "J{id}");
    }
}

#[test]
fn postponements_show_up_in_the_log() {
    let res = run(PolicyKind::TopoAwareP);
    let postponed: Vec<&SimEvent> = res
        .events
        .iter()
        .filter(|e| matches!(e, SimEvent::Postponed { .. }))
        .collect();
    assert!(
        postponed.iter().any(|e| matches!(e, SimEvent::Postponed { job, .. } if *job == JobId(3))),
        "Job 3 must be postponed at least once: {postponed:?}"
    );
    // No other policy postpones.
    let fcfs = run(PolicyKind::Fcfs);
    assert!(fcfs.events.iter().all(|e| !matches!(e, SimEvent::Postponed { .. })));
}

#[test]
fn failures_enter_the_log() {
    use gts_job::{BatchClass, JobSpec, NnModel};
    use gts_sim::{SimConfig, Simulation};
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 2));
    let trace = vec![JobSpec::new(0, NnModel::AlexNet, BatchClass::Small, 2).with_iterations(400)];
    let config = SimConfig::new(Policy::new(PolicyKind::Fcfs))
        .with_machine_failures(vec![(10.0, MachineId(0))]);
    let res = Simulation::new(cluster, profiles, config).run(trace);
    assert!(res
        .events
        .iter()
        .any(|e| matches!(e, SimEvent::MachineFailed { machine, .. } if *machine == MachineId(0))));
    // The restarted job places twice in the log.
    let placed = res
        .events
        .iter()
        .filter(|e| matches!(e, SimEvent::Placed { job, .. } if *job == JobId(0)))
        .count();
    assert_eq!(placed, 2);
}
