//! End-to-end check of the Fig. 8 prototype scenario (Table 1 workload).

use gts_job::scenario::table1;
use gts_perf::ProfileLibrary;
use gts_sched::{Policy, PolicyKind};
use gts_sim::engine::simulate;
use gts_topo::{power8_minsky, ClusterTopology};
use std::sync::Arc;

fn run(kind: PolicyKind) -> gts_sim::SimResult {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
    simulate(cluster, profiles, Policy::new(kind), table1())
}

#[test]
fn all_six_jobs_complete_under_every_policy() {
    for kind in PolicyKind::ALL {
        let res = run(kind);
        assert_eq!(res.records.len(), 6, "{kind}");
        assert!(res.unplaceable.is_empty(), "{kind}");
    }
}

#[test]
fn job3_is_postponed_but_not_starved() {
    use gts_job::JobId;
    let res = run(PolicyKind::TopoAwareP);
    let j3 = res.record(JobId(3)).unwrap();
    // TOPO-AWARE-P parks Job 3 at least once while it waits for a packed
    // pair, and the arrival-ordered queue keeps the count small.
    assert!(j3.postponements >= 1, "got {}", j3.postponements);
    assert!(res.max_postponements() <= 10, "got {}", res.max_postponements());
    // No other policy postpones.
    assert_eq!(run(PolicyKind::Fcfs).max_postponements(), 0);
}

#[test]
fn topo_aware_p_has_no_slo_violations() {
    let res = run(PolicyKind::TopoAwareP);
    assert_eq!(res.slo_violations, 0);
    for r in &res.records {
        assert!(!r.slo_violated, "{} violated its SLO", r.spec.id);
    }
}

#[test]
fn fig8_cumulative_time_ordering() {
    let bf = run(PolicyKind::BestFit).makespan_s;
    let fcfs = run(PolicyKind::Fcfs).makespan_s;
    let ta = run(PolicyKind::TopoAware).makespan_s;
    let tap = run(PolicyKind::TopoAwareP).makespan_s;
    eprintln!("BF={bf:.1}s FCFS={fcfs:.1}s TOPO-AWARE={ta:.1}s TOPO-AWARE-P={tap:.1}s");
    eprintln!(
        "speedups: vs BF {:.2}x, vs FCFS {:.2}x, vs TA {:.2}x",
        bf / tap,
        fcfs / tap,
        ta / tap
    );
    // The paper: BF 461.7 s, FCFS 456.2 s, TA 454.2 s, TA-P 356.9 s →
    // TOPO-AWARE-P wins by ≈1.27–1.30×.
    assert!(tap < bf && tap < fcfs && tap < ta, "TOPO-AWARE-P must win");
    let speedup = bf / tap;
    assert!(
        (1.1..1.6).contains(&speedup),
        "speedup vs BF should be ≈1.3×, got {speedup:.3}"
    );
    // The greedy policies and plain TOPO-AWARE cluster together (the paper:
    // 461.7 / 456.2 / 454.2 s — within ~2 %); the postponing policy is the
    // outlier.
    assert!((bf / ta - 1.0).abs() < 0.05, "BF {bf} vs TA {ta}");
    assert!((fcfs / ta - 1.0).abs() < 0.05, "FCFS {fcfs} vs TA {ta}");
    assert!(ta / tap > 1.1, "TA {ta} vs TA-P {tap}");
}

#[test]
fn fig8_topo_aware_p_packs_job3_after_waiting() {
    use gts_job::JobId;
    let tap = run(PolicyKind::TopoAwareP);
    let ta = run(PolicyKind::TopoAware);
    let machine = power8_minsky();

    // TOPO-AWARE-P delays Job 3 until it can grant same-socket GPUs...
    let tap_j3 = tap.record(JobId(3)).unwrap();
    let local: Vec<gts_topo::GpuId> = tap_j3.gpus.iter().map(|g| g.gpu).collect();
    assert!(machine.is_packed(&local), "TA-P gave Job 3 {local:?}");
    assert!(tap_j3.waiting_s() > 0.0);

    // ...while plain TOPO-AWARE places it immediately across sockets.
    let ta_j3 = ta.record(JobId(3)).unwrap();
    let local: Vec<gts_topo::GpuId> = ta_j3.gpus.iter().map(|g| g.gpu).collect();
    assert!(!machine.is_packed(&local), "TA gave Job 3 {local:?}");
    // And Job 3 executes faster under TA-P despite the wait.
    assert!(tap_j3.execution_s() < ta_j3.execution_s());
}
