//! # gpu-topo-aware — topology-aware GPU scheduling for learning workloads
//!
//! A Rust implementation of Amaral et al., *Topology-Aware GPU Scheduling
//! for Learning Workloads in Cloud Environments* (SC'17): a placement
//! algorithm that maps a job's communication graph onto the physical GPU
//! topology via utility-guided dual recursive bipartitioning, two
//! scheduling policies built on it (`TOPO-AWARE`, `TOPO-AWARE-P`), the
//! greedy baselines it is evaluated against (FCFS, Best-Fit), and the full
//! evaluation stack: a calibrated DL performance model, a discrete-event
//! cluster simulator and a concurrent prototype runtime.
//!
//! ## Quickstart
//!
//! ```rust
//! use gts_core::prelude::*;
//! use std::sync::Arc;
//!
//! // An IBM Power8 "Minsky": 2 sockets × 2 NVLink-attached P100s.
//! let machine = power8_minsky();
//! let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
//! let cluster = Arc::new(ClusterTopology::homogeneous(machine, 4));
//!
//! // A 2-GPU AlexNet training job with a tiny batch (communication-heavy).
//! let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2)
//!     .with_min_utility(0.5);
//!
//! // Ask the topology-aware policy where it should run.
//! let state = ClusterState::new(cluster, profiles);
//! let policy = Policy::new(PolicyKind::TopoAwareP);
//! let decision = policy.decide(&state, &job).expect("cluster has room");
//!
//! // The mapper packs communication-heavy jobs onto NVLink pairs.
//! assert_eq!(decision.gpus.len(), 2);
//! assert!((decision.utility - 1.0).abs() < 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents | Paper section |
//! |---|---|---|
//! | [`topo`] | machines, links, multi-level topology graphs | §4.1.2, Fig. 1/7 |
//! | [`job`] | job specs, communication graphs, profiles, workload generator | §4.1.1, §4.2, §5.3 |
//! | [`perf`] | calibrated compute/comm/interference/bandwidth models | §2, §3 |
//! | [`map`] | Fiduccia–Mattheyses, DRB (Alg. 2/3), Eq. 1–5 | §4.3, §4.4 |
//! | [`sched`] | Algorithm 1, the four policies, allocation state | §4.4, §5.2 |
//! | [`sim`] | trace-driven discrete-event simulation | §5.3–§5.5 |
//! | [`proto`] | concurrent scaled-time prototype runtime | §5.1, §5.2 |

#![warn(missing_docs)]

pub use gts_job as job;
pub use gts_map as map;
pub use gts_perf as perf;
pub use gts_proto as proto;
pub use gts_sched as sched;
pub use gts_sim as sim;
pub use gts_topo as topo;

/// The one-import surface for typical users.
pub mod prelude {
    pub use gts_job::{
        BatchClass, Constraints, GeneratorConfig, JobGraph, JobId, JobManifest, JobProfile,
        JobSpec, NnModel, Trace, WorkloadGenerator,
    };
    pub use gts_map::{drb_map, utility, UtilityComponents, UtilityWeights};
    pub use gts_perf::{PlacementPerf, ProfileLibrary, RouteClass};
    pub use gts_proto::{ProtoConfig, ProtoResult, Prototype, TimeScale};
    pub use gts_sched::{
        launch_plan, Allocation, CandidateEval, ClusterState, DecisionReplayStats, EvalCache,
        EvalCacheStats, EvalOutcome, EvalParams, LaunchPlan, PlacementOutcome, Policy,
        PolicyKind, Scheduler, SchedulerConfig, ShardIndex, ShardSpec, TraceEvent,
    };
    pub use gts_sim::{
        engine::simulate, JobRecord, SimConfig, SimConfigError, SimLoopStats, SimResult,
        Simulation, TimelineSegment,
    };
    pub use gts_topo::{
        dgx1, parse_topo_matrix, power8_minsky, power8_pcie_k80, symmetric_machine,
        ClusterTopology, GlobalGpuId, GpuId, LinkKind, LinkProfile, MachineId,
        MachineTopology, NumaInfo, SocketId,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::Arc;

    #[test]
    fn facade_wires_the_whole_stack_together() {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, 2));
        let trace = WorkloadGenerator::with_defaults(7).generate(10);
        let res = simulate(cluster, profiles, Policy::new(PolicyKind::TopoAwareP), trace);
        assert_eq!(res.records.len(), 10);
    }
}
