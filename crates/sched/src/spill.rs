//! Disaggregated multi-node placement — the paper's stated future work
//! ("transparently scale learning applications to multiple disaggregated
//! GPUs across the cluster", §7).
//!
//! A job that clears its `single_node` constraint *prefers* one machine
//! (the normal Algorithm 1 path) but, when no machine has enough free
//! GPUs, may be **spilled**: its communication graph is mapped across the
//! free GPUs of several machines with the same DRB recursion, using
//! cluster-level distances. The network hop dominates such placements, so
//! spilled jobs score the corresponding utility and the postponing policy
//! will only accept them when the job's threshold allows it.

use crate::oracle::best_possible_cost;
use crate::policy::Decision;
use crate::state::ClusterState;
use gts_job::{JobGraph, JobProfile, JobSpec};
use gts_map::{drb_map, PlacementOracle, UtilityComponents, UtilityWeights};
use gts_topo::{GlobalGpuId, GpuId, MachineId};

/// A [`PlacementOracle`] over the *cluster-wide* free-GPU list: vertex `i`
/// of the mapping problem is `gpus[i]`, a global GPU.
pub struct ClusterOracle<'a> {
    state: &'a ClusterState,
    job: &'a JobSpec,
    /// The candidate pool; DRB's `GpuId`s index into this.
    pub gpus: Vec<GlobalGpuId>,
}

impl<'a> ClusterOracle<'a> {
    /// Builds the oracle over every free GPU in the cluster, machine-major
    /// order.
    pub fn new(state: &'a ClusterState, job: &'a JobSpec) -> Self {
        let gpus: Vec<GlobalGpuId> = state
            .cluster()
            .machines()
            .flat_map(|m| {
                state
                    .free_gpus(m)
                    .into_iter()
                    .map(move |gpu| GlobalGpuId { machine: m, gpu })
            })
            .collect();
        Self { state, job, gpus }
    }

    fn resolve(&self, idx: &[GpuId]) -> Vec<GlobalGpuId> {
        idx.iter().map(|g| self.gpus[g.index()]).collect()
    }
}

impl PlacementOracle for ClusterOracle<'_> {
    fn distance(&self, a: GpuId, b: GpuId) -> f64 {
        self.state
            .cluster()
            .distance(self.gpus[a.index()], self.gpus[b.index()])
    }

    fn interference(&self, idx: &[GpuId]) -> f64 {
        if idx.is_empty() {
            return 1.0;
        }
        let globals = self.resolve(idx);
        let machines: Vec<MachineId> = {
            let mut ms: Vec<_> = globals.iter().map(|g| g.machine).collect();
            ms.sort_unstable();
            ms.dedup();
            ms
        };
        let profile = self.state.profiles().get(self.job.model, self.job.batch);
        let mut total = 0.0;
        for &m in &machines {
            let local: Vec<GpuId> = globals
                .iter()
                .filter(|g| g.machine == m)
                .map(|g| g.gpu)
                .collect();
            let topo = self.state.cluster().machine(m);
            let corunners: Vec<(JobProfile, f64)> = self
                .state
                .running_on(m)
                .iter()
                .map(|alloc| {
                    let factor =
                        gts_perf::domain_factor(topo, &local, &alloc.gpus_on(m));
                    (*alloc.profile(self.state.profiles()), factor)
                })
                .collect();
            total += profile.eq4_interference(&corunners);
        }
        total / machines.len() as f64
    }

    fn fragmentation_after(&self, idx: &[GpuId]) -> f64 {
        let globals = self.resolve(idx);
        let machines: Vec<MachineId> = {
            let mut ms: Vec<_> = globals.iter().map(|g| g.machine).collect();
            ms.sort_unstable();
            ms.dedup();
            ms
        };
        if machines.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &m in &machines {
            let mut occupancy = self.state.socket_occupancy(m);
            let topo = self.state.cluster().machine(m);
            for g in globals.iter().filter(|g| g.machine == m) {
                let s = topo.socket_of(g.gpu).index();
                if occupancy[s].0 > 0 {
                    occupancy[s].0 -= 1;
                }
            }
            total += gts_map::eq5_fragmentation(&occupancy);
        }
        total / machines.len() as f64
    }
}

/// The minimal number of machines an `n`-GPU spill must touch.
fn min_machines_needed(state: &ClusterState, n: usize) -> usize {
    let max_per_machine = state
        .cluster()
        .machines()
        .map(|m| state.cluster().machine(m).n_gpus())
        .max()
        .unwrap_or(1);
    n.div_ceil(max_per_machine.max(1))
}

/// The cheapest Eq. 3 cost an `n`-GPU allocation could achieve on an empty
/// cluster: fill whole machines with their best subsets, pay the network
/// for every cross-machine pair.
pub fn best_possible_cluster_cost(state: &ClusterState, n: usize) -> f64 {
    let cluster = state.cluster();
    let mut remaining = n;
    let mut chunks: Vec<(MachineId, usize)> = Vec::new();
    for m in cluster.machines() {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(cluster.machine(m).n_gpus());
        chunks.push((m, take));
        remaining -= take;
    }
    assert_eq!(remaining, 0, "cluster cannot host {n} GPUs at all");
    let mut cost = 0.0;
    for &(m, k) in &chunks {
        cost += best_possible_cost(cluster.machine(m), k);
    }
    // Cross-machine pairs all ride the network.
    let cross_pair = {
        let a = GlobalGpuId { machine: MachineId(0), gpu: GpuId(0) };
        let b = GlobalGpuId { machine: MachineId(1.min(cluster.n_machines() as u32 - 1)), gpu: GpuId(0) };
        if cluster.n_machines() > 1 { cluster.distance(a, b) } else { 0.0 }
    };
    for (i, &(_, a)) in chunks.iter().enumerate() {
        for &(_, b) in &chunks[i + 1..] {
            cost += (a * b) as f64 * cross_pair;
        }
    }
    cost
}

/// Attempts a spilled placement of `job` across machines. Returns `None`
/// when the cluster as a whole lacks the GPUs.
pub fn decide_spill(
    state: &ClusterState,
    job: &JobSpec,
    weights: UtilityWeights,
) -> Option<Decision> {
    let n = job.n_gpus as usize;
    let oracle = ClusterOracle::new(state, job);
    if oracle.gpus.len() < n {
        return None;
    }
    let graph = JobGraph::from_spec(job);
    let idx = drb_map(
        &graph,
        &(0..oracle.gpus.len() as u32).map(GpuId).collect::<Vec<_>>(),
        &oracle,
        weights,
    )
    .ok()?;
    let globals = oracle.resolve(&idx);
    let utility = spill_utility(state, job, &globals, weights);
    Some(Decision { gpus: globals, utility })
}

/// The greedy baselines' spill: take the first `n` free GPUs walking
/// machines in the given order (FCFS: id order; BF: fullest first).
pub fn greedy_spill(
    state: &ClusterState,
    job: &JobSpec,
    machine_order: &[MachineId],
    weights: UtilityWeights,
) -> Option<Decision> {
    let n = job.n_gpus as usize;
    let mut globals: Vec<GlobalGpuId> = Vec::with_capacity(n);
    for &m in machine_order {
        for gpu in state.free_gpus(m) {
            if globals.len() == n {
                break;
            }
            globals.push(GlobalGpuId { machine: m, gpu });
        }
    }
    if globals.len() < n {
        return None;
    }
    let utility = spill_utility(state, job, &globals, weights);
    Some(Decision { gpus: globals, utility })
}

/// Normalized utility of a concrete spilled placement.
pub fn spill_utility(
    state: &ClusterState,
    job: &JobSpec,
    globals: &[GlobalGpuId],
    weights: UtilityWeights,
) -> f64 {
    let n = globals.len();
    let u_cc = if job.communicates() {
        let actual = state.cluster().pairwise_cost(globals);
        let best = best_possible_cluster_cost(state, n);
        UtilityComponents::u_cc_from_costs(best, actual)
    } else {
        1.0
    };
    let u_interference = {
        let mut oracle = ClusterOracle::new(state, job);
        // Score the chosen GPUs through the oracle's index space.
        oracle.gpus = globals.to_vec();
        use gts_map::PlacementOracle as _;
        let idx: Vec<GpuId> = (0..n as u32).map(GpuId).collect();
        oracle.interference(&idx)
    };
    let machines_spanned = {
        let mut ms: Vec<_> = globals.iter().map(|g| g.machine).collect();
        ms.sort_unstable();
        ms.dedup();
        ms.len()
    };
    let min_machines = min_machines_needed(state, n);
    let u_domains = if machines_spanned <= min_machines {
        1.0
    } else {
        (min_machines as f64 / machines_spanned as f64).clamp(0.0, 1.0)
    };
    gts_map::utility(
        UtilityComponents { u_cc, u_interference, u_domains },
        weights,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::on_machine;
    use gts_job::{BatchClass, Constraints, NnModel};
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology};
    use std::sync::Arc;

    fn state(n_machines: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles)
    }

    fn multi_node_job(id: u64, gpus: u32) -> JobSpec {
        let mut j = JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus);
        j.constraints = Constraints { single_node: false, anti_collocate: false };
        j
    }

    #[test]
    fn six_gpu_job_spills_as_four_plus_two() {
        let s = state(2);
        let d = decide_spill(&s, &multi_node_job(0, 6), UtilityWeights::default()).unwrap();
        assert_eq!(d.gpus.len(), 6);
        let m0 = d.gpus.iter().filter(|g| g.machine == MachineId(0)).count();
        let m1 = d.gpus.iter().filter(|g| g.machine == MachineId(1)).count();
        // Whole machine + a packed pair beats any interleaving.
        assert_eq!(m0.max(m1), 4, "got {m0}/{m1}");
        assert_eq!(m0.min(m1), 2);
        // The 2-GPU shard must itself be packed.
        let small_machine = if m0 == 2 { MachineId(0) } else { MachineId(1) };
        let local: Vec<GpuId> = d
            .gpus
            .iter()
            .filter(|g| g.machine == small_machine)
            .map(|g| g.gpu)
            .collect();
        assert!(s.cluster().machine(small_machine).is_packed(&local), "{local:?}");
    }

    #[test]
    fn spill_utility_reflects_the_network_hit_fairly() {
        // The spill gets the *best possible* multi-machine shape, so u_cc is
        // high — the cost is inherent to the request, not the placement.
        let s = state(2);
        let d = decide_spill(&s, &multi_node_job(0, 6), UtilityWeights::default()).unwrap();
        assert!(d.utility > 0.8, "got {}", d.utility);
    }

    #[test]
    fn spill_fails_when_the_cluster_is_too_small() {
        let s = state(1);
        assert!(decide_spill(&s, &multi_node_job(0, 6), UtilityWeights::default()).is_none());
    }

    #[test]
    fn spill_avoids_busy_machines_when_it_can() {
        let mut s = state(3);
        // Machine 0 fully busy.
        s.place(
            JobSpec::new(9, NnModel::AlexNet, BatchClass::Tiny, 4),
            on_machine(MachineId(0), &[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]),
            1.0,
        );
        let d = decide_spill(&s, &multi_node_job(0, 6), UtilityWeights::default()).unwrap();
        assert!(d.gpus.iter().all(|g| g.machine != MachineId(0)));
    }

    #[test]
    fn spill_prefers_rack_local_machines() {
        // 2 racks × 2 machines; rack 0's machine 0 is busy, so a 6-GPU
        // spill should pair machine 1 (rack 0) with... no wait: machines 1
        // (rack 0) and 2, 3 (rack 1) are free. The mapper should take two
        // machines of the SAME rack (2+3) over a cross-rack mix.
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 2, 2));
        let mut s = ClusterState::new(cluster, profiles);
        s.place(
            JobSpec::new(9, NnModel::AlexNet, BatchClass::Big, 4),
            on_machine(MachineId(0), &[GpuId(0), GpuId(1), GpuId(2), GpuId(3)]),
            1.0,
        );
        let d = decide_spill(&s, &multi_node_job(0, 6), UtilityWeights::default()).unwrap();
        let mut racks: Vec<u32> = d
            .gpus
            .iter()
            .map(|g| s.cluster().rack_of(g.machine))
            .collect();
        racks.sort_unstable();
        racks.dedup();
        assert_eq!(racks, vec![1], "should stay inside rack 1, got {:?}", d.gpus);
    }

    #[test]
    fn best_cluster_cost_matches_manual_arithmetic() {
        let s = state(2);
        // 6 GPUs = full Minsky (cost 90) + NVLink pair (1) + 8 cross pairs
        // at 282 each.
        let expected = 90.0 + 1.0 + 8.0 * 282.0;
        assert!((best_possible_cluster_cost(&s, 6) - expected).abs() < 1e-9);
        // Single-machine requests collapse to the machine optimum.
        assert_eq!(best_possible_cluster_cost(&s, 2), 1.0);
    }
}
