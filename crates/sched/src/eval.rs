//! The placement evaluation engine: memoized + parallel candidate scoring
//! for the `TOPO-AWARE(-P)` policies.
//!
//! The naive Algorithm 1 arrival cost is one full Algorithm 2/3 DRB
//! mapping per feasible machine — linear in cluster size. Two observations
//! make it sublinear in practice:
//!
//! 1. **Equivalence classes.** A candidate evaluation is a pure function
//!    of `(machine topology class, free-GPU set, per-socket committed
//!    bandwidth, co-runner signature)` — the machine *id* never enters
//!    Eq. 2–5. On a mostly-idle homogeneous cluster almost every machine
//!    collapses into a handful of classes, so the engine runs one DRB
//!    mapping per *class* and fans the result out to every member.
//! 2. **Parallel representatives.** The per-class evaluations are
//!    independent, so they run on a scoped worker pool. Results return to
//!    indexed slots, making the reduction deterministic regardless of
//!    thread interleaving; together with the oracle's canonical co-runner
//!    order this keeps every utility bit-identical to the sequential
//!    reference (`GTS_EVAL_THREADS=1`).
//!
//! The engine never changes *which* candidate wins: the policy's
//! tie-breaking (`FRAG_TIE_EPS` + Eq. 5) runs sequentially over the
//! fanned-out per-candidate outcomes in original candidate order.
//!
//! 3. **Cross-event caching.** Because the class key is a pure function of
//!    machine state and the job-side inputs reduce to a small *job class*,
//!    a `(machine class, job class) → outcome` entry never goes stale —
//!    only cold. [`EvalCache`] therefore persists across arrivals for the
//!    whole scheduler/simulation run (a sharded LRU, `GTS_EVAL_CACHE`
//!    knob), so steady-state arrivals that revisit known keys skip the DRB
//!    mapping entirely (DESIGN.md §9).

use crate::oracle::{placement_utility, StateOracle};
use crate::state::{ClusterState, MachineClassKey};
use gts_job::{BatchClass, JobGraph, JobSpec, NnModel};
use gts_map::{drb_map, PlacementOracle as _, UtilityWeights};
use gts_topo::{GlobalGpuId, GpuId, MachineId};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Spawning threads for a couple of representatives costs more than the
/// evaluations; below this many distinct classes the engine stays on the
/// caller's thread (memoization still applies).
const MIN_PARALLEL_CLASSES: usize = 4;

/// Evaluation-engine parameters, threaded from the drivers down to
/// [`crate::Policy::decide_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalParams {
    /// Worker threads for candidate evaluation. `1` selects the sequential
    /// reference path: every candidate is evaluated in order with no
    /// memoization, exactly as the pre-engine scheduler did.
    pub threads: usize,
    /// Fan memo-miss shards out across the worker pool as one batch
    /// (`GTS_SHARD_PAR`, default on). Off selects the serial shard loop —
    /// the PR 6 reference path. Results are bit-identical either way.
    pub shard_par: bool,
    /// Prune memo-miss shards whose admissible utility bound proves them
    /// uncompetitive (`GTS_SHARD_BOUND`, default on). Exact
    /// branch-and-bound: results are bit-identical either way.
    pub shard_bound: bool,
    /// Replay whole decisions across events from the per-job-class decision
    /// snapshot, re-evaluating only the shards whose version stamps moved
    /// (`GTS_DECISION_REPLAY`, default on; DESIGN.md §12). Off restores the
    /// PR 7 per-decision path. Results are bit-identical either way.
    pub decision_replay: bool,
}

impl EvalParams {
    /// The sequential reference: candidates evaluated one by one, no
    /// memoization, no worker pool.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            shard_par: shard_par_env(),
            shard_bound: shard_bound_env(),
            decision_replay: decision_replay_env(),
        }
    }

    /// The engine with an explicit worker count (`≥ 2`; clamped up).
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads: threads.max(2),
            shard_par: shard_par_env(),
            shard_bound: shard_bound_env(),
            decision_replay: decision_replay_env(),
        }
    }

    /// Reads `GTS_EVAL_THREADS` (cached after the first read). Unset or
    /// unparsable values default to the host's available parallelism, with
    /// a floor of 2 so the memoized engine stays on even on single-core
    /// hosts — the memoization wins are independent of thread count.
    pub fn from_env() -> Self {
        static CACHED: OnceLock<usize> = OnceLock::new();
        let threads = *CACHED.get_or_init(|| {
            match std::env::var("GTS_EVAL_THREADS") {
                Ok(v) => match v.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => default_threads(),
                },
                Err(_) => default_threads(),
            }
        });
        Self {
            threads,
            shard_par: shard_par_env(),
            shard_bound: shard_bound_env(),
            decision_replay: decision_replay_env(),
        }
    }

    /// True when this selects the sequential reference path.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Overrides the shard fan-out knob (for in-process A/B testing).
    pub fn with_shard_par(mut self, on: bool) -> Self {
        self.shard_par = on;
        self
    }

    /// Overrides the shard bound-pruning knob (for in-process A/B testing).
    pub fn with_shard_bound(mut self, on: bool) -> Self {
        self.shard_bound = on;
        self
    }

    /// Overrides the decision-replay knob (for in-process A/B testing).
    pub fn with_decision_replay(mut self, on: bool) -> Self {
        self.decision_replay = on;
        self
    }
}

/// `GTS_SHARD_PAR` (cached): `0`/`off`/`false` disable the parallel shard
/// fan-out; anything else (including unset) leaves it on.
fn shard_par_env() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| parse_on_by_default(std::env::var("GTS_SHARD_PAR").ok().as_deref()))
}

/// `GTS_SHARD_BOUND` (cached): `0`/`off`/`false` disable bound pruning;
/// anything else (including unset) leaves it on.
fn shard_bound_env() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| parse_on_by_default(std::env::var("GTS_SHARD_BOUND").ok().as_deref()))
}

/// `GTS_DECISION_REPLAY` (cached): `0`/`off`/`false` disable cross-event
/// decision replay; anything else (including unset) leaves it on.
fn decision_replay_env() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED
        .get_or_init(|| parse_on_by_default(std::env::var("GTS_DECISION_REPLAY").ok().as_deref()))
}

fn parse_on_by_default(raw: Option<&str>) -> bool {
    !matches!(raw.map(str::trim), Some("0" | "off" | "false"))
}

impl Default for EvalParams {
    fn default() -> Self {
        Self::from_env()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// What evaluating one candidate machine produced.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CandidateOutcome {
    /// DRB found no mapping on this machine.
    NoMapping,
    /// A mapping exists but violates the §4.3 bandwidth constraint.
    RejectedBandwidth {
        /// The rejected GPU pick (shared: outcomes are cloned between
        /// the cross-event cache, shard memo entries and repairs, so the
        /// pick is refcounted rather than reallocated per clone).
        gpus: Arc<[GpuId]>,
    },
    /// A feasible placement with its Eq. 2 utility and Eq. 5
    /// fragmentation-after.
    Feasible {
        /// Machine-local GPUs, in task order (shared; see
        /// [`CandidateOutcome::RejectedBandwidth`]).
        gpus: Arc<[GpuId]>,
        /// Normalized Eq. 2 utility.
        utility: f64,
        /// Eq. 5 fragmentation the machine would be left with.
        frag_after: f64,
    },
}

/// The job-side half of a cross-event cache key: every *job* input the
/// per-candidate evaluation depends on, floats by bit pattern. `min_utility`,
/// arrival time and iteration count never enter Eq. 2–5, so jobs differing
/// only there share entries. Jobs carrying an explicit `comm_graph` are not
/// keyable (the graph is arbitrary) and bypass the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct JobClassKey {
    model: NnModel,
    batch: BatchClass,
    n_gpus: u32,
    bw_bits: u64,
    weight_bits: [u64; 3],
}

impl JobClassKey {
    /// The job's class, or `None` when the job is not cacheable (explicit
    /// communication graph).
    pub(crate) fn of(job: &JobSpec, weights: UtilityWeights) -> Option<Self> {
        if job.comm_graph.is_some() {
            return None;
        }
        Some(Self {
            model: job.model,
            batch: job.batch,
            n_gpus: job.n_gpus,
            bw_bits: job.bw_demand_gbs.to_bits(),
            weight_bits: [weights.cc.to_bits(), weights.b.to_bits(), weights.d.to_bits()],
        })
    }

    /// The class's FNV-1a fingerprint, hoisted by callers so building one
    /// [`CacheKey`] per machine class costs a mix, not a re-hash.
    pub(crate) fn bits(&self) -> u64 {
        let mut h = FnvHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

/// A cross-event cache key: machine equivalence class × job class. Both
/// halves are pure functions of (state, job-class) — machine ids, job ids
/// and clock values never enter — so an entry can only be *cold*, never
/// *stale* (DESIGN.md §9).
///
/// The 64-bit `bits` mix is carried inside the key and is all [`Hash`]
/// ever writes: the machine half's hash is precomputed by `ClusterState`
/// and the job half's once per evaluation call ([`JobClassKey::bits`]),
/// so probing the cache never re-hashes key payloads. Equal keys produce
/// equal mixes by construction, keeping `Eq`/`Hash` consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheKey {
    machine: MachineClassKey,
    job: JobClassKey,
    bits: u64,
}

impl CacheKey {
    /// Builds a key around the precomputed halves: `job_bits` must be
    /// `job.bits()` (hoisted out of per-class probe loops by callers).
    fn new(machine: MachineClassKey, job: JobClassKey, job_bits: u64) -> Self {
        let bits = machine.hash_bits().rotate_left(32) ^ job_bits;
        Self { machine, job, bits }
    }

    /// 64-bit hash used for both shard selection and the per-shard map.
    fn hash_bits(&self) -> u64 {
        self.bits
    }
}

impl Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        h.write_u64(self.bits);
    }
}

/// Default total cache capacity (entries across all shards) when
/// `GTS_EVAL_CACHE` is unset or just "1"/"on".
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Shards in the cross-event cache. Lookups are grouped per arrival (one
/// per equivalence class), so contention is light; 8 shards keeps the
/// parallel evaluation path from serializing on one mutex.
const N_SHARDS: usize = 8;

/// Parses `GTS_EVAL_CACHE` once: `None` = disabled (`0`/`off`/`false`,
/// restoring the pre-cache behavior), otherwise the total entry capacity
/// (`1`/`on`/`true`/unset → the default, any other positive integer → that
/// capacity).
fn cache_env() -> Option<usize> {
    static CACHED: OnceLock<Option<usize>> = OnceLock::new();
    *CACHED.get_or_init(|| match std::env::var("GTS_EVAL_CACHE") {
        Ok(v) => match v.trim() {
            "0" | "off" | "false" => None,
            "1" | "on" | "true" | "" => Some(DEFAULT_CACHE_CAPACITY),
            other => match other.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => Some(DEFAULT_CACHE_CAPACITY),
            },
        },
        Err(_) => Some(DEFAULT_CACHE_CAPACITY),
    })
}

/// Hit/miss/eviction counters of an [`EvalCache`], read at any point of a
/// run. One lookup is counted per *equivalence class* per arrival (the
/// engine groups candidates first), not per candidate machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Class evaluations answered from the cache.
    pub hits: u64,
    /// Class evaluations that ran the full DRB mapping (and filled the
    /// cache).
    pub misses: u64,
    /// Entries displaced by LRU capacity pressure.
    pub evictions: u64,
}

impl EvalCacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cross-event decision-replay counters (`GTS_DECISION_REPLAY`,
/// DESIGN.md §12), read at any point of a run via
/// [`crate::Scheduler::decision_replay_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionReplayStats {
    /// Retries answered from a snapshot (full or partial replay).
    pub hits: u64,
    /// Shards re-evaluated by partial replays; everything else was reused.
    pub shards_reeval: u64,
    /// Snapshots present but unusable (epoch/guard mismatch) — the
    /// decision fell back to the full path.
    pub full_fallbacks: u64,
}

const NIL: usize = usize::MAX;

/// One shard: a hash map into a slab threaded with an intrusive
/// doubly-linked LRU list (`head` = most recent, `tail` = eviction
/// victim). All operations are O(1).
struct Shard {
    map: HashMap<CacheKey, usize, std::hash::BuildHasherDefault<FnvHasher>>,
    slab: Vec<Entry>,
    head: usize,
    tail: usize,
    capacity: usize,
}

struct Entry {
    key: CacheKey,
    value: CandidateOutcome,
    prev: usize,
    next: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self { map: HashMap::default(), slab: Vec::new(), head: NIL, tail: NIL, capacity }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.slab[i].prev, self.slab[i].next);
        match p {
            NIL => self.head = n,
            _ => self.slab[p].next = n,
        }
        match n {
            NIL => self.tail = p,
            _ => self.slab[n].prev = p,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &CacheKey) -> Option<CandidateOutcome> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slab[i].value.clone())
    }

    /// Inserts (or refreshes) an entry; returns `true` when an older entry
    /// was evicted to make room.
    fn insert(&mut self, key: CacheKey, value: CandidateOutcome) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        if self.map.len() >= self.capacity {
            // Reuse the LRU victim's slot in place.
            let lru = self.tail;
            self.unlink(lru);
            let old_key = self.slab[lru].key.clone();
            self.map.remove(&old_key);
            self.slab[lru].key = key.clone();
            self.slab[lru].value = value;
            self.map.insert(key, lru);
            self.push_front(lru);
            return true;
        }
        let i = self.slab.len();
        self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
        self.map.insert(key, i);
        self.push_front(i);
        false
    }
}

/// The cross-event placement cache: a sharded, capacity-bounded LRU from
/// `(machine class, job class)` to the evaluated candidate outcome,
/// owned by a [`crate::Scheduler`] for the whole run.
///
/// Both key halves are pure functions of state (DESIGN.md §9), so entries
/// never go stale — a machine whose occupancy changes simply stops
/// producing the old key. Disabled (`GTS_EVAL_CACHE=0`) the engine behaves
/// exactly as the per-arrival memoizer did; enabled, results are still
/// bit-identical because a hit replays the bits a miss would have computed
/// (debug builds re-run the evaluation on every hit and assert exactly
/// that).
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    /// Cross-decision memo of whole-shard evaluations for the two-level
    /// sharded path, keyed by (state shard, job class) and guarded by the
    /// shard index's `(epoch, version)` pair — see [`ShardClassed`].
    shard_memo: Mutex<ShardMemoMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Queue-drain retries answered wholesale from a decision snapshot
    /// (nothing moved anywhere — O(1) replay, zero shards touched).
    replay_hits: AtomicU64,
    /// Shards re-evaluated by partial replays (everything else reused).
    replay_shards_reeval: AtomicU64,
    /// Snapshots present but unusable (epoch or guard mismatch), falling
    /// back to the full decision path.
    replay_full_fallbacks: AtomicU64,
}

/// One state-shard's fully grouped evaluation for one job class: the
/// capacity-filtered candidate list (ascending machine id), the class
/// grouping with per-class outcomes, and the shard-local `u_max` fold —
/// everything `decide_topo_sharded` needs to stream its selection scan
/// without re-walking the shard's machines.
///
/// Validity is proven by the shard index's `(epoch, version)` pair: the
/// version advances whenever a member machine's class key is rebuilt, and
/// every eval-relevant mutation rebuilds the touched machine's key (the
/// same purity argument that keeps [`EvalCache`] entries from going stale,
/// DESIGN.md §9–§10). An unchanged pair therefore pins both the candidate
/// set (free masks are key components) and every class outcome.
#[derive(Default)]
pub(crate) struct ShardClassed {
    /// Shard members with `free_count >= job.n_gpus`, ascending id.
    pub candidates: Vec<MachineId>,
    /// Each candidate's class-key rebuild stamp
    /// ([`ClusterState::key_stamp`]) at evaluation time, aligned with
    /// `candidates`. A stale entry (version moved on) is *repaired*
    /// instead of rebuilt: a candidate whose stored stamp still equals
    /// its live stamp provably kept its class key — the key only changes
    /// through the stamp-bumping rebuild — and the key is a pure function
    /// of machine state, so the stored outcome bits are its live outcome
    /// bits. A plain `u64` compare per candidate, no `Arc` traffic.
    pub stamps: Vec<u64>,
    /// Class grouping + one outcome per class, aligned with `candidates`.
    pub classed: ClassedOutcomes,
    /// `max` fold of the feasible utilities in candidate order
    /// (`NEG_INFINITY` when none are feasible).
    pub u_max: f64,
    /// Indices into `candidates` (ascending) of the only candidates that
    /// can ever win a selection scan: those whose feasible utility is
    /// within `FRAG_TIE_EPS` of this shard's own `u_max`, keeping just the
    /// head of each consecutive same-class run. The global floor is
    /// `u_global_max − FRAG_TIE_EPS ≥ u_max − FRAG_TIE_EPS` (float
    /// subtraction of a constant is monotone), so every below-window
    /// candidate provably fails the scan's floor test; a run repeat
    /// carries its head's exact `(utility, frag)` bits, on which
    /// `beats_winner` is always false — the scan walks this (typically
    /// tiny) window instead of the whole shard.
    pub contenders: Vec<u32>,
}

/// One state shard's memo slot for one job class: the `(epoch, version)`
/// pair the stored whole-shard evaluation was built under. `value: None`
/// means never filled (or wiped by a cap clear / shard-count change).
#[derive(Default)]
pub(crate) struct ShardSlot {
    pub epoch: u64,
    pub version: u64,
    pub value: Option<Arc<ShardClassed>>,
}

/// How the last snapshotted decision for a job class resolved one shard.
/// `Evaluated` carries no entry of its own: the per-shard [`ShardSlot`] in
/// the same row holds it (stored and guarded together, under one lock).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) enum SnapState {
    /// The shard failed admission (no machine wide enough for the job).
    #[default]
    NotAdmitted,
    /// The shard was fully evaluated; its entry sits in the row's slot.
    Evaluated,
    /// The shard was branch-and-bound pruned under this admissible bound.
    Pruned {
        /// The exact [`crate::bound::ShardBoundCtx`] bound at prune time —
        /// still the live bound while the shard's version is unchanged
        /// (every bound input is pinned by the `(epoch, version)` pair).
        bound: f64,
    },
}

/// A whole-decision snapshot for one job class (DESIGN.md §12): the
/// per-shard version vector captured at decision time, how each shard
/// resolved, and the decision itself. A retry whose live `(epoch, total
/// version)` stamps match replays the decision in O(1); a partial match
/// re-evaluates only the shards whose version moved, reusing everything
/// else (the per-shard states stay valid because every eval-relevant
/// mutation bumps the touched shard's version — the same funnel argument
/// that guards the shard memo).
///
/// `min_utility` and `single_node` are *not* part of [`JobClassKey`] (the
/// per-candidate evaluation never reads them) but do steer the selection
/// window, bound pruning and the spill fallthrough — so the snapshot
/// carries them as guards and a mismatch falls back to the full path.
#[derive(Debug, Default)]
pub(crate) struct DecisionSnap {
    /// The shard index epoch the snapshot was taken under.
    pub epoch: u64,
    /// Sum of per-shard versions at decision time (O(1) full-match probe).
    pub total_version: u64,
    /// Per-shard versions at decision time, indexed by shard.
    pub versions: Vec<u64>,
    /// Per-shard resolution at decision time, indexed by shard.
    pub states: Vec<SnapState>,
    /// `job.min_utility` bits at decision time (guard).
    pub min_utility_bits: u64,
    /// `job.constraints.single_node` at decision time (guard).
    pub single_node: bool,
    /// The decision the full path produced: granted GPUs and utility, or
    /// `None` when nothing (including the spill fallthrough) placed.
    pub decision: Option<(Vec<GlobalGpuId>, f64)>,
}

/// One job class's row in the shard memo: the per-shard slots plus the
/// whole-decision snapshot, guarded together under the memo lock.
#[derive(Default)]
pub(crate) struct MemoRow {
    /// Per state-shard memo slots, indexed by shard.
    pub slots: Box<[ShardSlot]>,
    /// The last decision snapshot for this class (replay path), if any.
    pub snap: Option<DecisionSnap>,
}

/// FNV-1a for the scheduler-internal hash maps (the shard memo and the
/// per-shard LRU maps). Their keys are hashed on the per-decision hot
/// path, where the default SipHash's DoS resistance buys nothing (keys
/// are small, fixed-shape and entirely trusted) but costs a measurable
/// slice of steady-state decision latency.
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// The shard memo, inverted: one row of per-shard slots (plus the decision
/// snapshot) per job class. A decision probes every admitted shard with the
/// *same* job class, so this layout pays one lock and one key hash per
/// decision and then a plain indexed version compare per shard, instead of
/// a keyed map probe (lock + hash + equality) per shard.
type ShardMemoMap = HashMap<JobClassKey, MemoRow, std::hash::BuildHasherDefault<FnvHasher>>;

/// Safety valve on distinct job-class rows in the memo. Real traces carry
/// a few dozen job classes, so this is far above steady state.
const SHARD_MEMO_CAP: usize = 512;

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache").field("stats", &self.stats()).finish()
    }
}

impl EvalCache {
    /// A cache bounded at `capacity` total entries (spread over the
    /// shards; floor of one entry per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(N_SHARDS).max(1);
        Self {
            shards: (0..N_SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            shard_memo: Mutex::new(ShardMemoMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            replay_hits: AtomicU64::new(0),
            replay_shards_reeval: AtomicU64::new(0),
            replay_full_fallbacks: AtomicU64::new(0),
        }
    }

    /// Runs `f` over the memo row (per-shard slots + decision snapshot) for
    /// `job`, creating (or re-sizing) the row on first touch — one lock and
    /// one key hash per call no matter how many shards the caller then
    /// reads or writes. Past [`SHARD_MEMO_CAP`] distinct job classes the
    /// memo is cleared wholesale; a row whose slot count disagrees with
    /// `n_shards` (the shard layout changed, which also advances the epoch)
    /// is reset empty, snapshot included.
    pub(crate) fn with_memo_row<R>(
        &self,
        job: &JobClassKey,
        n_shards: usize,
        f: impl FnOnce(&mut MemoRow) -> R,
    ) -> R {
        let mut memo = self.shard_memo.lock().expect("shard memo poisoned");
        if memo.get(job).is_none_or(|row| row.slots.len() != n_shards) {
            if memo.len() >= SHARD_MEMO_CAP {
                memo.clear();
            }
            let slots: Box<[ShardSlot]> = (0..n_shards).map(|_| ShardSlot::default()).collect();
            memo.insert(job.clone(), MemoRow { slots, snap: None });
        }
        f(memo.get_mut(job).expect("row ensured above"))
    }

    /// A cache sized by `GTS_EVAL_CACHE` (default capacity when the knob
    /// only toggles). Note this ignores the knob's *off* position — use
    /// [`EvalCache::enabled_by_env`] to honor it.
    pub fn from_env() -> Self {
        Self::with_capacity(cache_env().unwrap_or(DEFAULT_CACHE_CAPACITY))
    }

    /// The cache vector for the two-level decision path: one cache shared
    /// by every shard, with the per-shard `GTS_EVAL_CACHE` capacity scaled
    /// by the shard count (the same total budget a cache-per-shard split
    /// would claim). Sharing matters because machine-class keys recur
    /// across shards — an idle machine's key is the same in every rack —
    /// and per-shard caches made every shard learn every (machine class,
    /// job class) pair independently, multiplying first-touch DRB
    /// evaluations by the shard count. Keys are pure functions of state,
    /// so cache placement never affects the bits a lookup returns; the
    /// internal 8-way mutex sharding keeps parallel evaluators from
    /// serializing on it.
    pub fn from_env_per_shard(n_shards: usize) -> Vec<Self> {
        let capacity = cache_env().unwrap_or(DEFAULT_CACHE_CAPACITY);
        vec![Self::with_capacity(capacity.saturating_mul(n_shards.max(1)))]
    }

    /// Whether `GTS_EVAL_CACHE` leaves the cache enabled (anything but
    /// `0`/`off`/`false`; cached after the first read).
    pub fn enabled_by_env() -> bool {
        cache_env().is_some()
    }

    /// Counters so far.
    pub fn stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Decision-replay counters so far.
    pub fn replay_stats(&self) -> DecisionReplayStats {
        DecisionReplayStats {
            hits: self.replay_hits.load(Ordering::Relaxed),
            shards_reeval: self.replay_shards_reeval.load(Ordering::Relaxed),
            full_fallbacks: self.replay_full_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Counts one retry answered from a snapshot.
    pub(crate) fn note_replay_hit(&self) {
        self.replay_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` shards re-evaluated by a partial replay.
    pub(crate) fn note_replay_reeval(&self, n: u64) {
        self.replay_shards_reeval.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one snapshot that was present but unusable.
    pub(crate) fn note_replay_fallback(&self) {
        self.replay_full_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        // Spread by the high bits — the low bits feed the in-shard map.
        let h = key.hash_bits();
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    fn get(&self, key: &CacheKey) -> Option<CandidateOutcome> {
        let hit = self.shard(key).lock().expect("cache shard poisoned").get(key);
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: CacheKey, value: CandidateOutcome) {
        let evicted = self
            .shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Evaluates one candidate machine for `job`: DRB mapping, bandwidth
/// check, utility and fragmentation-after. Pure in the cluster state.
fn evaluate_one(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    machine: MachineId,
) -> CandidateOutcome {
    let free = state.free_gpus(machine);
    let oracle = StateOracle::new(state, machine, job);
    let Ok(gpus) = drb_map(graph, &free, &oracle, weights) else {
        return CandidateOutcome::NoMapping;
    };
    if !state.fits_bw(machine, &gpus, job.bw_demand_gbs) {
        return CandidateOutcome::RejectedBandwidth { gpus: gpus.into() };
    }
    let frag_after = oracle.fragmentation_after(&gpus);
    let utility = placement_utility(state, machine, job, &gpus, weights);
    CandidateOutcome::Feasible { gpus: gpus.into(), utility, frag_after }
}

/// Resolves one candidate machine's outcome the way a fresh
/// [`evaluate_topo_classes`] pass would: served from the cross-event cache
/// when the `(machine class, job class)` pair is known, otherwise the full
/// evaluation runs and fills the cache. The shard-repair path calls this
/// for exactly the machines whose class key changed since the memoized
/// pass; `job_bits` must be `job_class.bits()`, hoisted by the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve_candidate_outcome(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    machine: MachineId,
    key: &MachineClassKey,
    job_class: Option<&JobClassKey>,
    job_bits: u64,
    cache: Option<&EvalCache>,
) -> CandidateOutcome {
    if let (Some(cache), Some(jc)) = (cache, job_class) {
        let k = CacheKey::new(key.clone(), jc.clone(), job_bits);
        if let Some(hit) = cache.get(&k) {
            #[cfg(debug_assertions)]
            debug_assert_hit_matches(state, job, graph, weights, machine, &hit);
            return hit;
        }
        let outcome = evaluate_one(state, job, graph, weights, machine);
        cache.insert(k, outcome.clone());
        outcome
    } else {
        evaluate_one(state, job, graph, weights, machine)
    }
}

/// Debug check behind every cache hit: re-run the full evaluation and
/// assert the cached bits are exactly what a miss would have produced —
/// the PR 4 shadow-recompute discipline applied to the cross-event cache.
#[cfg(debug_assertions)]
fn debug_assert_hit_matches(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    machine: MachineId,
    hit: &CandidateOutcome,
) {
    let fresh = evaluate_one(state, job, graph, weights, machine);
    let bits_equal = match (&fresh, hit) {
        (CandidateOutcome::NoMapping, CandidateOutcome::NoMapping) => true,
        (
            CandidateOutcome::RejectedBandwidth { gpus: a },
            CandidateOutcome::RejectedBandwidth { gpus: b },
        ) => a == b,
        (
            CandidateOutcome::Feasible { gpus: ga, utility: ua, frag_after: fa },
            CandidateOutcome::Feasible { gpus: gb, utility: ub, frag_after: fb },
        ) => ga == gb && ua.to_bits() == ub.to_bits() && fa.to_bits() == fb.to_bits(),
        _ => false,
    };
    assert!(
        bits_equal,
        "stale cross-event cache entry for {machine}: cached {hit:?}, fresh {fresh:?}"
    );
}

/// Evaluates every candidate machine, returning outcomes in candidate
/// order. `params.threads == 1` is the sequential reference; otherwise
/// candidates are deduplicated into equivalence classes via the state's
/// precomputed keys and one representative per class is evaluated (in
/// parallel when there are enough classes to pay for the threads). With a
/// `cache`, class results are first looked up in — and misses fill — the
/// cross-event cache.
pub(crate) fn evaluate_topo_candidates(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    candidates: &[MachineId],
    params: EvalParams,
    cache: Option<&EvalCache>,
) -> Vec<CandidateOutcome> {
    if params.is_sequential()
        || candidates.is_empty()
        || (candidates.len() < 2 && cache.is_none())
    {
        return candidates
            .iter()
            .map(|&m| evaluate_one(state, job, graph, weights, m))
            .collect();
    }
    let classed = evaluate_topo_classes(state, job, graph, weights, candidates, params, cache);
    // Fan each class result out to its members, preserving candidate order.
    classed
        .class_of
        .into_iter()
        .map(|c| classed.outcomes[c].clone())
        .collect()
}

/// Class-grouped candidate evaluation without the per-candidate fan-out:
/// each candidate maps to an index into `outcomes` via `class_of`. The
/// two-level sharded decision path consumes this form directly, streaming
/// the selection scan over by-reference class outcomes instead of cloning
/// one outcome per candidate machine.
#[derive(Default)]
pub(crate) struct ClassedOutcomes {
    /// Per candidate (input order): index into `outcomes`.
    pub class_of: Vec<usize>,
    /// One outcome per distinct equivalence class.
    pub outcomes: Vec<CandidateOutcome>,
}

/// The engine's class-level core: groups `candidates` into equivalence
/// classes via the state's precomputed keys, answers what it can from the
/// cross-event `cache`, and evaluates the remaining representatives (in
/// parallel when there are enough of them). Outcomes are bit-identical to
/// evaluating each candidate individually, by the class-key purity
/// argument (DESIGN.md §7, §9).
pub(crate) fn evaluate_topo_classes(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    candidates: &[MachineId],
    params: EvalParams,
    cache: Option<&EvalCache>,
) -> ClassedOutcomes {
    // Group candidates into equivalence classes; the first member of each
    // class is its representative. Keys are precomputed by `ClusterState`
    // (rebuilt only for machines the last events touched), so this loop is
    // O(candidates) hash-map probes with zero key construction.
    let mut class_of: Vec<usize> = Vec::with_capacity(candidates.len());
    let mut reps: Vec<MachineId> = Vec::new();
    let mut rep_keys: Vec<MachineClassKey> = Vec::new();
    let mut index: HashMap<MachineClassKey, usize> = HashMap::new();
    for &m in candidates {
        let key = state.machine_class_key(m);
        let class = match index.get(key) {
            Some(&c) => c,
            None => {
                index.insert(key.clone(), reps.len());
                reps.push(m);
                rep_keys.push(key.clone());
                reps.len() - 1
            }
        };
        class_of.push(class);
    }

    // Serve whatever the cross-event cache already knows; evaluate the rest.
    let job_class = cache.and_then(|_| JobClassKey::of(job, weights));
    let cache = if job_class.is_some() { cache } else { None };
    let mut rep_outcomes: Vec<Option<CandidateOutcome>> = vec![None; reps.len()];
    let mut pending: Vec<usize> = Vec::new();
    if let (Some(cache), Some(jc)) = (cache, &job_class) {
        let job_bits = jc.bits();
        for (i, key) in rep_keys.iter().enumerate() {
            match cache.get(&CacheKey::new(key.clone(), jc.clone(), job_bits)) {
                Some(hit) => {
                    #[cfg(debug_assertions)]
                    debug_assert_hit_matches(state, job, graph, weights, reps[i], &hit);
                    rep_outcomes[i] = Some(hit);
                }
                None => pending.push(i),
            }
        }
    } else {
        pending.extend(0..reps.len());
    }

    let fresh: Vec<CandidateOutcome> =
        if pending.len() >= MIN_PARALLEL_CLASSES && params.threads > 1 {
            let machines: Vec<MachineId> = pending.iter().map(|&i| reps[i]).collect();
            run_indexed(machines.len(), params.threads, |i| {
                evaluate_one(state, job, graph, weights, machines[i])
            })
        } else {
            pending
                .iter()
                .map(|&i| evaluate_one(state, job, graph, weights, reps[i]))
                .collect()
        };
    for (&i, outcome) in pending.iter().zip(fresh) {
        if let (Some(cache), Some(jc)) = (cache, &job_class) {
            cache.insert(
                CacheKey::new(rep_keys[i].clone(), jc.clone(), jc.bits()),
                outcome.clone(),
            );
        }
        rep_outcomes[i] = Some(outcome);
    }
    ClassedOutcomes {
        class_of,
        outcomes: rep_outcomes
            .into_iter()
            .map(|o| o.expect("every class evaluated"))
            .collect(),
    }
}


/// Runs `f(0)..f(n-1)` on a scoped pool of up to `threads` workers,
/// returning results in index order regardless of thread interleaving.
///
/// If a worker panics, its actual panic payload is re-raised on the
/// caller's thread. The work queue is a bounded channel fed *inside* the
/// scope: when every worker has died the feed send fails and the feeder
/// simply stops, so the join below surfaces the worker's own panic instead
/// of the feeder masking it with a closed-channel panic of its own.
pub(crate) fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let n_workers = threads.min(n).max(1);
    let (tx_work, rx_work) = crossbeam::channel::bounded::<usize>(n_workers);
    let (tx_out, rx_out) = crossbeam::channel::unbounded::<(usize, T)>();
    let panic_payload = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let rx_work = rx_work.clone();
                let tx_out = tx_out.clone();
                let f = &f;
                scope.spawn(move || {
                    while let Ok(i) = rx_work.recv() {
                        let out = f(i);
                        if tx_out.send((i, out)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        // Drop the feeder-side receiver clone source so a fully-dead pool
        // closes the channel (send fails) instead of blocking forever.
        drop(rx_work);
        drop(tx_out);
        for i in 0..n {
            if tx_work.send(i).is_err() {
                break;
            }
        }
        drop(tx_work);
        let mut payload = None;
        for h in handles {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        payload
    });
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in rx_out.try_iter() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every work item evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::on_machine;
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology};
    use std::sync::Arc;

    fn state(n_machines: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles)
    }

    fn job(id: u64, gpus: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus).with_min_utility(0.5)
    }

    fn outcomes(s: &ClusterState, j: &JobSpec, params: EvalParams) -> Vec<CandidateOutcome> {
        outcomes_cached(s, j, params, None)
    }

    fn outcomes_cached(
        s: &ClusterState,
        j: &JobSpec,
        params: EvalParams,
        cache: Option<&EvalCache>,
    ) -> Vec<CandidateOutcome> {
        let graph = JobGraph::from_spec(j);
        let candidates = s.machines_with_capacity(j.n_gpus as usize);
        evaluate_topo_candidates(
            s,
            j,
            &graph,
            UtilityWeights::default(),
            &candidates,
            params,
            cache,
        )
    }

    #[test]
    fn env_knob_parses_and_clamps() {
        assert!(EvalParams::sequential().is_sequential());
        assert!(!EvalParams::parallel(1).is_sequential());
        assert_eq!(EvalParams::parallel(1).threads, 2);
        assert_eq!(EvalParams::parallel(8).threads, 8);
    }

    #[test]
    fn engine_matches_sequential_reference_bitwise() {
        let mut s = state(12);
        // Differentiate a few machines so several classes exist.
        s.place(job(100, 2), on_machine(MachineId(0), &[GpuId(0), GpuId(1)]), 1.0);
        s.place(job(101, 1), on_machine(MachineId(1), &[GpuId(2)]), 1.0);
        s.place(
            JobSpec::new(102, NnModel::GoogLeNet, BatchClass::Big, 1),
            on_machine(MachineId(2), &[GpuId(0)]),
            1.0,
        );
        let j = job(0, 2);
        let seq = outcomes(&s, &j, EvalParams::sequential());
        let par = outcomes(&s, &j, EvalParams::parallel(4));
        assert_eq!(seq.len(), 12);
        assert_eq!(seq, par);
        // Bit-exact utilities, not just PartialEq-equal.
        for (a, b) in seq.iter().zip(&par) {
            if let (
                CandidateOutcome::Feasible { utility: ua, frag_after: fa, .. },
                CandidateOutcome::Feasible { utility: ub, frag_after: fb, .. },
            ) = (a, b)
            {
                assert_eq!(ua.to_bits(), ub.to_bits());
                assert_eq!(fa.to_bits(), fb.to_bits());
            }
        }
    }

    #[test]
    fn idle_identical_machines_collapse_to_one_class() {
        let s = state(16);
        let candidates = s.machines_with_capacity(2);
        let mut keys: Vec<MachineClassKey> = candidates
            .iter()
            .map(|&m| s.machine_class_key(m).clone())
            .collect();
        keys.dedup();
        assert_eq!(keys.len(), 1, "an idle homogeneous cluster is one class");
    }

    #[test]
    fn class_key_separates_occupancy_and_corunners() {
        let mut s = state(3);
        s.place(job(100, 1), on_machine(MachineId(1), &[GpuId(0)]), 1.0);
        s.place(
            JobSpec::new(101, NnModel::GoogLeNet, BatchClass::Tiny, 1),
            on_machine(MachineId(2), &[GpuId(0)]),
            1.0,
        );
        let k0 = s.machine_class_key(MachineId(0));
        let k1 = s.machine_class_key(MachineId(1));
        let k2 = s.machine_class_key(MachineId(2));
        assert_ne!(k0, k1, "occupancy differs");
        assert_ne!(k1, k2, "co-runner model differs at equal occupancy");
    }

    #[test]
    fn corunner_signature_ignores_job_ids() {
        // Same model/batch/GPUs under different job ids → same class.
        let mut s = state(2);
        s.place(job(7, 1), on_machine(MachineId(0), &[GpuId(0)]), 1.0);
        s.place(job(900, 1), on_machine(MachineId(1), &[GpuId(0)]), 1.0);
        assert_eq!(
            s.machine_class_key(MachineId(0)),
            s.machine_class_key(MachineId(1))
        );
        assert_eq!(
            s.machine_class_key(MachineId(0)).hash_bits(),
            s.machine_class_key(MachineId(1)).hash_bits()
        );
    }

    #[test]
    fn down_machines_never_reach_the_engine_but_key_safely() {
        let mut s = state(2);
        s.set_machine_down(MachineId(1), true);
        assert_eq!(s.machine_class_key(MachineId(1)).inner().free_mask, 0);
    }

    #[test]
    fn cache_serves_hits_and_counts_misses_across_arrivals() {
        let s = state(8);
        let j = job(0, 2);
        let cache = EvalCache::with_capacity(64);
        let cold = outcomes_cached(&s, &j, EvalParams::parallel(2), Some(&cache));
        let after_cold = cache.stats();
        assert_eq!(after_cold.hits, 0);
        assert!(after_cold.misses >= 1);

        // Same state + same job class (different id / min_utility) → hits.
        let j2 = job(99, 2).with_min_utility(0.9);
        let warm = outcomes_cached(&s, &j2, EvalParams::parallel(2), Some(&cache));
        let after_warm = cache.stats();
        assert_eq!(warm, cold);
        assert_eq!(after_warm.misses, after_cold.misses, "no new evaluations");
        assert!(after_warm.hits >= 1);
        assert!((after_warm.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_on_and_off_agree_bitwise() {
        let mut s = state(12);
        s.place(job(100, 2), on_machine(MachineId(0), &[GpuId(0), GpuId(1)]), 1.0);
        s.place(job(101, 1), on_machine(MachineId(1), &[GpuId(2)]), 1.0);
        let cache = EvalCache::with_capacity(64);
        let j = job(0, 2);
        // Prime, then compare warm-hit outcomes against the uncached engine.
        outcomes_cached(&s, &j, EvalParams::parallel(4), Some(&cache));
        let warm = outcomes_cached(&s, &j, EvalParams::parallel(4), Some(&cache));
        let uncached = outcomes(&s, &j, EvalParams::parallel(4));
        for (a, b) in warm.iter().zip(&uncached) {
            match (a, b) {
                (
                    CandidateOutcome::Feasible { gpus: ga, utility: ua, frag_after: fa },
                    CandidateOutcome::Feasible { gpus: gb, utility: ub, frag_after: fb },
                ) => {
                    assert_eq!(ga, gb);
                    assert_eq!(ua.to_bits(), ub.to_bits());
                    assert_eq!(fa.to_bits(), fb.to_bits());
                }
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn jobs_with_explicit_graphs_bypass_the_cache() {
        let s = state(4);
        let cache = EvalCache::with_capacity(64);
        let j = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2)
            .with_comm_graph(JobGraph::pipeline(2, 4.0));
        outcomes_cached(&s, &j, EvalParams::parallel(2), Some(&cache));
        outcomes_cached(&s, &j, EvalParams::parallel(2), Some(&cache));
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 0, "graph jobs are not keyable");
    }

    #[test]
    fn pool_returns_results_in_index_order() {
        let out = run_indexed(257, 4, |i| i * 3);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        assert_eq!(run_indexed(1, 8, |i| i), vec![0]);
        assert!(run_indexed(0, 4, |i: usize| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_death_propagates_the_real_panic_not_a_closed_channel() {
        // Every item panics, so the whole pool dies while the feeder still
        // has work queued — exactly the shape that used to panic with
        // "work queue open" on the feeding side, masking the worker's
        // payload. The fix must surface the worker's own message.
        run_indexed(64, 4, |_: usize| -> usize { panic!("worker boom") });
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn single_worker_death_among_healthy_ones_still_propagates() {
        run_indexed(64, 4, |i| {
            if i == 37 {
                panic!("worker boom");
            }
            i
        });
    }

    #[test]
    fn lru_evicts_and_counts() {
        // Single-slot-per-shard cache: filling it with distinct job widths
        // must evict. (8 shards × 1 entry; 9+ distinct keys guarantee at
        // least one collision-driven eviction regardless of spread.)
        let s = state(2);
        let cache = EvalCache::with_capacity(1);
        for width in 1..=4u32 {
            for model in [NnModel::AlexNet, NnModel::CaffeRef, NnModel::GoogLeNet] {
                for batch in [BatchClass::Tiny, BatchClass::Small, BatchClass::Big] {
                    let j = JobSpec::new(width as u64, model, batch, width);
                    outcomes_cached(&s, &j, EvalParams::parallel(2), Some(&cache));
                }
            }
        }
        assert!(cache.stats().evictions >= 1, "capacity-1 shards must evict");
    }

    #[test]
    fn shard_memo_round_trips_and_guards_on_epoch_and_version() {
        let s = state(4);
        let j = job(0, 2);
        let weights = UtilityWeights::default();
        let cache = EvalCache::with_capacity(16);
        let candidates: Vec<MachineId> = s.machines_with_capacity(2);
        let graph = JobGraph::from_spec(&j);
        let classed = evaluate_topo_classes(
            &s,
            &j,
            &graph,
            weights,
            &candidates,
            EvalParams::sequential(),
            None,
        );
        let stamps: Vec<u64> = candidates.iter().map(|&m| s.key_stamp(m)).collect();
        let entry = Arc::new(ShardClassed {
            candidates,
            stamps,
            classed,
            u_max: 0.75,
            contenders: vec![0],
        });
        let key = JobClassKey::of(&j, weights).expect("plain job is keyable");
        cache.with_memo_row(&key, 2, |row| {
            assert_eq!(row.slots.len(), 2, "row sized to the shard count");
            assert!(row.slots[0].value.is_none(), "empty memo has no entry");
            assert!(row.snap.is_none(), "fresh row has no decision snapshot");
            row.slots[0] = ShardSlot { epoch: 7, version: 3, value: Some(Arc::clone(&entry)) };
            row.snap = Some(DecisionSnap {
                epoch: 7,
                total_version: 3,
                versions: vec![3, 0],
                states: vec![SnapState::Evaluated, SnapState::NotAdmitted],
                min_utility_bits: 0.5f64.to_bits(),
                single_node: false,
                decision: None,
            });
        });
        cache.with_memo_row(&key, 2, |row| {
            let hit = &row.slots[0];
            assert_eq!((hit.epoch, hit.version), (7, 3), "guard pair round-trips");
            let v = hit.value.as_ref().expect("filled slot persists");
            assert!(Arc::ptr_eq(v, &entry), "the stored Arc itself comes back");
            assert_eq!(v.u_max.to_bits(), entry.u_max.to_bits());
            assert_eq!(v.contenders, entry.contenders);
            assert!(row.slots[1].value.is_none(), "entries are per state-shard");
            let snap = row.snap.as_ref().expect("snapshot persists with the row");
            assert_eq!((snap.epoch, snap.total_version), (7, 3));
            assert_eq!(snap.states, vec![SnapState::Evaluated, SnapState::NotAdmitted]);
        });
        let other = JobClassKey::of(&job(1, 3), weights).expect("keyable");
        cache.with_memo_row(&other, 2, |row| {
            assert!(row.slots[0].value.is_none(), "a different job class has its own row");
        });
        cache.with_memo_row(&key, 3, |row| {
            assert_eq!(row.slots.len(), 3);
            assert!(
                row.slots.iter().all(|s| s.value.is_none()),
                "a shard-count change resets the row"
            );
            assert!(row.snap.is_none(), "a shard-count change drops the snapshot");
        });
        // Uncacheable jobs (explicit comm graph) have no class key, so the
        // caller can never reach the memo for them.
        let mut exotic = job(2, 2);
        exotic.comm_graph = Some(JobGraph::uniform(2, 1.0));
        assert!(JobClassKey::of(&exotic, weights).is_none());
    }
}
