//! The placement evaluation engine: memoized + parallel candidate scoring
//! for the `TOPO-AWARE(-P)` policies.
//!
//! The naive Algorithm 1 arrival cost is one full Algorithm 2/3 DRB
//! mapping per feasible machine — linear in cluster size. Two observations
//! make it sublinear in practice:
//!
//! 1. **Equivalence classes.** A candidate evaluation is a pure function
//!    of `(machine topology class, free-GPU set, per-socket committed
//!    bandwidth, co-runner signature)` — the machine *id* never enters
//!    Eq. 2–5. On a mostly-idle homogeneous cluster almost every machine
//!    collapses into a handful of classes, so the engine runs one DRB
//!    mapping per *class* and fans the result out to every member.
//! 2. **Parallel representatives.** The per-class evaluations are
//!    independent, so they run on a scoped worker pool. Results return to
//!    indexed slots, making the reduction deterministic regardless of
//!    thread interleaving; together with the oracle's canonical co-runner
//!    order this keeps every utility bit-identical to the sequential
//!    reference (`GTS_EVAL_THREADS=1`).
//!
//! The engine never changes *which* candidate wins: the policy's
//! tie-breaking (`FRAG_TIE_EPS` + Eq. 5) runs sequentially over the
//! fanned-out per-candidate outcomes in original candidate order.

use crate::oracle::{placement_utility, StateOracle};
use crate::state::ClusterState;
use gts_job::{BatchClass, JobGraph, JobSpec, NnModel};
use gts_map::{drb_map, PlacementOracle as _, UtilityWeights};
use gts_topo::{GpuId, MachineId};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Spawning threads for a couple of representatives costs more than the
/// evaluations; below this many distinct classes the engine stays on the
/// caller's thread (memoization still applies).
const MIN_PARALLEL_CLASSES: usize = 4;

/// Evaluation-engine parameters, threaded from the drivers down to
/// [`crate::Policy::decide_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalParams {
    /// Worker threads for candidate evaluation. `1` selects the sequential
    /// reference path: every candidate is evaluated in order with no
    /// memoization, exactly as the pre-engine scheduler did.
    pub threads: usize,
}

impl EvalParams {
    /// The sequential reference: candidates evaluated one by one, no
    /// memoization, no worker pool.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// The engine with an explicit worker count (`≥ 2`; clamped up).
    pub fn parallel(threads: usize) -> Self {
        Self { threads: threads.max(2) }
    }

    /// Reads `GTS_EVAL_THREADS` (cached after the first read). Unset or
    /// unparsable values default to the host's available parallelism, with
    /// a floor of 2 so the memoized engine stays on even on single-core
    /// hosts — the memoization wins are independent of thread count.
    pub fn from_env() -> Self {
        static CACHED: OnceLock<usize> = OnceLock::new();
        let threads = *CACHED.get_or_init(|| {
            match std::env::var("GTS_EVAL_THREADS") {
                Ok(v) => match v.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => default_threads(),
                },
                Err(_) => default_threads(),
            }
        });
        Self { threads }
    }

    /// True when this selects the sequential reference path.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for EvalParams {
    fn default() -> Self {
        Self::from_env()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// What evaluating one candidate machine produced.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CandidateOutcome {
    /// DRB found no mapping on this machine.
    NoMapping,
    /// A mapping exists but violates the §4.3 bandwidth constraint.
    RejectedBandwidth {
        /// The rejected GPU pick.
        gpus: Vec<GpuId>,
    },
    /// A feasible placement with its Eq. 2 utility and Eq. 5
    /// fragmentation-after.
    Feasible {
        /// Machine-local GPUs, in task order.
        gpus: Vec<GpuId>,
        /// Normalized Eq. 2 utility.
        utility: f64,
        /// Eq. 5 fragmentation the machine would be left with.
        frag_after: f64,
    },
}

/// The memoization key: every input the per-candidate evaluation depends
/// on, with floats captured by bit pattern so `Eq`/`Hash` are exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ClassKey {
    /// Topology class ([`gts_topo::ClusterTopology::machine_class`]).
    topo_class: u32,
    /// Free-GPU bitmask.
    free_mask: u128,
    /// Per-socket committed bandwidth, bit patterns.
    bw_bits: Vec<u64>,
    /// Co-runner signature, canonically sorted: `(model, batch, local GPU
    /// bitmask)` per running job on the machine.
    corunners: Vec<(NnModel, BatchClass, u128)>,
}

impl ClassKey {
    fn of(state: &ClusterState, machine: MachineId) -> Self {
        let bw_bits = state
            .socket_bw_used(machine)
            .iter()
            .map(|b| b.to_bits())
            .collect();
        let mut corunners: Vec<(NnModel, BatchClass, u128)> = state
            .running_on(machine)
            .iter()
            .map(|alloc| {
                let mut mask = 0u128;
                for g in alloc.gpus_on(machine) {
                    mask |= 1u128 << g.index();
                }
                (alloc.spec.model, alloc.spec.batch, mask)
            })
            .collect();
        corunners.sort_unstable();
        Self {
            topo_class: state.cluster().machine_class(machine),
            free_mask: state.free_mask_bits(machine),
            bw_bits,
            corunners,
        }
    }
}

/// Evaluates one candidate machine for `job`: DRB mapping, bandwidth
/// check, utility and fragmentation-after. Pure in the cluster state.
fn evaluate_one(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    machine: MachineId,
) -> CandidateOutcome {
    let free = state.free_gpus(machine);
    let oracle = StateOracle::new(state, machine, job);
    let Ok(gpus) = drb_map(graph, &free, &oracle, weights) else {
        return CandidateOutcome::NoMapping;
    };
    if !state.fits_bw(machine, &gpus, job.bw_demand_gbs) {
        return CandidateOutcome::RejectedBandwidth { gpus };
    }
    let frag_after = oracle.fragmentation_after(&gpus);
    let utility = placement_utility(state, machine, job, &gpus, weights);
    CandidateOutcome::Feasible { gpus, utility, frag_after }
}

/// Evaluates every candidate machine, returning outcomes in candidate
/// order. `params.threads == 1` is the sequential reference; otherwise
/// candidates are deduplicated into equivalence classes and one
/// representative per class is evaluated (in parallel when there are
/// enough classes to pay for the threads).
pub(crate) fn evaluate_topo_candidates(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    candidates: &[MachineId],
    params: EvalParams,
) -> Vec<CandidateOutcome> {
    if params.is_sequential() || candidates.len() < 2 {
        return candidates
            .iter()
            .map(|&m| evaluate_one(state, job, graph, weights, m))
            .collect();
    }

    // Group candidates into equivalence classes; the first member of each
    // class is its representative.
    let mut class_of: Vec<usize> = Vec::with_capacity(candidates.len());
    let mut reps: Vec<MachineId> = Vec::new();
    let mut index: HashMap<ClassKey, usize> = HashMap::new();
    for &m in candidates {
        let class = *index.entry(ClassKey::of(state, m)).or_insert_with(|| {
            reps.push(m);
            reps.len() - 1
        });
        class_of.push(class);
    }

    let rep_outcomes: Vec<CandidateOutcome> =
        if reps.len() >= MIN_PARALLEL_CLASSES && params.threads > 1 {
            evaluate_parallel(state, job, graph, weights, &reps, params.threads)
        } else {
            reps.iter()
                .map(|&m| evaluate_one(state, job, graph, weights, m))
                .collect()
        };

    // Fan each class result out to its members, preserving candidate order.
    class_of
        .into_iter()
        .map(|c| rep_outcomes[c].clone())
        .collect()
}

/// Evaluates the representatives on a scoped worker pool. A shared
/// `crossbeam` channel serves as the work queue; results land in indexed
/// slots so the output order is the input order, independent of thread
/// scheduling.
fn evaluate_parallel(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    reps: &[MachineId],
    threads: usize,
) -> Vec<CandidateOutcome> {
    let n_workers = threads.min(reps.len());
    let (tx_work, rx_work) = crossbeam::channel::unbounded::<usize>();
    for i in 0..reps.len() {
        tx_work.send(i).expect("work queue open");
    }
    drop(tx_work);
    let (tx_out, rx_out) = crossbeam::channel::unbounded::<(usize, CandidateOutcome)>();
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let rx_work = rx_work.clone();
            let tx_out = tx_out.clone();
            scope.spawn(move || {
                while let Ok(i) = rx_work.recv() {
                    let outcome = evaluate_one(state, job, graph, weights, reps[i]);
                    if tx_out.send((i, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx_out);
    let mut slots: Vec<Option<CandidateOutcome>> = vec![None; reps.len()];
    for (i, outcome) in rx_out.try_iter() {
        slots[i] = Some(outcome);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every representative evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::on_machine;
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology};
    use std::sync::Arc;

    fn state(n_machines: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles)
    }

    fn job(id: u64, gpus: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus).with_min_utility(0.5)
    }

    fn outcomes(s: &ClusterState, j: &JobSpec, params: EvalParams) -> Vec<CandidateOutcome> {
        let graph = JobGraph::from_spec(j);
        let candidates = s.machines_with_capacity(j.n_gpus as usize);
        evaluate_topo_candidates(s, j, &graph, UtilityWeights::default(), &candidates, params)
    }

    #[test]
    fn env_knob_parses_and_clamps() {
        assert!(EvalParams::sequential().is_sequential());
        assert!(!EvalParams::parallel(1).is_sequential());
        assert_eq!(EvalParams::parallel(1).threads, 2);
        assert_eq!(EvalParams::parallel(8).threads, 8);
    }

    #[test]
    fn engine_matches_sequential_reference_bitwise() {
        let mut s = state(12);
        // Differentiate a few machines so several classes exist.
        s.place(job(100, 2), on_machine(MachineId(0), &[GpuId(0), GpuId(1)]), 1.0);
        s.place(job(101, 1), on_machine(MachineId(1), &[GpuId(2)]), 1.0);
        s.place(
            JobSpec::new(102, NnModel::GoogLeNet, BatchClass::Big, 1),
            on_machine(MachineId(2), &[GpuId(0)]),
            1.0,
        );
        let j = job(0, 2);
        let seq = outcomes(&s, &j, EvalParams::sequential());
        let par = outcomes(&s, &j, EvalParams::parallel(4));
        assert_eq!(seq.len(), 12);
        assert_eq!(seq, par);
        // Bit-exact utilities, not just PartialEq-equal.
        for (a, b) in seq.iter().zip(&par) {
            if let (
                CandidateOutcome::Feasible { utility: ua, frag_after: fa, .. },
                CandidateOutcome::Feasible { utility: ub, frag_after: fb, .. },
            ) = (a, b)
            {
                assert_eq!(ua.to_bits(), ub.to_bits());
                assert_eq!(fa.to_bits(), fb.to_bits());
            }
        }
    }

    #[test]
    fn idle_identical_machines_collapse_to_one_class() {
        let s = state(16);
        let candidates = s.machines_with_capacity(2);
        let mut keys: Vec<ClassKey> = candidates
            .iter()
            .map(|&m| ClassKey::of(&s, m))
            .collect();
        keys.dedup();
        assert_eq!(keys.len(), 1, "an idle homogeneous cluster is one class");
    }

    #[test]
    fn class_key_separates_occupancy_and_corunners() {
        let mut s = state(3);
        s.place(job(100, 1), on_machine(MachineId(1), &[GpuId(0)]), 1.0);
        s.place(
            JobSpec::new(101, NnModel::GoogLeNet, BatchClass::Tiny, 1),
            on_machine(MachineId(2), &[GpuId(0)]),
            1.0,
        );
        let k0 = ClassKey::of(&s, MachineId(0));
        let k1 = ClassKey::of(&s, MachineId(1));
        let k2 = ClassKey::of(&s, MachineId(2));
        assert_ne!(k0, k1, "occupancy differs");
        assert_ne!(k1, k2, "co-runner model differs at equal occupancy");
    }

    #[test]
    fn corunner_signature_ignores_job_ids() {
        // Same model/batch/GPUs under different job ids → same class.
        let mut s = state(2);
        s.place(job(7, 1), on_machine(MachineId(0), &[GpuId(0)]), 1.0);
        s.place(job(900, 1), on_machine(MachineId(1), &[GpuId(0)]), 1.0);
        assert_eq!(ClassKey::of(&s, MachineId(0)), ClassKey::of(&s, MachineId(1)));
    }

    #[test]
    fn down_machines_never_reach_the_engine_but_key_safely() {
        let mut s = state(2);
        s.set_machine_down(MachineId(1), true);
        let k = ClassKey::of(&s, MachineId(1));
        assert_eq!(k.free_mask, 0);
    }
}
