//! The four placement policies of §5.2: `TOPO-AWARE`, `TOPO-AWARE-P`,
//! `FCFS` and Best-Fit (`BF`).
//!
//! Every policy answers the same question — *which GPUs should this job
//! get right now?* — and differs only in how it searches:
//!
//! * **FCFS** walks machines in id order and grabs the first free GPUs —
//!   the greedy baseline with `Θ(|E_A| + |V_P|)` cost;
//! * **Best-Fit** bin-packs: the feasible machine with the *fewest* free
//!   GPUs wins, and inside it GPUs come from the most-utilized sockets;
//! * **TOPO-AWARE(-P)** runs the Algorithm 2/3 DRB mapping on every
//!   feasible machine and keeps the highest-utility solution; the `-P`
//!   variant additionally *postpones* jobs whose best utility falls below
//!   their `min_utility` SLO.

use crate::bound::ShardBoundCtx;
use crate::eval::{
    evaluate_topo_candidates, evaluate_topo_classes, resolve_candidate_outcome, run_indexed,
    CandidateOutcome, ClassedOutcomes, EvalCache, EvalParams, JobClassKey, MemoRow,
    ShardClassed, ShardSlot, SnapState,
};
use crate::oracle::{placement_components, placement_utility, StateOracle};
use crate::shard::ShardIndex;
use crate::state::{on_machine, ClusterState};
use crate::trace::{CandidateEval, EvalOutcome};
use gts_job::{BatchClass, JobGraph, JobSpec, NnModel};
use gts_map::UtilityWeights;
use gts_topo::{GlobalGpuId, GpuId, MachineId};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, OnceLock};

/// Which placement strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First come, first served over machines and GPU ids.
    Fcfs,
    /// Best-fit bin packing ("allocating first the GPUs from highly used
    /// domains").
    BestFit,
    /// Utility-guided DRB mapping; always places when feasible.
    TopoAware,
    /// Utility-guided DRB mapping; postpones placements whose utility is
    /// below the job's `min_utility`.
    TopoAwareP,
}

impl PolicyKind {
    /// All four evaluated policies, in the paper's comparison order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fcfs,
        PolicyKind::BestFit,
        PolicyKind::TopoAware,
        PolicyKind::TopoAwareP,
    ];

    /// Whether this policy may postpone low-utility placements.
    pub fn postpones(self) -> bool {
        matches!(self, PolicyKind::TopoAwareP)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::BestFit => "BF",
            PolicyKind::TopoAware => "TOPO-AWARE",
            PolicyKind::TopoAwareP => "TOPO-AWARE-P",
        };
        f.write_str(s)
    }
}

/// A configured policy: the strategy plus the Eq. 2 weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// The strategy.
    pub kind: PolicyKind,
    /// Utility weights (αcc, αb, αd).
    pub weights: UtilityWeights,
}

impl Policy {
    /// Policy with the paper's equal weights.
    pub fn new(kind: PolicyKind) -> Self {
        Self { kind, weights: UtilityWeights::default() }
    }
}

/// A concrete placement proposal.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// GPUs to grant, in task order.
    pub gpus: Vec<GlobalGpuId>,
    /// Normalized utility of the proposal.
    pub utility: f64,
}

impl Policy {
    /// Proposes a placement for `job`, or `None` when no feasible set of
    /// GPUs exists right now. Never mutates state. Evaluation-engine
    /// parameters come from the environment ([`EvalParams::from_env`]).
    pub fn decide(&self, state: &ClusterState, job: &JobSpec) -> Option<Decision> {
        self.decide_impl(state, job, None, EvalParams::from_env(), None)
    }

    /// [`Policy::decide`] with explicit evaluation-engine parameters —
    /// `EvalParams::sequential()` selects the reference path the engine is
    /// proven bit-identical to.
    pub fn decide_with(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
    ) -> Option<Decision> {
        self.decide_impl(state, job, None, params, None)
    }

    /// [`Policy::decide_with`] backed by a cross-event [`EvalCache`]: class
    /// evaluations already cached from earlier arrivals are replayed
    /// instead of re-running DRB. Pass the scheduler-owned cache here on
    /// every arrival; the sequential reference path ignores it.
    pub fn decide_with_cache(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        cache: Option<&EvalCache>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, None, params, cache.map(std::slice::from_ref))
    }

    /// [`Policy::decide_with_cache`] with one cache per shard: the
    /// two-level decision path (engaged when the state holds more than one
    /// shard) looks shard `s` up in `caches[s % caches.len()]`, keeping
    /// cache working sets shard-local. Cache keys are pure functions of
    /// state, so the cache-to-shard assignment never changes the decision.
    pub fn decide_with_caches(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, None, params, caches)
    }

    /// Like [`Policy::decide`], but records every candidate machine the
    /// search touched — with its Eq. 2 utility breakdown — into `evals`.
    /// The evaluations appear in search order; the winning candidate (if
    /// any) is marked [`EvalOutcome::Chosen`].
    pub fn decide_traced(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), EvalParams::from_env(), None)
    }

    /// [`Policy::decide_traced`] with explicit evaluation-engine parameters.
    pub fn decide_traced_with(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
        params: EvalParams,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), params, None)
    }

    /// [`Policy::decide_traced_with`] backed by a cross-event [`EvalCache`].
    pub fn decide_traced_with_cache(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
        params: EvalParams,
        cache: Option<&EvalCache>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), params, cache.map(std::slice::from_ref))
    }

    /// [`Policy::decide_with_caches`] recording per-candidate evaluations.
    /// Tracing always takes the flat reference path (per-candidate records
    /// need per-candidate components), so only `caches[0]` is consulted.
    pub fn decide_traced_with_caches(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), params, caches)
    }

    fn record_eval(
        &self,
        trace: &mut Option<&mut Vec<CandidateEval>>,
        state: &ClusterState,
        job: &JobSpec,
        machine: MachineId,
        gpus: &[GpuId],
        outcome: EvalOutcome,
    ) {
        if let Some(evals) = trace.as_deref_mut() {
            let (u_cc, u_b, u_d, utility) = if gpus.is_empty() {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                let c = placement_components(state, machine, job, gpus);
                (
                    c.u_cc,
                    c.u_interference,
                    c.u_domains,
                    gts_map::utility(c, self.weights),
                )
            };
            evals.push(CandidateEval {
                machine,
                gpus: gpus.to_vec(),
                u_cc,
                u_b,
                u_d,
                utility,
                frag_after: fragmentation_after(state, machine, job, gpus),
                outcome,
            });
        }
    }

    fn decide_impl(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        mut trace: Option<&mut Vec<CandidateEval>>,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        if job.constraints.anti_collocate && job.n_gpus > 1 {
            let decision = self.decide_anti_collocated(state, job);
            if let Some(d) = &decision {
                for g in &d.gpus {
                    self.record_eval(
                        &mut trace,
                        state,
                        job,
                        g.machine,
                        &[g.gpu],
                        EvalOutcome::Chosen,
                    );
                }
            }
            return decision;
        }
        // The two-level sharded path (DESIGN.md §10): admission over shard
        // aggregates, then shard-local class evaluation with a streaming
        // selection scan — no per-candidate clones or allocations. Engaged
        // only for the topo policies when the state is actually sharded and
        // nothing forces the flat reference (tracing needs per-candidate
        // records; sequential params *are* the reference).
        if matches!(self.kind, PolicyKind::TopoAware | PolicyKind::TopoAwareP)
            && trace.is_none()
            && !params.is_sequential()
            && state.shards().n_shards() > 1
        {
            return self.decide_topo_sharded(state, job, params, caches);
        }
        let n = job.n_gpus as usize;
        let candidates = state.machines_with_capacity(n);
        if candidates.is_empty() {
            // Multi-node-capable jobs may spill across machines — the
            // disaggregated-GPU extension (§7 future work). Spill search is
            // cluster-wide; the scheduler traces it as a `Spilled` event
            // rather than per-machine evaluations.
            if !job.constraints.single_node {
                return self.decide_spilled(state, job);
            }
            return None;
        }
        match self.kind {
            PolicyKind::Fcfs => {
                // First machine (in id order) whose pick also satisfies the
                // §4.3 bandwidth constraint.
                for machine in candidates {
                    let gpus: Vec<GpuId> =
                        state.free_gpus(machine).into_iter().take(n).collect();
                    if state.fits_bw(machine, &gpus, job.bw_demand_gbs) {
                        self.record_eval(
                            &mut trace,
                            state,
                            job,
                            machine,
                            &gpus,
                            EvalOutcome::Chosen,
                        );
                        return Some(self.seal(state, job, machine, gpus));
                    }
                    self.record_eval(
                        &mut trace,
                        state,
                        job,
                        machine,
                        &gpus,
                        EvalOutcome::RejectedBandwidth,
                    );
                }
                None
            }
            PolicyKind::BestFit => {
                let mut ordered = candidates;
                ordered.sort_by_key(|&m| (state.free_count(m), m));
                for machine in ordered {
                    let gpus = best_fit_gpus(state, machine, n);
                    if state.fits_bw(machine, &gpus, job.bw_demand_gbs) {
                        self.record_eval(
                            &mut trace,
                            state,
                            job,
                            machine,
                            &gpus,
                            EvalOutcome::Chosen,
                        );
                        return Some(self.seal(state, job, machine, gpus));
                    }
                    self.record_eval(
                        &mut trace,
                        state,
                        job,
                        machine,
                        &gpus,
                        EvalOutcome::RejectedBandwidth,
                    );
                }
                None
            }
            PolicyKind::TopoAware | PolicyKind::TopoAwareP => {
                let graph = JobGraph::from_spec(job);
                let outcomes = evaluate_topo_candidates(
                    state,
                    job,
                    &graph,
                    self.weights,
                    &candidates,
                    params,
                    caches.and_then(|cs| cs.first()),
                );
                let mut feasible: Vec<(Decision, f64, usize)> = Vec::new();
                for (&machine, outcome) in candidates.iter().zip(outcomes) {
                    match outcome {
                        CandidateOutcome::NoMapping => {
                            self.record_eval(
                                &mut trace,
                                state,
                                job,
                                machine,
                                &[],
                                EvalOutcome::NoMapping,
                            );
                        }
                        CandidateOutcome::RejectedBandwidth { gpus } => {
                            self.record_eval(
                                &mut trace,
                                state,
                                job,
                                machine,
                                &gpus,
                                EvalOutcome::RejectedBandwidth,
                            );
                        }
                        CandidateOutcome::Feasible { gpus, utility, frag_after } => {
                            self.record_eval(
                                &mut trace,
                                state,
                                job,
                                machine,
                                &gpus,
                                EvalOutcome::Outscored,
                            );
                            let eval_idx =
                                trace.as_deref().map(|t| t.len() - 1).unwrap_or(0);
                            let d = Decision { gpus: on_machine(machine, &gpus), utility };
                            feasible.push((d, frag_after, eval_idx));
                        }
                    }
                }
                let winner = select_candidate(&feasible, job.min_utility)?;
                let (d, _, winner_idx) = feasible.swap_remove(winner);
                if let Some(evals) = trace {
                    evals[winner_idx].outcome = EvalOutcome::Chosen;
                }
                Some(d)
            }
        }
    }

    /// The two-level sharded decision for `TOPO-AWARE(-P)`:
    ///
    /// 1. **Admission** — consult every shard's aggregates and drop shards
    ///    with no machine wide enough for the job (O(shards), counters on
    ///    the shard index record the skip rate);
    /// 2. **Memo replay** — shards whose `(epoch, version)` pair is
    ///    unchanged since the last decision for this job class replay their
    ///    stored candidates/outcomes/u_max in O(1), establishing the
    ///    branch-and-bound floor without touching a machine;
    /// 3. **Bound pruning** (`GTS_SHARD_BOUND`) — the remaining memo-miss
    ///    shards are sorted by descending admissible utility bound
    ///    ([`ShardBoundCtx`]); any shard whose bound proves it cannot enter
    ///    the selection window is skipped outright. Exact, not heuristic:
    ///    see [`bound_prunes`] and DESIGN.md §11 (debug builds
    ///    shadow-evaluate every pruned shard and assert the bound held);
    /// 4. **Fan-out** (`GTS_SHARD_PAR`) — surviving miss shards are
    ///    evaluated as *one* batch across the worker pool, one task per
    ///    shard, results written into index slots keyed by admitted-shard
    ///    position. Memo puts happen after the join, on the caller's
    ///    thread, in deterministic order;
    /// 5. **Selection** — the reference `select_candidate` scan streams
    ///    over the class outcomes in ascending shard order (contiguous
    ///    ascending ranges concatenate to the flat candidate order), with
    ///    whole entries skipped when even their `u_max` fails the window —
    ///    identical comparisons in identical order either way.
    ///
    /// Only the winning candidate's GPUs are cloned into the returned
    /// [`Decision`], which is bit-identical to the flat path's.
    fn decide_topo_sharded(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        let n = job.n_gpus as usize;
        let shards = state.shards();
        let graph = JobGraph::from_spec(job);
        // One key for the whole decision: the memo probe, the replay
        // snapshot and the class-cache lookups all share it.
        let job_key = JobClassKey::of(job, self.weights);

        // Level 0: cross-event decision replay (DESIGN.md §12). A queue
        // retry whose snapshot guards hold re-evaluates only the shards
        // whose version stamps moved since the last decision for this job
        // class; `None` falls through to the full path below.
        if params.decision_replay {
            if let (Some(cs), Some(k)) = (caches, job_key.as_ref()) {
                if let Some(replayed) = self.try_replay(state, job, &graph, n, params, cs, k) {
                    return replayed;
                }
            }
        }

        ADMITTED_SCRATCH.with(|cell| {
            // Level 1: global admission over the cached per-shard
            // aggregates, into the reusable per-thread scratch.
            let mut admitted = cell.borrow_mut();
            let admitted = &mut *admitted;
            let total = shards.n_shards();
            admitted.clear();
            admitted.extend((0..total).filter(|&s| shards.has_capacity(s, n)));
            shards.note_admission(total as u64, (total - admitted.len()) as u64);

            // Level 2a: memo replay. The per-shard u_max folds compose
            // under `f64::max` exactly as the reference's flat
            // candidate-order fold (max is associative; NEG_INFINITY is its
            // identity), so the selection floor comes out identical. The
            // replayed maxima double as the pruning floor for the misses.
            // Hits are only *marked* here — the selection scan reads them
            // in place under the same lock later, so a decision's dozens of
            // replays cost zero `Arc` clone/drop pairs.
            let mut hit: Vec<bool> = vec![false; admitted.len()];
            let mut misses: Vec<usize> = Vec::new();
            // Out-of-date memo entries for the misses: a changed shard
            // usually changed on one or two machines, so its old entry
            // seeds a repair ([`repair_shard`]) instead of a from-scratch
            // evaluation. Indexed like `hit`.
            let mut stale: Vec<Option<Arc<ShardClassed>>> = vec![None; admitted.len()];
            let mut u_floor = f64::NEG_INFINITY;
            // One memo lock and one row probe for the whole decision; each
            // admitted shard then costs a plain indexed `(epoch, version)`
            // compare against its slot.
            if let (Some(cs), Some(k)) = (caches, job_key.as_ref()) {
                cs[0].with_memo_row(k, shards.n_shards(), |row| {
                    for (i, &s) in admitted.iter().enumerate() {
                        let slot = &row.slots[s];
                        match &slot.value {
                            Some(v)
                                if slot.epoch == shards.epoch()
                                    && slot.version == shards.version(s) =>
                            {
                                u_floor = u_floor.max(v.u_max);
                                hit[i] = true;
                            }
                            Some(v) => {
                                stale[i] = Some(Arc::clone(v));
                                misses.push(i);
                            }
                            None => misses.push(i),
                        }
                    }
                });
            } else {
                misses.extend(0..admitted.len());
            }

            // Level 2b: bound-prune and evaluate the misses. `fresh`
            // collects `(admitted index, entry)` so memo puts and slot
            // assignment stay on the caller's thread in deterministic
            // order regardless of how the evaluations ran.
            let use_par = params.shard_par && params.threads > 1;
            let mut fresh: Vec<(usize, Arc<ShardClassed>)> = Vec::with_capacity(misses.len());
            let mut pruned: Vec<(usize, f64)> = Vec::new();
            if !misses.is_empty() {
                if params.shard_bound {
                    let ctx = cached_bound_ctx(state, job, self.weights, shards.epoch());
                    let mut bounded: Vec<(usize, f64)> = misses
                        .iter()
                        .map(|&i| (i, ctx.shard_bound(shards, admitted[i])))
                        .collect();
                    // Best bound first so the serial loop tightens its
                    // floor as early as possible; ties break on ascending
                    // shard position to stay deterministic.
                    bounded.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                    if use_par {
                        // The floor is static across the batch (the memo
                        // replays), so pruning partitions up front and the
                        // survivors fan out together.
                        let (survivors, cut): (Vec<_>, Vec<_>) = bounded
                            .into_iter()
                            .partition(|&(_, b)| !bound_prunes(b, u_floor, job.min_utility));
                        pruned = cut;
                        fresh = eval_shard_batch(
                            state, job, &graph, self.weights, shards, admitted, &survivors,
                            n, params, caches, job_key.as_ref(), &stale,
                        );
                    } else {
                        // Serial branch-and-bound: every evaluated shard
                        // raises the floor for the ones still queued.
                        let mut u_so_far = u_floor;
                        for (i, bound) in bounded {
                            if bound_prunes(bound, u_so_far, job.min_utility) {
                                pruned.push((i, bound));
                                continue;
                            }
                            let s = admitted[i];
                            let entry = eval_or_repair(
                                state, job, &graph, self.weights, shards, s, n, params,
                                caches.map(|cs| &cs[s % cs.len()]),
                                job_key.as_ref(),
                                stale[i].as_ref(),
                            );
                            u_so_far = u_so_far.max(entry.u_max);
                            fresh.push((i, entry));
                        }
                    }
                    shards.note_bound(misses.len() as u64, pruned.len() as u64);
                } else if use_par {
                    let all: Vec<(usize, f64)> = misses.iter().map(|&i| (i, 0.0)).collect();
                    fresh = eval_shard_batch(
                        state, job, &graph, self.weights, shards, admitted, &all, n, params,
                        caches, job_key.as_ref(), &stale,
                    );
                } else {
                    // The PR 6 serial reference loop, ascending shards.
                    for &i in &misses {
                        let s = admitted[i];
                        let entry = eval_or_repair(
                            state, job, &graph, self.weights, shards, s, n, params,
                            caches.map(|cs| &cs[s % cs.len()]),
                            job_key.as_ref(),
                            stale[i].as_ref(),
                        );
                        fresh.push((i, entry));
                    }
                }
            }

            // Publish the fresh entries and run the fold + selection scan
            // in one lock scope, reading replayed hits in place — ascending
            // shard order throughout, exactly the flat scan's visit order.
            let mut retired: Vec<Arc<ShardClassed>> = Vec::with_capacity(fresh.len());
            let decision = if let (Some(cs), Some(k)) = (caches, job_key.as_ref()) {
                cs[0].with_memo_row(k, shards.n_shards(), |row| {
                    for (i, entry) in &fresh {
                        let s = admitted[*i];
                        let prev = std::mem::replace(
                            &mut row.slots[s],
                            ShardSlot {
                                epoch: shards.epoch(),
                                version: shards.version(s),
                                value: Some(Arc::clone(entry)),
                            },
                        );
                        if let Some(old) = prev.value {
                            retired.push(old);
                        }
                        hit[*i] = true;
                    }
                    #[cfg(debug_assertions)]
                    for (i, &s) in admitted.iter().enumerate() {
                        if hit[i] {
                            let entry =
                                row.slots[s].value.as_deref().expect("hit slots hold entries");
                            debug_assert_shard_memo_matches(
                                state, job, &graph, self.weights, s, n, params, entry,
                            );
                        }
                    }
                    let decision = {
                        let entries: Vec<&ShardClassed> = admitted
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| hit[i])
                            .map(|(_, &s)| {
                                row.slots[s].value.as_deref().expect("hit slots hold entries")
                            })
                            .collect();
                        self.finish_sharded(
                            state, job, &graph, n, params, admitted, &entries, &pruned,
                        )
                    };
                    // Snapshot the whole decision for the replay path: how
                    // every shard resolved, under which version vector, and
                    // what came out (DESIGN.md §12).
                    if params.decision_replay {
                        store_decision_snap(
                            row,
                            shards,
                            job,
                            admitted
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| hit[i])
                                .map(|(_, &s)| s),
                            pruned.iter().map(|&(i, b)| (admitted[i], b)),
                            decision.as_ref(),
                        );
                    }
                    decision
                })
            } else {
                // No memo available: every admitted shard was freshly
                // evaluated — reassemble in ascending shard order.
                let mut by_i: Vec<Option<&Arc<ShardClassed>>> = vec![None; admitted.len()];
                for (i, entry) in &fresh {
                    by_i[*i] = Some(entry);
                }
                let entries: Vec<&ShardClassed> =
                    by_i.iter().filter_map(|e| e.map(Arc::as_ref)).collect();
                self.finish_sharded(state, job, &graph, n, params, admitted, &entries, &pruned)
            };
            // Reclaim the retired entries' buffers for the next decision's
            // repairs. `stale` held the repairs' borrows of these — with it
            // gone, a genuinely replaced entry is sole-owned here and
            // unwraps; a fast-path re-register (old == new) stays shared
            // and is simply dropped.
            drop(stale);
            if !retired.is_empty() {
                ENTRY_POOL.with(|p| {
                    let mut pool = p.borrow_mut();
                    for a in retired {
                        if pool.len() >= ENTRY_POOL_CAP {
                            break;
                        }
                        if let Ok(e) = Arc::try_unwrap(a) {
                            pool.push(e);
                        }
                    }
                });
            }
            decision
        })
    }

    /// Cross-event decision replay (DESIGN.md §12): answers a queue-drain
    /// retry from the last decision snapshot for this job class, paying
    /// only for the shards whose version stamps moved since.
    ///
    /// Returns `Some(decision)` when the snapshot answered the retry (the
    /// decision may itself be `None` — a replayed postponement), or `None`
    /// when the full path must run (no snapshot yet, or a guard mismatch).
    ///
    /// Correctness leans on the version-vector funnel: every eval-relevant
    /// mutation rebuilds the touched machine's class key, which bumps that
    /// machine's shard version and the index-wide total. So
    ///
    /// * equal `(epoch, total_version)` pins the *entire* cluster state
    ///   (versions are monotone; an unchanged sum pins every summand) —
    ///   the stored decision, including `None` and spill outcomes, replays
    ///   bit-identically in O(1);
    /// * an unchanged per-shard version pins that shard's aggregates
    ///   (admission), candidate set, class outcomes and admissible bound —
    ///   its snapshot resolution is still live, so only mutated shards
    ///   re-evaluate, seeded with their stale memo entries exactly as the
    ///   full path would seed a repair;
    /// * the kept entries' `u_max` fold is a real achieved utility, hence a
    ///   valid exact branch-and-bound floor ([`bound_prunes`]) for both the
    ///   mutated shards and the re-test of snapshot-pruned shards (the
    ///   prune test is monotone in the floor, so one pass is exact).
    ///
    /// Debug builds shadow every replayed decision with a full fresh
    /// decision and assert bit-equality.
    #[allow(clippy::too_many_arguments)]
    fn try_replay(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        graph: &JobGraph,
        n: usize,
        params: EvalParams,
        caches: &[EvalCache],
        job_key: &JobClassKey,
    ) -> Option<Option<Decision>> {
        let shards = state.shards();
        enum Probe {
            /// No snapshot yet — cold, run the full path (not a fallback).
            Miss,
            /// Snapshot present but a guard mismatched — full path.
            Fallback,
            /// `(epoch, total_version)` both match: nothing moved anywhere,
            /// the stored decision is the decision.
            Full(Option<(Vec<GlobalGpuId>, f64)>),
            /// Same epoch, some versions moved: re-evaluate only those.
            Partial {
                /// Mutated shards + their stale memo entries (repair seeds).
                mutated: Vec<(usize, Option<Arc<ShardClassed>>)>,
                /// Unmutated evaluated shards (entries live in the memo).
                kept: Vec<usize>,
                /// Unmutated pruned shards: `(shard, stored bound, seed)`.
                pruned: Vec<(usize, f64, Option<Arc<ShardClassed>>)>,
                /// `u_max` fold over the kept entries.
                u_floor: f64,
            },
        }

        // Phase A (one lock): diff the live version vector against the
        // snapshot and classify every shard.
        let probe = caches[0].with_memo_row(job_key, shards.n_shards(), |row| {
            let Some(snap) = row.snap.as_ref() else {
                return Probe::Miss;
            };
            if snap.epoch != shards.epoch()
                || snap.versions.len() != shards.n_shards()
                || snap.min_utility_bits != job.min_utility.to_bits()
                || snap.single_node != job.constraints.single_node
            {
                return Probe::Fallback;
            }
            if snap.total_version == shards.total_version() {
                return Probe::Full(snap.decision.clone());
            }
            let live = shards.versions();
            let mut mutated = Vec::new();
            let mut kept = Vec::new();
            let mut pruned = Vec::new();
            let mut u_floor = f64::NEG_INFINITY;
            for (s, &snap_v) in snap.versions.iter().enumerate() {
                if snap_v != live[s] {
                    mutated.push((s, row.slots[s].value.as_ref().map(Arc::clone)));
                    continue;
                }
                match snap.states[s] {
                    SnapState::NotAdmitted => {}
                    SnapState::Evaluated => {
                        let slot = &row.slots[s];
                        match &slot.value {
                            Some(v)
                                if slot.epoch == shards.epoch()
                                    && slot.version == live[s] =>
                            {
                                u_floor = u_floor.max(v.u_max);
                                kept.push(s);
                            }
                            // Defensive: the slot no longer carries the
                            // snapshotted entry (shouldn't happen — slot
                            // and snapshot update together) — re-evaluate.
                            other => mutated.push((s, other.as_ref().map(Arc::clone))),
                        }
                    }
                    SnapState::Pruned { bound } => {
                        pruned.push((s, bound, row.slots[s].value.as_ref().map(Arc::clone)));
                    }
                }
            }
            Probe::Partial { mutated, kept, pruned, u_floor }
        });

        let (mut mutated, kept, pruned_snap, mut u_floor) = match probe {
            Probe::Miss => return None,
            Probe::Fallback => {
                caches[0].note_replay_fallback();
                return None;
            }
            Probe::Full(stored) => {
                caches[0].note_replay_hit();
                let decision =
                    stored.map(|(gpus, utility)| Decision { gpus, utility });
                #[cfg(debug_assertions)]
                self.debug_assert_replay_matches(state, job, params, &decision);
                return Some(decision);
            }
            Probe::Partial { mutated, kept, pruned, u_floor } => {
                (mutated, kept, pruned, u_floor)
            }
        };

        // Phase B (no lock): re-run admission for the mutated shards only
        // (an unmutated shard's aggregates are pinned by its version, so
        // its snapshot admission outcome is still live), then evaluate the
        // survivors through the full path's bound/repair/fan-out machinery.
        let total_mutated = mutated.len() as u64;
        mutated.retain(|&(s, _)| shards.has_capacity(s, n));
        shards.note_admission(total_mutated, total_mutated - mutated.len() as u64);
        let (admitted_m, stale_m): (Vec<usize>, Vec<Option<Arc<ShardClassed>>>) =
            mutated.into_iter().unzip();

        let use_par = params.shard_par && params.threads > 1;
        // Fresh evaluations keyed by *shard id* (not admitted position).
        let mut fresh: Vec<(usize, Arc<ShardClassed>)> = Vec::with_capacity(admitted_m.len());
        let mut cut: Vec<(usize, f64)> = Vec::new();
        if !admitted_m.is_empty() {
            if params.shard_bound {
                let ctx = cached_bound_ctx(state, job, self.weights, shards.epoch());
                let mut bounded: Vec<(usize, f64)> = (0..admitted_m.len())
                    .map(|i| (i, ctx.shard_bound(shards, admitted_m[i])))
                    .collect();
                bounded.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                if use_par {
                    let (survivors, dropped): (Vec<_>, Vec<_>) = bounded
                        .into_iter()
                        .partition(|&(_, b)| !bound_prunes(b, u_floor, job.min_utility));
                    cut = dropped.into_iter().map(|(i, b)| (admitted_m[i], b)).collect();
                    fresh = eval_shard_batch(
                        state, job, graph, self.weights, shards, &admitted_m, &survivors,
                        n, params, Some(caches), Some(job_key), &stale_m,
                    )
                    .into_iter()
                    .map(|(i, e)| (admitted_m[i], e))
                    .collect();
                    for (_, e) in &fresh {
                        u_floor = u_floor.max(e.u_max);
                    }
                } else {
                    for (i, bound) in bounded {
                        if bound_prunes(bound, u_floor, job.min_utility) {
                            cut.push((admitted_m[i], bound));
                            continue;
                        }
                        let s = admitted_m[i];
                        let entry = eval_or_repair(
                            state, job, graph, self.weights, shards, s, n, params,
                            Some(&caches[s % caches.len()]),
                            Some(job_key),
                            stale_m[i].as_ref(),
                        );
                        u_floor = u_floor.max(entry.u_max);
                        fresh.push((s, entry));
                    }
                }
                shards.note_bound(admitted_m.len() as u64, cut.len() as u64);
            } else if use_par {
                let all: Vec<(usize, f64)> =
                    (0..admitted_m.len()).map(|i| (i, 0.0)).collect();
                fresh = eval_shard_batch(
                    state, job, graph, self.weights, shards, &admitted_m, &all, n, params,
                    Some(caches), Some(job_key), &stale_m,
                )
                .into_iter()
                .map(|(i, e)| (admitted_m[i], e))
                .collect();
                for (_, e) in &fresh {
                    u_floor = u_floor.max(e.u_max);
                }
            } else {
                for (i, &s) in admitted_m.iter().enumerate() {
                    let entry = eval_or_repair(
                        state, job, graph, self.weights, shards, s, n, params,
                        Some(&caches[s % caches.len()]),
                        Some(job_key),
                        stale_m[i].as_ref(),
                    );
                    u_floor = u_floor.max(entry.u_max);
                    fresh.push((s, entry));
                }
            }
        }

        // Re-test the snapshot-pruned shards against the current floor.
        // One pass is exact: [`bound_prunes`] is monotone in the floor and
        // the floor only rises from here, so a shard pruned now stays
        // prunable at the final floor; one that fails re-evaluates (and
        // may itself raise the floor — harmless, see above).
        let mut still_pruned: Vec<(usize, f64)> = Vec::with_capacity(pruned_snap.len());
        for (s, bound, seed) in pruned_snap {
            if params.shard_bound && bound_prunes(bound, u_floor, job.min_utility) {
                still_pruned.push((s, bound));
                continue;
            }
            let entry = eval_or_repair(
                state, job, graph, self.weights, shards, s, n, params,
                Some(&caches[s % caches.len()]),
                Some(job_key),
                seed.as_ref(),
            );
            u_floor = u_floor.max(entry.u_max);
            fresh.push((s, entry));
        }

        caches[0].note_replay_hit();
        caches[0].note_replay_reeval(fresh.len() as u64);
        drop(stale_m);

        // Phase C (one lock): publish the fresh entries, reassemble the
        // ascending-shard entry list from kept ∪ fresh, run the reference
        // selection tail, and refresh the snapshot in place.
        fresh.sort_unstable_by_key(|&(s, _)| s);
        let mut retired: Vec<Arc<ShardClassed>> = Vec::with_capacity(fresh.len());
        let decision = caches[0].with_memo_row(job_key, shards.n_shards(), |row| {
            for (s, entry) in &fresh {
                let prev = std::mem::replace(
                    &mut row.slots[*s],
                    ShardSlot {
                        epoch: shards.epoch(),
                        version: shards.version(*s),
                        value: Some(Arc::clone(entry)),
                    },
                );
                if let Some(old) = prev.value {
                    retired.push(old);
                }
            }
            // `kept` ascends (Phase A walks shards in order) and `fresh`
            // is small (the mutated handful), so sorting just `fresh` and
            // merging beats sorting the full union; the two sets are
            // disjoint by construction (a shard is classified exactly
            // once).
            let mut used: Vec<usize> = Vec::with_capacity(kept.len() + fresh.len());
            {
                let (mut i, mut j) = (0, 0);
                while i < kept.len() || j < fresh.len() {
                    if j >= fresh.len() || (i < kept.len() && kept[i] < fresh[j].0) {
                        used.push(kept[i]);
                        i += 1;
                    } else {
                        used.push(fresh[j].0);
                        j += 1;
                    }
                }
            }
            #[cfg(debug_assertions)]
            for &s in &used {
                let entry = row.slots[s].value.as_deref().expect("used slots hold entries");
                debug_assert_shard_memo_matches(
                    state, job, graph, self.weights, s, n, params, entry,
                );
            }
            // `finish_sharded` wants the admitted-shard list (used ∪
            // pruned, ascending) with pruned as positions into it — the
            // same shape the full path hands it. `still_pruned` ascends
            // (Phase A pushed shards in order and the re-test preserved
            // it) and is disjoint from `used`, so one merge pass builds
            // both the list and the pruned positions.
            let mut admitted: Vec<usize> = Vec::with_capacity(used.len() + still_pruned.len());
            let mut pruned_ix: Vec<(usize, f64)> = Vec::with_capacity(still_pruned.len());
            {
                let (mut i, mut j) = (0, 0);
                while i < used.len() || j < still_pruned.len() {
                    if j >= still_pruned.len()
                        || (i < used.len() && used[i] < still_pruned[j].0)
                    {
                        admitted.push(used[i]);
                        i += 1;
                    } else {
                        pruned_ix.push((admitted.len(), still_pruned[j].1));
                        admitted.push(still_pruned[j].0);
                        j += 1;
                    }
                }
            }
            let decision = {
                let entries: Vec<&ShardClassed> = used
                    .iter()
                    .map(|&s| row.slots[s].value.as_deref().expect("used slots hold entries"))
                    .collect();
                self.finish_sharded(
                    state, job, graph, n, params, &admitted, &entries, &pruned_ix,
                )
            };
            store_decision_snap(
                row,
                shards,
                job,
                used.iter().copied(),
                still_pruned.iter().copied(),
                decision.as_ref(),
            );
            decision
        });
        drop(fresh);
        if !retired.is_empty() {
            ENTRY_POOL.with(|p| {
                let mut pool = p.borrow_mut();
                for a in retired {
                    if pool.len() >= ENTRY_POOL_CAP {
                        break;
                    }
                    if let Ok(e) = Arc::try_unwrap(a) {
                        pool.push(e);
                    }
                }
            });
        }
        #[cfg(debug_assertions)]
        self.debug_assert_replay_matches(state, job, params, &decision);
        Some(decision)
    }

    /// Debug shadow behind every replayed decision: re-run the whole
    /// sharded decision with replay off and no memo (the fresh reference)
    /// and assert the replay produced bit-identical output.
    #[cfg(debug_assertions)]
    fn debug_assert_replay_matches(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        got: &Option<Decision>,
    ) {
        let want =
            self.decide_topo_sharded(state, job, params.with_decision_replay(false), None);
        match (got, &want) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.gpus, b.gpus, "replayed GPUs diverge from fresh decision");
                assert_eq!(
                    a.utility.to_bits(),
                    b.utility.to_bits(),
                    "replayed utility diverges from fresh decision"
                );
            }
            _ => panic!("replayed decision {got:?} != fresh decision {want:?}"),
        }
    }

    /// The tail of the two-level decision: fold the selection floor over
    /// the per-shard entries (ascending shard order), fall through to the
    /// spill path when no shard holds a candidate, debug-check the pruned
    /// shards against the final window, and stream the reference
    /// [`select_candidate`] scan over each entry's contender window.
    ///
    /// Entries arrive as plain references so the memoized path can lend
    /// them straight out of the locked slot row — replay costs no `Arc`
    /// traffic — while the memo-less path lends its freshly built ones.
    #[allow(clippy::too_many_arguments)]
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    fn finish_sharded(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        graph: &JobGraph,
        n: usize,
        params: EvalParams,
        admitted: &[usize],
        entries: &[&ShardClassed],
        pruned: &[(usize, f64)],
    ) -> Option<Decision> {
        // Fold the floor in ascending shard order (the entries are
        // already ascending; no reassembly copy needed).
        let mut u_max = f64::NEG_INFINITY;
        let mut any_candidates = false;
        for e in entries {
            if e.candidates.is_empty() {
                continue;
            }
            any_candidates = true;
            u_max = u_max.max(e.u_max);
        }
        if !any_candidates {
            // No machine anywhere can host the job single-node — same
            // spill fallthrough as the flat path's empty-candidates
            // case. Pruning can never land here: a prune requires a
            // floor above the (nonnegative) bound, and any finite floor
            // came from an entry with a feasible candidate.
            debug_assert!(pruned.is_empty(), "pruned shards without a feasible floor");
            if !job.constraints.single_node {
                return self.decide_spilled(state, job);
            }
            return None;
        }

        let (floor, gate) = selection_floor_gate(u_max, job.min_utility);

        // Shadow-recompute every pruned shard against the final window:
        // the bound must dominate the shard's true best utility
        // (admissibility) *and* that best must fail the selection
        // window (exactness). Debug builds only — the release path
        // trusts the proof in DESIGN.md §11.
        #[cfg(debug_assertions)]
        for &(i, bound) in pruned {
            let s = admitted[i];
            let shard_u_max = fresh_shard_u_max(state, job, graph, self.weights, s, n, params);
            assert!(
                shard_u_max <= bound,
                "shard {s} bound {bound} below its true u_max {shard_u_max}"
            );
            assert!(
                skip_candidate(shard_u_max, floor, gate),
                "pruned shard {s} (u_max {shard_u_max}) survives the selection window \
                 (floor {floor}, gate {gate})"
            );
        }

        // The reference select_candidate scan, restricted to each
        // entry's precomputed contender window. Entries whose own
        // maximum fails the window are skipped wholesale; within an
        // entry, every non-contender carries a utility strictly below
        // `entry.u_max − FRAG_TIE_EPS ≤ floor` (monotone subtraction),
        // so the reference scan would skip it too — the survivors and
        // their visit order are the flat scan's exactly, and every
        // survivor still runs the full per-candidate predicates.
        let mut best: Option<(f64, f64, MachineId, &[GpuId])> = None;
        for entry in entries {
            if entry.candidates.is_empty() || skip_candidate(entry.u_max, floor, gate) {
                continue;
            }
            for &ci in &entry.contenders {
                let machine = entry.candidates[ci as usize];
                let c = entry.classed.class_of[ci as usize];
                let CandidateOutcome::Feasible { gpus, utility, frag_after } =
                    &entry.classed.outcomes[c]
                else {
                    continue;
                };
                if skip_candidate(*utility, floor, gate) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bu, bf, _, _)) => beats_winner(*frag_after, *utility, bf, bu),
                };
                if better {
                    best = Some((*utility, *frag_after, machine, gpus));
                }
            }
        }
        best.map(|(utility, _, machine, gpus)| Decision {
            gpus: on_machine(machine, gpus),
            utility,
        })
    }

    /// Spills a multi-node-capable job across machines when no single
    /// machine can host it.
    fn decide_spilled(&self, state: &ClusterState, job: &JobSpec) -> Option<Decision> {
        match self.kind {
            PolicyKind::TopoAware | PolicyKind::TopoAwareP => {
                crate::spill::decide_spill(state, job, self.weights)
            }
            PolicyKind::Fcfs => {
                let order: Vec<MachineId> = state.cluster().machines().collect();
                crate::spill::greedy_spill(state, job, &order, self.weights)
            }
            PolicyKind::BestFit => {
                let mut order: Vec<MachineId> = state.machines_with_capacity(1);
                order.sort_by_key(|&m| (state.free_count(m), m));
                crate::spill::greedy_spill(state, job, &order, self.weights)
            }
        }
    }

    /// Anti-collocated multi-GPU jobs take one GPU from each of `n`
    /// distinct machines. Greedy for the baselines; utility-ranked machine
    /// choice for the topology-aware policies (emptier machines first to
    /// limit interference).
    fn decide_anti_collocated(&self, state: &ClusterState, job: &JobSpec) -> Option<Decision> {
        let n = job.n_gpus as usize;
        let per_task_bw = job.bw_demand_gbs / n as f64;
        // One free-GPU query per machine: the first free GPU doubles as the
        // bandwidth probe and the eventual grant, and a machine whose
        // capacity vanished between queries simply drops out instead of
        // panicking on an empty free list.
        let mut hosts: Vec<(MachineId, GpuId)> = state
            .machines_with_capacity(1)
            .into_iter()
            .filter_map(|m| {
                let first = state.first_free_gpu(m)?;
                state.fits_bw(m, &[first], per_task_bw).then_some((m, first))
            })
            .collect();
        if hosts.len() < n {
            return None;
        }
        match self.kind {
            PolicyKind::Fcfs => {}
            PolicyKind::BestFit => {
                hosts.sort_by_key(|&(m, _)| (state.free_count(m), m));
            }
            PolicyKind::TopoAware | PolicyKind::TopoAwareP => {
                // Prefer machines where the task will feel the least
                // interference; score each host once, then sort.
                let mut scored: Vec<(f64, MachineId, GpuId)> = hosts
                    .into_iter()
                    .map(|(m, g)| {
                        (StateOracle::new(state, m, job).interference_one(&[g]), m, g)
                    })
                    .collect();
                // total_cmp, not partial_cmp().expect(): a NaN interference
                // score (however a profile produced it) must degrade to a
                // deterministic order, not panic mid-decision.
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                hosts = scored.into_iter().map(|(_, m, g)| (m, g)).collect();
            }
        }
        let gpus: Vec<GlobalGpuId> = hosts[..n]
            .iter()
            .map(|&(machine, gpu)| GlobalGpuId { machine, gpu })
            .collect();
        // Utility: communication crosses the network by construction, so
        // u_cc uses the cluster-level best (which equals the actual for a
        // forced spread — the job *asked* for it): score interference only.
        let mean_interference: f64 = gpus
            .iter()
            .map(|g| {
                StateOracle::new(state, g.machine, job).interference_one(&[g.gpu])
            })
            .sum::<f64>()
            / n as f64;
        let utility = self.weights.cc * 1.0
            + self.weights.b * mean_interference
            + self.weights.d * 1.0;
        Some(Decision { gpus, utility })
    }

    /// Packages a single-machine GPU pick into a [`Decision`] with its
    /// utility.
    fn seal(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        machine: MachineId,
        gpus: Vec<GpuId>,
    ) -> Decision {
        let utility = placement_utility(state, machine, job, &gpus, self.weights);
        Decision { gpus: on_machine(machine, &gpus), utility }
    }
}


/// Utilities closer than this are indistinguishable: the Eq. 4 interference
/// model is only a few percent accurate against the Fig. 6 measurements, so
/// preferring a machine for a sub-percent utility edge is noise-chasing.
const FRAG_TIE_EPS: f64 = 0.01;

/// Below this many memo-miss shards the per-batch thread spawn costs more
/// than the shard evaluations; the batch stays on the caller's thread
/// (results are identical either way — this is purely a latency heuristic).
const MIN_PARALLEL_SHARDS: usize = 4;

thread_local! {
    /// Reusable per-decision admitted-shard list (hoisted allocation — the
    /// sharded path runs tens of thousands of decisions per simulation).
    static ADMITTED_SCRATCH: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Reusable per-shard candidate list. Shard-memo entries must own their
    /// candidates, so the builder fills this scratch (absorbing the growth
    /// reallocations) and clones out at exactly the final length.
    static CANDIDATE_SCRATCH: RefCell<Vec<MachineId>> = const { RefCell::new(Vec::new()) };
    /// Reusable old-class → rebuilt-outcome index map for [`repair_shard`]
    /// (cleared and refilled per repair; never escapes).
    static REMAP_SCRATCH: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Recycled [`ShardClassed`] entries: when a decision's put loop
    /// replaces a memo slot, the retired entry (sole-owner by then — the
    /// repair's borrow is gone) is reclaimed via [`Arc::try_unwrap`] and
    /// its buffers handed back to [`repair_shard`], which would otherwise
    /// allocate five `Vec`s per rebuilt shard, every decision.
    static ENTRY_POOL: RefCell<Vec<ShardClassed>> = const { RefCell::new(Vec::new()) };
}

/// Upper bound on pooled entries — comfortably above the memo-miss shards
/// of one decision, small enough that an idle pool pins only a few KB.
const ENTRY_POOL_CAP: usize = 32;

/// Stores (or refreshes, reusing its allocations) the decision snapshot in
/// `row`: the live version vector, how every shard resolved — default
/// [`SnapState::NotAdmitted`], overridden for the `evaluated` and `pruned`
/// shards — the selection guards, and the decision itself (DESIGN.md §12).
fn store_decision_snap(
    row: &mut MemoRow,
    shards: &ShardIndex,
    job: &JobSpec,
    evaluated: impl Iterator<Item = usize>,
    pruned: impl Iterator<Item = (usize, f64)>,
    decision: Option<&Decision>,
) {
    let snap = row.snap.get_or_insert_with(Default::default);
    snap.epoch = shards.epoch();
    snap.total_version = shards.total_version();
    snap.versions.clear();
    snap.versions.extend_from_slice(shards.versions());
    snap.states.clear();
    snap.states.resize(shards.n_shards(), SnapState::NotAdmitted);
    for s in evaluated {
        snap.states[s] = SnapState::Evaluated;
    }
    for (s, bound) in pruned {
        snap.states[s] = SnapState::Pruned { bound };
    }
    snap.min_utility_bits = job.min_utility.to_bits();
    snap.single_node = job.constraints.single_node;
    snap.decision = decision.map(|d| (d.gpus.clone(), d.utility));
}

/// The exact branch-and-bound prune test: `true` only when *no* candidate
/// in a shard bounded by `bound` could affect the decision, given that some
/// already-evaluated shard reached `u_best`.
///
/// Exactness argument (every comparison in the selection scan is monotone
/// in the candidate utility, and every candidate in the shard scores
/// `≤ bound ≤ u_best ≤` the final `u_max`):
///
/// * the pruned shard cannot move the `u_max` fold (`f64::max` with a
///   value `≤` the running max is the identity, bit for bit), so the final
///   floor and gate are unchanged;
/// * first arm: `bound + 1e-12 < u_best − FRAG_TIE_EPS ≤` the final floor
///   (float subtraction is monotone), so every candidate fails
///   [`skip_candidate`]'s floor test;
/// * second arm: `u_best` already activates the SLO gate (so the final
///   `u_max` does too), and every candidate sits below `min_utility` by
///   the same `1e-9` margin the gate test uses — all skipped.
///
/// The `bound > u_best` early-out keeps the test conservative when the
/// bound *could* raise the maximum (then the shard must be evaluated, no
/// matter how the arms would read).
fn bound_prunes(bound: f64, u_best: f64, min_utility: f64) -> bool {
    if bound > u_best {
        return false;
    }
    bound + 1e-12 < u_best - FRAG_TIE_EPS
        || (u_best + 1e-9 >= min_utility && bound + 1e-9 < min_utility)
}

/// Key for the per-thread [`ShardBoundCtx`] memo: everything the context
/// depends on. The `epoch` is process-unique per [`ShardIndex`] instance
/// (fresh on build and on clone), and every other context input — the
/// profile library, the shard partition's static class sets, geometry and
/// widths — is fixed for that instance's lifetime, so an entry can only be
/// cold, never stale.
#[derive(PartialEq, Eq, Hash)]
struct BoundCtxKey {
    epoch: u64,
    model: NnModel,
    batch: BatchClass,
    n_gpus: u32,
    weight_bits: [u64; 3],
}

thread_local! {
    /// Cross-decision [`ShardBoundCtx`] memo. Building a context costs a
    /// library sweep plus one Eq. 4 per co-runner count — trivial once,
    /// but the sharded path runs tens of thousands of decisions that
    /// recycle a handful of job classes.
    static BOUND_CTX_MEMO: RefCell<HashMap<BoundCtxKey, Rc<ShardBoundCtx>>> =
        RefCell::new(HashMap::new());
}

/// Distinct (index, job class) bound contexts kept per thread; far above
/// any real trace's steady state, cleared wholesale when exceeded.
const BOUND_CTX_CAP: usize = 256;

/// The memoized bound context for this decision (see [`BoundCtxKey`] for
/// why entries never go stale).
fn cached_bound_ctx(
    state: &ClusterState,
    job: &JobSpec,
    weights: UtilityWeights,
    epoch: u64,
) -> Rc<ShardBoundCtx> {
    BOUND_CTX_MEMO.with(|cell| {
        let mut memo = cell.borrow_mut();
        if memo.len() >= BOUND_CTX_CAP {
            memo.clear();
        }
        let key = BoundCtxKey {
            epoch,
            model: job.model,
            batch: job.batch,
            n_gpus: job.n_gpus,
            weight_bits: [weights.cc.to_bits(), weights.b.to_bits(), weights.d.to_bits()],
        };
        Rc::clone(
            memo.entry(key)
                .or_insert_with(|| Rc::new(ShardBoundCtx::new(state, job, weights))),
        )
    })
}

/// Whether the batch fan-out can pay at all: the scoped pool spawns OS
/// threads per batch, which only buys wall time when the host has more
/// than one core (the `threads ≥ 2` engine floor exists for memoization,
/// not parallelism). Debug builds always engage, so the bit-identity
/// property suite exercises the batch path on any host.
fn fan_out_pays() -> bool {
    if cfg!(debug_assertions) {
        return true;
    }
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }) > 1
}

/// The per-shard contender window: indices of the feasible candidates
/// whose utility survives the floor test at the *tightest* floor the shard
/// can ever face (`u_max − FRAG_TIE_EPS`, its own maximum), with
/// consecutive same-class runs collapsed to their head. Written with
/// the same float expressions as [`skip_candidate`]'s floor arm, so
/// exclusion here provably implies a skip in the reference scan at any
/// actual floor (the global `u_max` is ≥ this shard's, and subtracting
/// `FRAG_TIE_EPS` is monotone); run collapsing is exact because repeats
/// carry the head's exact bits (see the inline argument).
fn fold_contenders(classed: &ClassedOutcomes, u_max: f64) -> Vec<u32> {
    let mut out = Vec::new();
    fold_contenders_into(classed, u_max, &mut out);
    out
}

/// [`fold_contenders`] writing into a caller-owned (pooled) buffer.
fn fold_contenders_into(classed: &ClassedOutcomes, u_max: f64, out: &mut Vec<u32>) {
    let local_floor = u_max - FRAG_TIE_EPS;
    out.clear();
    let mut last_kept: Option<usize> = None;
    for (ci, &c) in classed.class_of.iter().enumerate() {
        if let CandidateOutcome::Feasible { utility, .. } = classed.outcomes[c] {
            if utility + 1e-12 >= local_floor {
                // Collapse consecutive same-class runs: a window-passing
                // candidate whose class equals the previous window-passing
                // candidate's carries bit-identical (utility, frag), and
                // `beats_winner` is false on equal bits — whether or not
                // the run's head became the running best, the repeat can
                // never displace it (floor-skipped candidates in between
                // leave the running best untouched), so the reference scan
                // provably ignores it.
                if last_kept != Some(c) {
                    out.push(ci as u32);
                    last_kept = Some(c);
                }
            }
        }
    }
}

/// Builds one shard's candidate list (through the per-thread scratch) and
/// runs the class evaluation, folding the shard's feasible-utility maximum.
#[allow(clippy::too_many_arguments)]
fn evaluate_shard(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shards: &ShardIndex,
    s: usize,
    n: usize,
    params: EvalParams,
    cache: Option<&EvalCache>,
) -> Arc<ShardClassed> {
    CANDIDATE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.extend(shards.machines(s).iter().copied().filter(|&m| state.free_count(m) >= n));
        let classed = evaluate_topo_classes(state, job, graph, weights, &buf, params, cache);
        let stamps: Vec<u64> = buf.iter().map(|&m| state.key_stamp(m)).collect();
        let mut u_max = f64::NEG_INFINITY;
        for &c in &classed.class_of {
            if let CandidateOutcome::Feasible { utility, .. } = classed.outcomes[c] {
                u_max = u_max.max(utility);
            }
        }
        let contenders = fold_contenders(&classed, u_max);
        Arc::new(ShardClassed { candidates: buf.clone(), stamps, classed, u_max, contenders })
    })
}

/// Rebuilds a stale whole-shard memo entry from its unchanged parts
/// instead of re-evaluating every class. A candidate whose stored
/// rebuild stamp still equals its live stamp provably kept its class key
/// ([`ClusterState::key_stamp`]), and the key is a pure function of
/// machine state (DESIGN.md §9), so its stored outcome bits are its live
/// outcome bits — one `u64` compare per candidate, no key traffic.
/// Changed or newly-feasible machines resolve through the class cache
/// exactly as a fresh evaluation would ([`resolve_candidate_outcome`]),
/// so every per-candidate outcome is bit-identical to a from-scratch
/// pass.
///
/// The rebuilt grouping keeps one outcome per *surviving old class* plus
/// one per changed machine, so it may duplicate a class a fresh pass
/// would merge — `class_of` only needs alignment, not minimality: the
/// `u_max` fold, [`fold_contenders`] and the selection scan all walk
/// per-candidate sequences, and a duplicated class carries bit-equal
/// outcomes, on which `beats_winner` is always false.
#[allow(clippy::too_many_arguments)]
fn repair_shard(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shards: &ShardIndex,
    s: usize,
    n: usize,
    cache: Option<&EvalCache>,
    job_key: Option<&JobClassKey>,
    old: &Arc<ShardClassed>,
) -> Arc<ShardClassed> {
    CANDIDATE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.extend(shards.machines(s).iter().copied().filter(|&m| state.free_count(m) >= n));
        let job_bits = job_key.map_or(0, JobClassKey::bits);
        // Fast path: the version bump was invisible to this job class —
        // every candidate survived with its stamp (hence key) intact,
        // e.g. the touched machine is infeasible for `n` both before and
        // after. The old entry is then bit-valid wholesale and simply
        // re-registers under the new version.
        let same_list = buf.len() == old.candidates.len() && buf.iter().eq(old.candidates.iter());
        if same_list && buf.iter().zip(&old.stamps).all(|(&m, &st)| state.key_stamp(m) == st) {
            return Arc::clone(old);
        }
        // Build into a recycled entry (its five buffers keep their
        // capacity across decisions) — a steady-state repair costs zero
        // `Vec` growth, only the `Arc` cell itself.
        let mut entry = ENTRY_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        entry.candidates.clear();
        entry.stamps.clear();
        entry.classed.class_of.clear();
        entry.classed.outcomes.clear();
        // Bulk path for the dominant repair shape: identical candidate
        // list, a handful of changed stamps. The old vectors copy over
        // wholesale (outcome clones are refcount bumps) and only the
        // changed slots resolve, each as its own appended class — exactly
        // the outcome bits the walk below would assign. Wholesale copy
        // keeps old orphaned classes, so the path is gated on the outcome
        // table not yet outgrowing the candidate count; past that the
        // remap walk below compacts them away, bounding accumulation
        // across repeated repairs.
        if same_list && old.classed.outcomes.len() <= old.candidates.len() {
            entry.candidates.extend_from_slice(&old.candidates);
            entry.stamps.extend_from_slice(&old.stamps);
            entry.classed.class_of.extend_from_slice(&old.classed.class_of);
            entry.classed.outcomes.extend_from_slice(&old.classed.outcomes);
            let stamps = &mut entry.stamps;
            let class_of = &mut entry.classed.class_of;
            let outcomes = &mut entry.classed.outcomes;
            for (idx, &m) in buf.iter().enumerate() {
                let stamp = state.key_stamp(m);
                if old.stamps[idx] == stamp {
                    continue;
                }
                stamps[idx] = stamp;
                // The prev-key run-join of the walk below compares against
                // the *previous candidate's live key*; here the previous
                // candidate's outcome slot is authoritative either way, so
                // joining when keys match keeps the same bits while
                // skipping a resolve (idx 0 has no previous candidate).
                if idx > 0
                    && state.machine_class_key(buf[idx - 1]) == state.machine_class_key(m)
                {
                    class_of[idx] = class_of[idx - 1];
                } else {
                    let outcome = resolve_candidate_outcome(
                        state,
                        job,
                        graph,
                        weights,
                        m,
                        state.machine_class_key(m),
                        job_key,
                        job_bits,
                        cache,
                    );
                    class_of[idx] = outcomes.len();
                    outcomes.push(outcome);
                }
            }
            let mut u_max = f64::NEG_INFINITY;
            for &c in &entry.classed.class_of {
                if let CandidateOutcome::Feasible { utility, .. } = entry.classed.outcomes[c] {
                    u_max = u_max.max(utility);
                }
            }
            fold_contenders_into(&entry.classed, u_max, &mut entry.contenders);
            entry.u_max = u_max;
            return Arc::new(entry);
        }
        let stamps = &mut entry.stamps;
        let class_of = &mut entry.classed.class_of;
        let outcomes = &mut entry.classed.outcomes;
        // Old class index → rebuilt outcome index, filled lazily so
        // orphaned classes (all members gone or changed) are dropped and
        // repeated repairs can't accumulate them.
        REMAP_SCRATCH.with(|remap_cell| {
            let mut remap = remap_cell.borrow_mut();
            remap.clear();
            remap.resize(old.classed.outcomes.len(), usize::MAX);
            let mut old_mpos = 0usize;
            let mut prev: Option<MachineId> = None;
            for (idx, &m) in buf.iter().enumerate() {
                let stamp = state.key_stamp(m);
                let mut old_pos = idx;
                let reusable = if same_list {
                    // Identical candidate lists (the common repair: the
                    // touched machine stayed feasible) — old slot is the
                    // same index, only the stamp needs a look.
                    old.stamps[idx] == stamp
                } else {
                    // Both candidate lists ascend by machine id — a merge
                    // walk finds m's old slot (when it was feasible last
                    // time) in O(1) amortized.
                    while old_mpos < old.candidates.len() && old.candidates[old_mpos] < m {
                        old_mpos += 1;
                    }
                    old_pos = old_mpos;
                    old_pos < old.candidates.len()
                        && old.candidates[old_pos] == m
                        && old.stamps[old_pos] == stamp
                };
                if reusable {
                    let oc = old.classed.class_of[old_pos];
                    if remap[oc] == usize::MAX {
                        remap[oc] = outcomes.len();
                        outcomes.push(old.classed.outcomes[oc].clone());
                    }
                    class_of.push(remap[oc]);
                } else if prev.is_some_and(|p| {
                    state.machine_class_key(p) == state.machine_class_key(m)
                }) {
                    // A changed machine whose live key equals the previous
                    // candidate's joins its class: equal keys pin equal
                    // outcome bits, and keeping the run intact keeps the
                    // contender window as tight as a fresh grouping's (the
                    // common case — a release returning a machine to the
                    // idle class of its neighbours).
                    class_of.push(*class_of.last().expect("prev implies nonempty"));
                } else {
                    let outcome = resolve_candidate_outcome(
                        state,
                        job,
                        graph,
                        weights,
                        m,
                        state.machine_class_key(m),
                        job_key,
                        job_bits,
                        cache,
                    );
                    class_of.push(outcomes.len());
                    outcomes.push(outcome);
                }
                stamps.push(stamp);
                prev = Some(m);
            }
        });
        let mut u_max = f64::NEG_INFINITY;
        for &c in &entry.classed.class_of {
            if let CandidateOutcome::Feasible { utility, .. } = entry.classed.outcomes[c] {
                u_max = u_max.max(utility);
            }
        }
        fold_contenders_into(&entry.classed, u_max, &mut entry.contenders);
        entry.u_max = u_max;
        entry.candidates.extend_from_slice(&buf);
        Arc::new(entry)
    })
}

/// Evaluates one memo-miss shard, repairing its stale entry when one
/// exists ([`repair_shard`]) and evaluating from scratch otherwise.
#[allow(clippy::too_many_arguments)]
fn eval_or_repair(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shards: &ShardIndex,
    s: usize,
    n: usize,
    params: EvalParams,
    cache: Option<&EvalCache>,
    job_key: Option<&JobClassKey>,
    stale: Option<&Arc<ShardClassed>>,
) -> Arc<ShardClassed> {
    match stale {
        Some(old) => {
            repair_shard(state, job, graph, weights, shards, s, n, cache, job_key, old)
        }
        None => evaluate_shard(state, job, graph, weights, shards, s, n, params, cache),
    }
}

/// Evaluates the surviving memo-miss shards as one batch: one task per
/// shard across the worker pool (each task evaluates its shard's classes on
/// its own thread — `threads: 1` inside — so the pool is fed `|shards|`
/// coarse tasks instead of being entered once per shard). Results come back
/// in input order via the index-slot reduction in [`run_indexed`]; the
/// caller re-establishes ascending shard order, so the fan-out is invisible
/// to the selection scan. Small batches stay on the caller's thread.
#[allow(clippy::too_many_arguments)]
fn eval_shard_batch(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shards: &ShardIndex,
    admitted: &[usize],
    survivors: &[(usize, f64)],
    n: usize,
    params: EvalParams,
    caches: Option<&[EvalCache]>,
    job_key: Option<&JobClassKey>,
    stale: &[Option<Arc<ShardClassed>>],
) -> Vec<(usize, Arc<ShardClassed>)> {
    if survivors.len() >= MIN_PARALLEL_SHARDS && fan_out_pays() {
        let inner = EvalParams { threads: 1, ..params };
        let results = run_indexed(survivors.len(), params.threads, |k| {
            let i = survivors[k].0;
            let s = admitted[i];
            eval_or_repair(
                state,
                job,
                graph,
                weights,
                shards,
                s,
                n,
                inner,
                caches.map(|cs| &cs[s % cs.len()]),
                job_key,
                stale[i].as_ref(),
            )
        });
        survivors.iter().map(|&(i, _)| i).zip(results).collect()
    } else {
        survivors
            .iter()
            .map(|&(i, _)| {
                let s = admitted[i];
                let entry = eval_or_repair(
                    state,
                    job,
                    graph,
                    weights,
                    shards,
                    s,
                    n,
                    params,
                    caches.map(|cs| &cs[s % cs.len()]),
                    job_key,
                    stale[i].as_ref(),
                );
                (i, entry)
            })
            .collect()
    }
}

/// Fresh (cache-free) evaluation of one shard's best feasible utility — the
/// debug shadow check behind bound pruning.
#[cfg(debug_assertions)]
fn fresh_shard_u_max(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shard: usize,
    n: usize,
    params: EvalParams,
) -> f64 {
    let candidates: Vec<MachineId> = state
        .shards()
        .machines(shard)
        .iter()
        .copied()
        .filter(|&m| state.free_count(m) >= n)
        .collect();
    let fresh = evaluate_topo_classes(state, job, graph, weights, &candidates, params, None);
    let mut u_max = f64::NEG_INFINITY;
    for &c in &fresh.class_of {
        if let CandidateOutcome::Feasible { utility, .. } = fresh.outcomes[c] {
            u_max = u_max.max(utility);
        }
    }
    u_max
}

/// Debug check behind every shard-memo hit: rebuild the candidate list and
/// re-run the class evaluation against the live state, then assert the memo
/// replays the same *per-candidate* bits — the shadow-recompute discipline
/// (DESIGN.md §9) applied to the cross-decision shard memo. A failure here
/// means some mutation path changed eval-relevant state without rebuilding
/// the touched machine's class key (and thereby bumping the shard version).
///
/// The comparison is per candidate rather than structural on purpose: a
/// repaired entry ([`repair_shard`]) may group candidates into more classes
/// than a fresh pass would merge, and its contender window may anchor runs
/// at different heads — both are invisible to the selection scan, which
/// only dereferences `outcomes[class_of[i]]` per candidate. The contender
/// window is instead checked for internal consistency against the entry's
/// *own* grouping, which is exactly what the scan walks.
#[cfg(debug_assertions)]
#[allow(clippy::too_many_arguments)]
fn debug_assert_shard_memo_matches(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shard: usize,
    n: usize,
    params: EvalParams,
    entry: &ShardClassed,
) {
    let candidates: Vec<MachineId> = state
        .shards()
        .machines(shard)
        .iter()
        .copied()
        .filter(|&m| state.free_count(m) >= n)
        .collect();
    let fresh = evaluate_topo_classes(state, job, graph, weights, &candidates, params, None);
    assert_eq!(entry.candidates, candidates, "shard {shard} memo: stale candidate set");
    for (i, &m) in candidates.iter().enumerate() {
        assert_eq!(
            entry.stamps[i],
            state.key_stamp(m),
            "shard {shard} memo: stale key stamp for machine {m}"
        );
        assert_eq!(
            entry.classed.outcomes[entry.classed.class_of[i]],
            fresh.outcomes[fresh.class_of[i]],
            "shard {shard} memo: stale outcome for machine {m}"
        );
    }
    let mut want_u_max = f64::NEG_INFINITY;
    for &c in &fresh.class_of {
        if let CandidateOutcome::Feasible { utility, .. } = fresh.outcomes[c] {
            want_u_max = want_u_max.max(utility);
        }
    }
    assert_eq!(
        entry.u_max.to_bits(),
        want_u_max.to_bits(),
        "shard {shard} memo: stale u_max fold"
    );
    assert_eq!(
        entry.contenders,
        fold_contenders(&entry.classed, entry.u_max),
        "shard {shard} memo: inconsistent contender window"
    );
}

/// The selection thresholds derived from the best feasible utility: the
/// near-tie `floor` and the SLO `gate`. Only gate on the SLO when the best
/// candidate clears it; otherwise the job is getting a violation either way
/// and pure utility should rule.
fn selection_floor_gate(u_max: f64, min_utility: f64) -> (f64, f64) {
    let floor = u_max - FRAG_TIE_EPS;
    let gate = if u_max + 1e-9 >= min_utility {
        min_utility
    } else {
        f64::NEG_INFINITY
    };
    (floor, gate)
}

/// Whether a feasible candidate drops out of the selection scan: outside
/// the near-tie band of the best utility, or below the (active) SLO gate.
fn skip_candidate(utility: f64, floor: f64, gate: f64) -> bool {
    utility + 1e-12 < floor || utility + 1e-9 < gate
}

/// Whether a surviving candidate displaces the current winner: strictly
/// lower Eq. 5 fragmentation, or equal fragmentation with strictly higher
/// utility (both to the same epsilon the flat scan has always used).
fn beats_winner(frag: f64, utility: f64, best_frag: f64, best_utility: f64) -> bool {
    frag + 1e-12 < best_frag
        || ((frag - best_frag).abs() <= 1e-12 && utility > best_utility + 1e-12)
}

/// Picks the winning candidate among `(decision, frag_after, eval_idx)`
/// triples: highest utility wins, but candidates within [`FRAG_TIE_EPS`] of
/// the best are treated as a tie and resolved by the Eq. 5 fragmentation
/// each machine would be left with — topping off a busy machine beats
/// cracking open an idle one that a wide job will need. Tied candidates
/// below `min_utility` never displace one that satisfies the SLO.
///
/// The sharded fast path streams this exact scan (same predicates via
/// [`skip_candidate`]/[`beats_winner`], same order) over class-outcome
/// references — keep the two in lockstep.
fn select_candidate(feasible: &[(Decision, f64, usize)], min_utility: f64) -> Option<usize> {
    let u_max = feasible
        .iter()
        .map(|(d, _, _)| d.utility)
        .fold(f64::NEG_INFINITY, f64::max);
    let (floor, gate) = selection_floor_gate(u_max, min_utility);
    let mut winner: Option<usize> = None;
    for (i, (d, frag, _)) in feasible.iter().enumerate() {
        if skip_candidate(d.utility, floor, gate) {
            continue;
        }
        let better = match winner {
            None => true,
            Some(w) => {
                let (dw, fw, _) = &feasible[w];
                beats_winner(*frag, d.utility, *fw, dw.utility)
            }
        };
        if better {
            winner = Some(i);
        }
    }
    winner
}

/// Eq. 5 fragmentation `machine` would be left with after granting `gpus`.
fn fragmentation_after(
    state: &ClusterState,
    machine: MachineId,
    job: &JobSpec,
    gpus: &[GpuId],
) -> f64 {
    use gts_map::PlacementOracle as _;
    StateOracle::new(state, machine, job).fragmentation_after(gpus)
}

/// Best-Fit GPU selection within a machine: GPUs from the most-utilized
/// sockets first (fewest free GPUs), then by id.
fn best_fit_gpus(state: &ClusterState, machine: MachineId, n: usize) -> Vec<GpuId> {
    let topo = state.cluster().machine(machine);
    let occupancy = state.socket_occupancy(machine);
    let mut free = state.free_gpus(machine);
    free.sort_by_key(|&g| {
        let socket = topo.socket_of(g);
        (occupancy[socket.index()].0, socket, g)
    });
    free.truncate(n);
    free
}

impl StateOracle<'_> {
    /// Public-ish shim over `PlacementOracle::interference` for policy code.
    pub(crate) fn interference_one(&self, gpus: &[GpuId]) -> f64 {
        use gts_map::PlacementOracle as _;
        self.interference(gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, Constraints, NnModel};
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology};
    use std::sync::Arc;

    fn state(n_machines: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles)
    }

    fn job(id: u64, gpus: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus).with_min_utility(0.5)
    }

    fn g(m: u32, gpu: u32) -> GlobalGpuId {
        GlobalGpuId { machine: MachineId(m), gpu: GpuId(gpu) }
    }

    #[test]
    fn fcfs_takes_lowest_ids() {
        let s = state(2);
        let d = Policy::new(PolicyKind::Fcfs).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus, vec![g(0, 0), g(0, 1)]);
    }

    #[test]
    fn fcfs_is_topology_blind_under_fragmentation() {
        let mut s = state(1);
        // GPUs 1 and 2 free: one per socket.
        s.place(job(10, 1), vec![g(0, 0)], 1.0);
        s.place(job(11, 1), vec![g(0, 3)], 1.0);
        let d = Policy::new(PolicyKind::Fcfs).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus, vec![g(0, 1), g(0, 2)]);
        assert!(d.utility < 0.5, "cross-socket pick scores low: {}", d.utility);
    }

    #[test]
    fn best_fit_prefers_the_fuller_machine() {
        let mut s = state(2);
        s.place(job(10, 2), vec![g(1, 0), g(1, 1)], 1.0);
        // Machine 1 has 2 free, machine 0 has 4 free: BF picks machine 1.
        let d = Policy::new(PolicyKind::BestFit).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus[0].machine, MachineId(1));
    }

    #[test]
    fn best_fit_packs_into_the_fuller_socket() {
        let mut s = state(1);
        s.place(job(10, 1), vec![g(0, 0)], 1.0);
        // Socket 0 has 1 free, socket 1 has 2: BF takes GPU1 first.
        let d = Policy::new(PolicyKind::BestFit).decide(&s, &job(0, 1)).unwrap();
        assert_eq!(d.gpus, vec![g(0, 1)]);
    }

    #[test]
    fn topo_aware_packs_a_two_gpu_job() {
        let s = state(1);
        let d = Policy::new(PolicyKind::TopoAware).decide(&s, &job(0, 2)).unwrap();
        let topo = s.cluster().machine(MachineId(0));
        let local: Vec<GpuId> = d.gpus.iter().map(|x| x.gpu).collect();
        assert!(topo.is_packed(&local), "got {local:?}");
        assert!((d.utility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_tie_consolidates_instead_of_cracking_open_an_idle_machine() {
        // Regression: a 2-GPU job joining a machine whose only tenant sits
        // on the *other* socket loses well under FRAG_TIE_EPS of utility,
        // yet the policy used to chase that sliver onto an empty machine —
        // strewing 1–2-GPU jobs across the cluster until no machine could
        // drain for a 4-GPU job (the fig10 seed-1001 waiting-time bug).
        let mut s = state(2);
        let mild = JobSpec::new(10, NnModel::GoogLeNet, BatchClass::Big, 2)
            .with_min_utility(0.5);
        s.place(mild, vec![g(0, 0), g(0, 1)], 1.0);
        let d = Policy::new(PolicyKind::TopoAware).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(
            d.gpus[0].machine,
            MachineId(0),
            "a near-tie must resolve toward the machine that stays packed"
        );
        assert!(d.utility > 0.99, "the tie really is near: {}", d.utility);
    }

    #[test]
    fn tie_break_never_trades_an_slo_pass_for_a_violation() {
        let far = Decision { gpus: vec![g(0, 0)], utility: 0.503 };
        let near = Decision { gpus: vec![g(1, 0)], utility: 0.498 };
        // Both within FRAG_TIE_EPS; the lower-fragmentation pick misses the
        // job's min_utility, so the SLO-satisfying candidate must win.
        let feasible = vec![(far, 0.5, 0), (near, 0.0, 1)];
        let winner = select_candidate(&feasible, 0.5).unwrap();
        assert_eq!(winner, 0);
        // With no SLO in reach, fragmentation decides.
        let winner = select_candidate(&feasible, 0.9).unwrap();
        assert_eq!(winner, 1);
    }

    #[test]
    fn topo_aware_prefers_an_idle_machine_over_a_contended_one() {
        let mut s = state(2);
        // Machine 0 hosts a noisy tiny-batch job.
        s.place(job(10, 2), vec![g(0, 0), g(0, 1)], 1.0);
        let d = Policy::new(PolicyKind::TopoAware).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus[0].machine, MachineId(1), "should dodge interference");
    }

    #[test]
    fn decide_returns_none_when_nothing_fits() {
        let mut s = state(1);
        s.place(job(10, 4), vec![g(0, 0), g(0, 1), g(0, 2), g(0, 3)], 1.0);
        for kind in PolicyKind::ALL {
            assert!(Policy::new(kind).decide(&s, &job(0, 1)).is_none(), "{kind}");
        }
    }

    #[test]
    fn fragmented_machine_yields_low_utility_for_topo_aware() {
        let mut s = state(1);
        s.place(job(10, 1), vec![g(0, 0)], 1.0);
        s.place(job(11, 1), vec![g(0, 2)], 1.0);
        let d = Policy::new(PolicyKind::TopoAwareP).decide(&s, &job(0, 2)).unwrap();
        assert!(d.utility < 0.5, "got {}", d.utility);
        // The policy itself only *proposes*; postponement is the
        // scheduler's call (Algorithm 1).
    }

    #[test]
    fn anti_collocated_job_spreads_across_machines() {
        let s = state(3);
        let mut j = job(0, 2);
        j.constraints = Constraints { single_node: false, anti_collocate: true };
        for kind in PolicyKind::ALL {
            let d = Policy::new(kind).decide(&s, &j).unwrap();
            let machines: Vec<MachineId> = d.gpus.iter().map(|x| x.machine).collect();
            assert_eq!(machines.len(), 2, "{kind}");
            assert_ne!(machines[0], machines[1], "{kind} must spread");
        }
    }

    #[test]
    fn anti_collocated_needs_enough_machines() {
        let s = state(1);
        let mut j = job(0, 2);
        j.constraints = Constraints { single_node: false, anti_collocate: true };
        assert!(Policy::new(PolicyKind::TopoAware).decide(&s, &j).is_none());
    }

    #[test]
    fn policy_display_names_match_the_paper() {
        assert_eq!(PolicyKind::Fcfs.to_string(), "FCFS");
        assert_eq!(PolicyKind::BestFit.to_string(), "BF");
        assert_eq!(PolicyKind::TopoAware.to_string(), "TOPO-AWARE");
        assert_eq!(PolicyKind::TopoAwareP.to_string(), "TOPO-AWARE-P");
        assert!(PolicyKind::TopoAwareP.postpones());
        assert!(!PolicyKind::TopoAware.postpones());
    }
}
