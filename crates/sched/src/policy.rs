//! The four placement policies of §5.2: `TOPO-AWARE`, `TOPO-AWARE-P`,
//! `FCFS` and Best-Fit (`BF`).
//!
//! Every policy answers the same question — *which GPUs should this job
//! get right now?* — and differs only in how it searches:
//!
//! * **FCFS** walks machines in id order and grabs the first free GPUs —
//!   the greedy baseline with `Θ(|E_A| + |V_P|)` cost;
//! * **Best-Fit** bin-packs: the feasible machine with the *fewest* free
//!   GPUs wins, and inside it GPUs come from the most-utilized sockets;
//! * **TOPO-AWARE(-P)** runs the Algorithm 2/3 DRB mapping on every
//!   feasible machine and keeps the highest-utility solution; the `-P`
//!   variant additionally *postpones* jobs whose best utility falls below
//!   their `min_utility` SLO.

use crate::eval::{
    evaluate_topo_candidates, evaluate_topo_classes, CandidateOutcome, EvalCache, EvalParams,
    ShardClassed,
};
use crate::oracle::{placement_components, placement_utility, StateOracle};
use crate::state::{on_machine, ClusterState};
use crate::trace::{CandidateEval, EvalOutcome};
use gts_job::{JobGraph, JobSpec};
use gts_map::UtilityWeights;
use gts_topo::{GlobalGpuId, GpuId, MachineId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which placement strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First come, first served over machines and GPU ids.
    Fcfs,
    /// Best-fit bin packing ("allocating first the GPUs from highly used
    /// domains").
    BestFit,
    /// Utility-guided DRB mapping; always places when feasible.
    TopoAware,
    /// Utility-guided DRB mapping; postpones placements whose utility is
    /// below the job's `min_utility`.
    TopoAwareP,
}

impl PolicyKind {
    /// All four evaluated policies, in the paper's comparison order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fcfs,
        PolicyKind::BestFit,
        PolicyKind::TopoAware,
        PolicyKind::TopoAwareP,
    ];

    /// Whether this policy may postpone low-utility placements.
    pub fn postpones(self) -> bool {
        matches!(self, PolicyKind::TopoAwareP)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::BestFit => "BF",
            PolicyKind::TopoAware => "TOPO-AWARE",
            PolicyKind::TopoAwareP => "TOPO-AWARE-P",
        };
        f.write_str(s)
    }
}

/// A configured policy: the strategy plus the Eq. 2 weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// The strategy.
    pub kind: PolicyKind,
    /// Utility weights (αcc, αb, αd).
    pub weights: UtilityWeights,
}

impl Policy {
    /// Policy with the paper's equal weights.
    pub fn new(kind: PolicyKind) -> Self {
        Self { kind, weights: UtilityWeights::default() }
    }
}

/// A concrete placement proposal.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// GPUs to grant, in task order.
    pub gpus: Vec<GlobalGpuId>,
    /// Normalized utility of the proposal.
    pub utility: f64,
}

impl Policy {
    /// Proposes a placement for `job`, or `None` when no feasible set of
    /// GPUs exists right now. Never mutates state. Evaluation-engine
    /// parameters come from the environment ([`EvalParams::from_env`]).
    pub fn decide(&self, state: &ClusterState, job: &JobSpec) -> Option<Decision> {
        self.decide_impl(state, job, None, EvalParams::from_env(), None)
    }

    /// [`Policy::decide`] with explicit evaluation-engine parameters —
    /// `EvalParams::sequential()` selects the reference path the engine is
    /// proven bit-identical to.
    pub fn decide_with(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
    ) -> Option<Decision> {
        self.decide_impl(state, job, None, params, None)
    }

    /// [`Policy::decide_with`] backed by a cross-event [`EvalCache`]: class
    /// evaluations already cached from earlier arrivals are replayed
    /// instead of re-running DRB. Pass the scheduler-owned cache here on
    /// every arrival; the sequential reference path ignores it.
    pub fn decide_with_cache(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        cache: Option<&EvalCache>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, None, params, cache.map(std::slice::from_ref))
    }

    /// [`Policy::decide_with_cache`] with one cache per shard: the
    /// two-level decision path (engaged when the state holds more than one
    /// shard) looks shard `s` up in `caches[s % caches.len()]`, keeping
    /// cache working sets shard-local. Cache keys are pure functions of
    /// state, so the cache-to-shard assignment never changes the decision.
    pub fn decide_with_caches(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, None, params, caches)
    }

    /// Like [`Policy::decide`], but records every candidate machine the
    /// search touched — with its Eq. 2 utility breakdown — into `evals`.
    /// The evaluations appear in search order; the winning candidate (if
    /// any) is marked [`EvalOutcome::Chosen`].
    pub fn decide_traced(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), EvalParams::from_env(), None)
    }

    /// [`Policy::decide_traced`] with explicit evaluation-engine parameters.
    pub fn decide_traced_with(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
        params: EvalParams,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), params, None)
    }

    /// [`Policy::decide_traced_with`] backed by a cross-event [`EvalCache`].
    pub fn decide_traced_with_cache(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
        params: EvalParams,
        cache: Option<&EvalCache>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), params, cache.map(std::slice::from_ref))
    }

    /// [`Policy::decide_with_caches`] recording per-candidate evaluations.
    /// Tracing always takes the flat reference path (per-candidate records
    /// need per-candidate components), so only `caches[0]` is consulted.
    pub fn decide_traced_with_caches(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        evals: &mut Vec<CandidateEval>,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        self.decide_impl(state, job, Some(evals), params, caches)
    }

    fn record_eval(
        &self,
        trace: &mut Option<&mut Vec<CandidateEval>>,
        state: &ClusterState,
        job: &JobSpec,
        machine: MachineId,
        gpus: &[GpuId],
        outcome: EvalOutcome,
    ) {
        if let Some(evals) = trace.as_deref_mut() {
            let (u_cc, u_b, u_d, utility) = if gpus.is_empty() {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                let c = placement_components(state, machine, job, gpus);
                (
                    c.u_cc,
                    c.u_interference,
                    c.u_domains,
                    gts_map::utility(c, self.weights),
                )
            };
            evals.push(CandidateEval {
                machine,
                gpus: gpus.to_vec(),
                u_cc,
                u_b,
                u_d,
                utility,
                frag_after: fragmentation_after(state, machine, job, gpus),
                outcome,
            });
        }
    }

    fn decide_impl(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        mut trace: Option<&mut Vec<CandidateEval>>,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        if job.constraints.anti_collocate && job.n_gpus > 1 {
            let decision = self.decide_anti_collocated(state, job);
            if let Some(d) = &decision {
                for g in &d.gpus {
                    self.record_eval(
                        &mut trace,
                        state,
                        job,
                        g.machine,
                        &[g.gpu],
                        EvalOutcome::Chosen,
                    );
                }
            }
            return decision;
        }
        // The two-level sharded path (DESIGN.md §10): admission over shard
        // aggregates, then shard-local class evaluation with a streaming
        // selection scan — no per-candidate clones or allocations. Engaged
        // only for the topo policies when the state is actually sharded and
        // nothing forces the flat reference (tracing needs per-candidate
        // records; sequential params *are* the reference).
        if matches!(self.kind, PolicyKind::TopoAware | PolicyKind::TopoAwareP)
            && trace.is_none()
            && !params.is_sequential()
            && state.shards().n_shards() > 1
        {
            return self.decide_topo_sharded(state, job, params, caches);
        }
        let n = job.n_gpus as usize;
        let candidates = state.machines_with_capacity(n);
        if candidates.is_empty() {
            // Multi-node-capable jobs may spill across machines — the
            // disaggregated-GPU extension (§7 future work). Spill search is
            // cluster-wide; the scheduler traces it as a `Spilled` event
            // rather than per-machine evaluations.
            if !job.constraints.single_node {
                return self.decide_spilled(state, job);
            }
            return None;
        }
        match self.kind {
            PolicyKind::Fcfs => {
                // First machine (in id order) whose pick also satisfies the
                // §4.3 bandwidth constraint.
                for machine in candidates {
                    let gpus: Vec<GpuId> =
                        state.free_gpus(machine).into_iter().take(n).collect();
                    if state.fits_bw(machine, &gpus, job.bw_demand_gbs) {
                        self.record_eval(
                            &mut trace,
                            state,
                            job,
                            machine,
                            &gpus,
                            EvalOutcome::Chosen,
                        );
                        return Some(self.seal(state, job, machine, gpus));
                    }
                    self.record_eval(
                        &mut trace,
                        state,
                        job,
                        machine,
                        &gpus,
                        EvalOutcome::RejectedBandwidth,
                    );
                }
                None
            }
            PolicyKind::BestFit => {
                let mut ordered = candidates;
                ordered.sort_by_key(|&m| (state.free_count(m), m));
                for machine in ordered {
                    let gpus = best_fit_gpus(state, machine, n);
                    if state.fits_bw(machine, &gpus, job.bw_demand_gbs) {
                        self.record_eval(
                            &mut trace,
                            state,
                            job,
                            machine,
                            &gpus,
                            EvalOutcome::Chosen,
                        );
                        return Some(self.seal(state, job, machine, gpus));
                    }
                    self.record_eval(
                        &mut trace,
                        state,
                        job,
                        machine,
                        &gpus,
                        EvalOutcome::RejectedBandwidth,
                    );
                }
                None
            }
            PolicyKind::TopoAware | PolicyKind::TopoAwareP => {
                let graph = JobGraph::from_spec(job);
                let outcomes = evaluate_topo_candidates(
                    state,
                    job,
                    &graph,
                    self.weights,
                    &candidates,
                    params,
                    caches.and_then(|cs| cs.first()),
                );
                let mut feasible: Vec<(Decision, f64, usize)> = Vec::new();
                for (&machine, outcome) in candidates.iter().zip(outcomes) {
                    match outcome {
                        CandidateOutcome::NoMapping => {
                            self.record_eval(
                                &mut trace,
                                state,
                                job,
                                machine,
                                &[],
                                EvalOutcome::NoMapping,
                            );
                        }
                        CandidateOutcome::RejectedBandwidth { gpus } => {
                            self.record_eval(
                                &mut trace,
                                state,
                                job,
                                machine,
                                &gpus,
                                EvalOutcome::RejectedBandwidth,
                            );
                        }
                        CandidateOutcome::Feasible { gpus, utility, frag_after } => {
                            self.record_eval(
                                &mut trace,
                                state,
                                job,
                                machine,
                                &gpus,
                                EvalOutcome::Outscored,
                            );
                            let eval_idx =
                                trace.as_deref().map(|t| t.len() - 1).unwrap_or(0);
                            let d = Decision { gpus: on_machine(machine, &gpus), utility };
                            feasible.push((d, frag_after, eval_idx));
                        }
                    }
                }
                let winner = select_candidate(&feasible, job.min_utility)?;
                let (d, _, winner_idx) = feasible.swap_remove(winner);
                if let Some(evals) = trace {
                    evals[winner_idx].outcome = EvalOutcome::Chosen;
                }
                Some(d)
            }
        }
    }

    /// The two-level sharded decision for `TOPO-AWARE(-P)`:
    ///
    /// 1. **Admission** — consult every shard's aggregates and drop shards
    ///    with no machine wide enough for the job (O(shards), counters on
    ///    the shard index record the skip rate);
    /// 2. **Shard-local placement** — enumerate candidates shard by shard
    ///    (contiguous ascending ranges, so the concatenation reproduces the
    ///    flat candidate order exactly), evaluate per-shard equivalence
    ///    classes against that shard's [`EvalCache`], and stream the
    ///    reference `select_candidate` scan over the by-reference class
    ///    outcomes — identical comparisons in identical order, but without
    ///    materializing a `Decision` per feasible candidate.
    ///
    /// Only the winning candidate's GPUs are cloned into the returned
    /// [`Decision`], which is bit-identical to the flat path's.
    fn decide_topo_sharded(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        params: EvalParams,
        caches: Option<&[EvalCache]>,
    ) -> Option<Decision> {
        let n = job.n_gpus as usize;
        let shards = state.shards();
        let graph = JobGraph::from_spec(job);

        // Level 1: global admission over the cached per-shard aggregates.
        let total = shards.n_shards();
        let admitted: Vec<usize> =
            (0..total).filter(|&s| shards.has_capacity(s, n)).collect();
        shards.note_admission(total as u64, (total - admitted.len()) as u64);

        // Level 2: shard-scoped candidates and class evaluation, memoized
        // across decisions. A shard whose `(epoch, version)` pair is
        // unchanged since the last decision for this job class replays its
        // stored candidates/outcomes/u_max in O(1) — only shards the
        // intervening events actually touched are re-walked. The per-shard
        // u_max folds compose under `f64::max` exactly as the reference's
        // flat candidate-order fold (max is associative; NEG_INFINITY is
        // its identity), so the selection floor comes out identical.
        let mut evaluated: Vec<std::sync::Arc<ShardClassed>> = Vec::new();
        let mut u_max = f64::NEG_INFINITY;
        for &s in &admitted {
            let cache = caches.map(|cs| &cs[s % cs.len()]);
            let memoized = cache.and_then(|c| {
                c.shard_classed_get(s, shards.epoch(), shards.version(s), job, self.weights)
            });
            let entry = match memoized {
                Some(entry) => {
                    #[cfg(debug_assertions)]
                    debug_assert_shard_memo_matches(state, job, &graph, self.weights, s, n, params, &entry);
                    entry
                }
                None => {
                    let candidates: Vec<MachineId> = shards
                        .machines(s)
                        .iter()
                        .copied()
                        .filter(|&m| state.free_count(m) >= n)
                        .collect();
                    let classed = evaluate_topo_classes(
                        state,
                        job,
                        &graph,
                        self.weights,
                        &candidates,
                        params,
                        cache,
                    );
                    let mut shard_u_max = f64::NEG_INFINITY;
                    for &c in &classed.class_of {
                        if let CandidateOutcome::Feasible { utility, .. } = classed.outcomes[c]
                        {
                            shard_u_max = shard_u_max.max(utility);
                        }
                    }
                    let entry = std::sync::Arc::new(ShardClassed {
                        candidates,
                        classed,
                        u_max: shard_u_max,
                    });
                    if let Some(c) = cache {
                        c.shard_classed_put(
                            s,
                            shards.epoch(),
                            shards.version(s),
                            job,
                            self.weights,
                            std::sync::Arc::clone(&entry),
                        );
                    }
                    entry
                }
            };
            if entry.candidates.is_empty() {
                continue;
            }
            u_max = u_max.max(entry.u_max);
            evaluated.push(entry);
        }
        if evaluated.is_empty() {
            // No machine anywhere can host the job single-node — same spill
            // fallthrough as the flat path's empty-candidates case.
            if !job.constraints.single_node {
                return self.decide_spilled(state, job);
            }
            return None;
        }

        // The reference select_candidate scan, streamed over class-outcome
        // references in flat candidate order.
        let (floor, gate) = selection_floor_gate(u_max, job.min_utility);
        let mut best: Option<(f64, f64, MachineId, &[GpuId])> = None;
        for entry in &evaluated {
            for (&machine, &c) in entry.candidates.iter().zip(&entry.classed.class_of) {
                let CandidateOutcome::Feasible { gpus, utility, frag_after } =
                    &entry.classed.outcomes[c]
                else {
                    continue;
                };
                if skip_candidate(*utility, floor, gate) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bu, bf, _, _)) => beats_winner(*frag_after, *utility, bf, bu),
                };
                if better {
                    best = Some((*utility, *frag_after, machine, gpus));
                }
            }
        }
        best.map(|(utility, _, machine, gpus)| Decision {
            gpus: on_machine(machine, gpus),
            utility,
        })
    }

    /// Spills a multi-node-capable job across machines when no single
    /// machine can host it.
    fn decide_spilled(&self, state: &ClusterState, job: &JobSpec) -> Option<Decision> {
        match self.kind {
            PolicyKind::TopoAware | PolicyKind::TopoAwareP => {
                crate::spill::decide_spill(state, job, self.weights)
            }
            PolicyKind::Fcfs => {
                let order: Vec<MachineId> = state.cluster().machines().collect();
                crate::spill::greedy_spill(state, job, &order, self.weights)
            }
            PolicyKind::BestFit => {
                let mut order: Vec<MachineId> = state.machines_with_capacity(1);
                order.sort_by_key(|&m| (state.free_count(m), m));
                crate::spill::greedy_spill(state, job, &order, self.weights)
            }
        }
    }

    /// Anti-collocated multi-GPU jobs take one GPU from each of `n`
    /// distinct machines. Greedy for the baselines; utility-ranked machine
    /// choice for the topology-aware policies (emptier machines first to
    /// limit interference).
    fn decide_anti_collocated(&self, state: &ClusterState, job: &JobSpec) -> Option<Decision> {
        let n = job.n_gpus as usize;
        let per_task_bw = job.bw_demand_gbs / n as f64;
        // One free-GPU query per machine: the first free GPU doubles as the
        // bandwidth probe and the eventual grant, and a machine whose
        // capacity vanished between queries simply drops out instead of
        // panicking on an empty free list.
        let mut hosts: Vec<(MachineId, GpuId)> = state
            .machines_with_capacity(1)
            .into_iter()
            .filter_map(|m| {
                let first = state.first_free_gpu(m)?;
                state.fits_bw(m, &[first], per_task_bw).then_some((m, first))
            })
            .collect();
        if hosts.len() < n {
            return None;
        }
        match self.kind {
            PolicyKind::Fcfs => {}
            PolicyKind::BestFit => {
                hosts.sort_by_key(|&(m, _)| (state.free_count(m), m));
            }
            PolicyKind::TopoAware | PolicyKind::TopoAwareP => {
                // Prefer machines where the task will feel the least
                // interference; score each host once, then sort.
                let mut scored: Vec<(f64, MachineId, GpuId)> = hosts
                    .into_iter()
                    .map(|(m, g)| {
                        (StateOracle::new(state, m, job).interference_one(&[g]), m, g)
                    })
                    .collect();
                // total_cmp, not partial_cmp().expect(): a NaN interference
                // score (however a profile produced it) must degrade to a
                // deterministic order, not panic mid-decision.
                scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                hosts = scored.into_iter().map(|(_, m, g)| (m, g)).collect();
            }
        }
        let gpus: Vec<GlobalGpuId> = hosts[..n]
            .iter()
            .map(|&(machine, gpu)| GlobalGpuId { machine, gpu })
            .collect();
        // Utility: communication crosses the network by construction, so
        // u_cc uses the cluster-level best (which equals the actual for a
        // forced spread — the job *asked* for it): score interference only.
        let mean_interference: f64 = gpus
            .iter()
            .map(|g| {
                StateOracle::new(state, g.machine, job).interference_one(&[g.gpu])
            })
            .sum::<f64>()
            / n as f64;
        let utility = self.weights.cc * 1.0
            + self.weights.b * mean_interference
            + self.weights.d * 1.0;
        Some(Decision { gpus, utility })
    }

    /// Packages a single-machine GPU pick into a [`Decision`] with its
    /// utility.
    fn seal(
        &self,
        state: &ClusterState,
        job: &JobSpec,
        machine: MachineId,
        gpus: Vec<GpuId>,
    ) -> Decision {
        let utility = placement_utility(state, machine, job, &gpus, self.weights);
        Decision { gpus: on_machine(machine, &gpus), utility }
    }
}

/// Utilities closer than this are indistinguishable: the Eq. 4 interference
/// model is only a few percent accurate against the Fig. 6 measurements, so
/// preferring a machine for a sub-percent utility edge is noise-chasing.
const FRAG_TIE_EPS: f64 = 0.01;

/// Debug check behind every shard-memo hit: rebuild the candidate list and
/// re-run the class evaluation against the live state, then assert the memo
/// replays exactly those bits — the shadow-recompute discipline
/// (DESIGN.md §9) applied to the cross-decision shard memo. A failure here
/// means some mutation path changed eval-relevant state without rebuilding
/// the touched machine's class key (and thereby bumping the shard version).
#[cfg(debug_assertions)]
#[allow(clippy::too_many_arguments)]
fn debug_assert_shard_memo_matches(
    state: &ClusterState,
    job: &JobSpec,
    graph: &JobGraph,
    weights: UtilityWeights,
    shard: usize,
    n: usize,
    params: EvalParams,
    entry: &ShardClassed,
) {
    let candidates: Vec<MachineId> = state
        .shards()
        .machines(shard)
        .iter()
        .copied()
        .filter(|&m| state.free_count(m) >= n)
        .collect();
    let fresh = evaluate_topo_classes(state, job, graph, weights, &candidates, params, None);
    assert_eq!(entry.candidates, candidates, "shard {shard} memo: stale candidate set");
    assert_eq!(
        entry.classed.class_of, fresh.class_of,
        "shard {shard} memo: stale class grouping"
    );
    assert_eq!(entry.classed.outcomes, fresh.outcomes, "shard {shard} memo: stale outcomes");
    let mut want_u_max = f64::NEG_INFINITY;
    for &c in &fresh.class_of {
        if let CandidateOutcome::Feasible { utility, .. } = fresh.outcomes[c] {
            want_u_max = want_u_max.max(utility);
        }
    }
    assert_eq!(
        entry.u_max.to_bits(),
        want_u_max.to_bits(),
        "shard {shard} memo: stale u_max fold"
    );
}

/// The selection thresholds derived from the best feasible utility: the
/// near-tie `floor` and the SLO `gate`. Only gate on the SLO when the best
/// candidate clears it; otherwise the job is getting a violation either way
/// and pure utility should rule.
fn selection_floor_gate(u_max: f64, min_utility: f64) -> (f64, f64) {
    let floor = u_max - FRAG_TIE_EPS;
    let gate = if u_max + 1e-9 >= min_utility {
        min_utility
    } else {
        f64::NEG_INFINITY
    };
    (floor, gate)
}

/// Whether a feasible candidate drops out of the selection scan: outside
/// the near-tie band of the best utility, or below the (active) SLO gate.
fn skip_candidate(utility: f64, floor: f64, gate: f64) -> bool {
    utility + 1e-12 < floor || utility + 1e-9 < gate
}

/// Whether a surviving candidate displaces the current winner: strictly
/// lower Eq. 5 fragmentation, or equal fragmentation with strictly higher
/// utility (both to the same epsilon the flat scan has always used).
fn beats_winner(frag: f64, utility: f64, best_frag: f64, best_utility: f64) -> bool {
    frag + 1e-12 < best_frag
        || ((frag - best_frag).abs() <= 1e-12 && utility > best_utility + 1e-12)
}

/// Picks the winning candidate among `(decision, frag_after, eval_idx)`
/// triples: highest utility wins, but candidates within [`FRAG_TIE_EPS`] of
/// the best are treated as a tie and resolved by the Eq. 5 fragmentation
/// each machine would be left with — topping off a busy machine beats
/// cracking open an idle one that a wide job will need. Tied candidates
/// below `min_utility` never displace one that satisfies the SLO.
///
/// The sharded fast path streams this exact scan (same predicates via
/// [`skip_candidate`]/[`beats_winner`], same order) over class-outcome
/// references — keep the two in lockstep.
fn select_candidate(feasible: &[(Decision, f64, usize)], min_utility: f64) -> Option<usize> {
    let u_max = feasible
        .iter()
        .map(|(d, _, _)| d.utility)
        .fold(f64::NEG_INFINITY, f64::max);
    let (floor, gate) = selection_floor_gate(u_max, min_utility);
    let mut winner: Option<usize> = None;
    for (i, (d, frag, _)) in feasible.iter().enumerate() {
        if skip_candidate(d.utility, floor, gate) {
            continue;
        }
        let better = match winner {
            None => true,
            Some(w) => {
                let (dw, fw, _) = &feasible[w];
                beats_winner(*frag, d.utility, *fw, dw.utility)
            }
        };
        if better {
            winner = Some(i);
        }
    }
    winner
}

/// Eq. 5 fragmentation `machine` would be left with after granting `gpus`.
fn fragmentation_after(
    state: &ClusterState,
    machine: MachineId,
    job: &JobSpec,
    gpus: &[GpuId],
) -> f64 {
    use gts_map::PlacementOracle as _;
    StateOracle::new(state, machine, job).fragmentation_after(gpus)
}

/// Best-Fit GPU selection within a machine: GPUs from the most-utilized
/// sockets first (fewest free GPUs), then by id.
fn best_fit_gpus(state: &ClusterState, machine: MachineId, n: usize) -> Vec<GpuId> {
    let topo = state.cluster().machine(machine);
    let occupancy = state.socket_occupancy(machine);
    let mut free = state.free_gpus(machine);
    free.sort_by_key(|&g| {
        let socket = topo.socket_of(g);
        (occupancy[socket.index()].0, socket, g)
    });
    free.truncate(n);
    free
}

impl StateOracle<'_> {
    /// Public-ish shim over `PlacementOracle::interference` for policy code.
    pub(crate) fn interference_one(&self, gpus: &[GpuId]) -> f64 {
        use gts_map::PlacementOracle as _;
        self.interference(gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, Constraints, NnModel};
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology};
    use std::sync::Arc;

    fn state(n_machines: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles)
    }

    fn job(id: u64, gpus: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus).with_min_utility(0.5)
    }

    fn g(m: u32, gpu: u32) -> GlobalGpuId {
        GlobalGpuId { machine: MachineId(m), gpu: GpuId(gpu) }
    }

    #[test]
    fn fcfs_takes_lowest_ids() {
        let s = state(2);
        let d = Policy::new(PolicyKind::Fcfs).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus, vec![g(0, 0), g(0, 1)]);
    }

    #[test]
    fn fcfs_is_topology_blind_under_fragmentation() {
        let mut s = state(1);
        // GPUs 1 and 2 free: one per socket.
        s.place(job(10, 1), vec![g(0, 0)], 1.0);
        s.place(job(11, 1), vec![g(0, 3)], 1.0);
        let d = Policy::new(PolicyKind::Fcfs).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus, vec![g(0, 1), g(0, 2)]);
        assert!(d.utility < 0.5, "cross-socket pick scores low: {}", d.utility);
    }

    #[test]
    fn best_fit_prefers_the_fuller_machine() {
        let mut s = state(2);
        s.place(job(10, 2), vec![g(1, 0), g(1, 1)], 1.0);
        // Machine 1 has 2 free, machine 0 has 4 free: BF picks machine 1.
        let d = Policy::new(PolicyKind::BestFit).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus[0].machine, MachineId(1));
    }

    #[test]
    fn best_fit_packs_into_the_fuller_socket() {
        let mut s = state(1);
        s.place(job(10, 1), vec![g(0, 0)], 1.0);
        // Socket 0 has 1 free, socket 1 has 2: BF takes GPU1 first.
        let d = Policy::new(PolicyKind::BestFit).decide(&s, &job(0, 1)).unwrap();
        assert_eq!(d.gpus, vec![g(0, 1)]);
    }

    #[test]
    fn topo_aware_packs_a_two_gpu_job() {
        let s = state(1);
        let d = Policy::new(PolicyKind::TopoAware).decide(&s, &job(0, 2)).unwrap();
        let topo = s.cluster().machine(MachineId(0));
        let local: Vec<GpuId> = d.gpus.iter().map(|x| x.gpu).collect();
        assert!(topo.is_packed(&local), "got {local:?}");
        assert!((d.utility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_tie_consolidates_instead_of_cracking_open_an_idle_machine() {
        // Regression: a 2-GPU job joining a machine whose only tenant sits
        // on the *other* socket loses well under FRAG_TIE_EPS of utility,
        // yet the policy used to chase that sliver onto an empty machine —
        // strewing 1–2-GPU jobs across the cluster until no machine could
        // drain for a 4-GPU job (the fig10 seed-1001 waiting-time bug).
        let mut s = state(2);
        let mild = JobSpec::new(10, NnModel::GoogLeNet, BatchClass::Big, 2)
            .with_min_utility(0.5);
        s.place(mild, vec![g(0, 0), g(0, 1)], 1.0);
        let d = Policy::new(PolicyKind::TopoAware).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(
            d.gpus[0].machine,
            MachineId(0),
            "a near-tie must resolve toward the machine that stays packed"
        );
        assert!(d.utility > 0.99, "the tie really is near: {}", d.utility);
    }

    #[test]
    fn tie_break_never_trades_an_slo_pass_for_a_violation() {
        let far = Decision { gpus: vec![g(0, 0)], utility: 0.503 };
        let near = Decision { gpus: vec![g(1, 0)], utility: 0.498 };
        // Both within FRAG_TIE_EPS; the lower-fragmentation pick misses the
        // job's min_utility, so the SLO-satisfying candidate must win.
        let feasible = vec![(far, 0.5, 0), (near, 0.0, 1)];
        let winner = select_candidate(&feasible, 0.5).unwrap();
        assert_eq!(winner, 0);
        // With no SLO in reach, fragmentation decides.
        let winner = select_candidate(&feasible, 0.9).unwrap();
        assert_eq!(winner, 1);
    }

    #[test]
    fn topo_aware_prefers_an_idle_machine_over_a_contended_one() {
        let mut s = state(2);
        // Machine 0 hosts a noisy tiny-batch job.
        s.place(job(10, 2), vec![g(0, 0), g(0, 1)], 1.0);
        let d = Policy::new(PolicyKind::TopoAware).decide(&s, &job(0, 2)).unwrap();
        assert_eq!(d.gpus[0].machine, MachineId(1), "should dodge interference");
    }

    #[test]
    fn decide_returns_none_when_nothing_fits() {
        let mut s = state(1);
        s.place(job(10, 4), vec![g(0, 0), g(0, 1), g(0, 2), g(0, 3)], 1.0);
        for kind in PolicyKind::ALL {
            assert!(Policy::new(kind).decide(&s, &job(0, 1)).is_none(), "{kind}");
        }
    }

    #[test]
    fn fragmented_machine_yields_low_utility_for_topo_aware() {
        let mut s = state(1);
        s.place(job(10, 1), vec![g(0, 0)], 1.0);
        s.place(job(11, 1), vec![g(0, 2)], 1.0);
        let d = Policy::new(PolicyKind::TopoAwareP).decide(&s, &job(0, 2)).unwrap();
        assert!(d.utility < 0.5, "got {}", d.utility);
        // The policy itself only *proposes*; postponement is the
        // scheduler's call (Algorithm 1).
    }

    #[test]
    fn anti_collocated_job_spreads_across_machines() {
        let s = state(3);
        let mut j = job(0, 2);
        j.constraints = Constraints { single_node: false, anti_collocate: true };
        for kind in PolicyKind::ALL {
            let d = Policy::new(kind).decide(&s, &j).unwrap();
            let machines: Vec<MachineId> = d.gpus.iter().map(|x| x.machine).collect();
            assert_eq!(machines.len(), 2, "{kind}");
            assert_ne!(machines[0], machines[1], "{kind} must spread");
        }
    }

    #[test]
    fn anti_collocated_needs_enough_machines() {
        let s = state(1);
        let mut j = job(0, 2);
        j.constraints = Constraints { single_node: false, anti_collocate: true };
        assert!(Policy::new(PolicyKind::TopoAware).decide(&s, &j).is_none());
    }

    #[test]
    fn policy_display_names_match_the_paper() {
        assert_eq!(PolicyKind::Fcfs.to_string(), "FCFS");
        assert_eq!(PolicyKind::BestFit.to_string(), "BF");
        assert_eq!(PolicyKind::TopoAware.to_string(), "TOPO-AWARE");
        assert_eq!(PolicyKind::TopoAwareP.to_string(), "TOPO-AWARE-P");
        assert!(PolicyKind::TopoAwareP.postpones());
        assert!(!PolicyKind::TopoAware.postpones());
    }
}
