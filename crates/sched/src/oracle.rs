//! The live-state [`PlacementOracle`] and the final placement utility.
//!
//! Bridges the pure mapping engine to the cluster: distances come from the
//! machine topology, interference predictions from the §4.2 profiles of the
//! jobs currently running on the candidate machine (Eq. 4), and
//! fragmentation from socket occupancy (Eq. 5).

use crate::state::{ClusterState, Corunner};
use gts_job::{JobProfile, JobSpec};
use gts_map::{PlacementOracle, UtilityComponents, UtilityWeights};
use gts_perf::domain_factor;
use gts_topo::{GpuId, MachineId, MachineTopology};
use std::sync::Arc;

/// Oracle for one candidate machine, carrying the job being placed.
///
/// Co-runners come from the machine's *interned* signature
/// ([`ClusterState::corunners`]) — `drb_map` probes `interference` many
/// times per candidate, and re-walking the running-job table (let alone
/// cloning profiles and GPU lists) per candidate dominated the old
/// per-arrival cost; now construction is one `Arc` clone. The signature is
/// held in *canonical* order (sorted by `(model, batch, local GPU mask)`
/// rather than job id) so that machines in the same evaluation-engine
/// equivalence class sum the Eq. 4 terms in exactly the same order and
/// produce bit-identical utilities regardless of which job ids happen to
/// run there. The same `Arc` backs the cross-event placement cache's keys
/// (DESIGN.md §9).
pub struct StateOracle<'a> {
    state: &'a ClusterState,
    machine: MachineId,
    topo: &'a MachineTopology,
    candidate: &'a JobProfile,
    corunners: Arc<Vec<Corunner>>,
}

impl<'a> StateOracle<'a> {
    /// Builds the oracle for placing `job` on `machine`.
    pub fn new(state: &'a ClusterState, machine: MachineId, job: &JobSpec) -> Self {
        let topo = state.cluster().machine(machine);
        let candidate = state.profiles().get(job.model, job.batch);
        let corunners = Arc::clone(state.corunners(machine));
        Self { state, machine, topo, candidate, corunners }
    }

    /// Eq. 4 over the candidate placement: mean of `solo/collocated` ratios
    /// of this job and every running job on the machine, with domain
    /// factors derived from actual GPU sets.
    fn eq4(&self, gpus: &[GpuId]) -> f64 {
        let corunners: Vec<(JobProfile, f64)> = self
            .corunners
            .iter()
            .map(|c| (c.profile, domain_factor(self.topo, gpus, &c.gpus)))
            .collect();
        self.candidate.eq4_interference(&corunners)
    }
}

impl PlacementOracle for StateOracle<'_> {
    fn distance(&self, a: GpuId, b: GpuId) -> f64 {
        self.topo.distance(a, b)
    }

    fn interference(&self, gpus: &[GpuId]) -> f64 {
        if gpus.is_empty() {
            return 1.0;
        }
        self.eq4(gpus)
    }

    fn fragmentation_after(&self, gpus: &[GpuId]) -> f64 {
        let mut occupancy = self.state.socket_occupancy(self.machine);
        for &g in gpus {
            let socket = self.topo.socket_of(g).index();
            let (free, _) = &mut occupancy[socket];
            if *free > 0 {
                *free -= 1;
            }
        }
        gts_map::eq5_fragmentation(&occupancy)
    }
}

/// The minimal Eq. 3 cost achievable for `n` GPUs on an *empty* machine of
/// this type — the normalization numerator of `u_cc`. Brute-forces the best
/// subset (machines have ≤ a dozen GPUs, and results are tiny to compute).
pub fn best_possible_cost(topo: &MachineTopology, n: usize) -> f64 {
    let gpus: Vec<GpuId> = topo.gpus().collect();
    assert!(n <= gpus.len(), "machine cannot host {n} GPUs");
    if n <= 1 {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    // Enumerate n-subsets with a simple index-combination walk.
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        let subset: Vec<GpuId> = idx.iter().map(|&i| gpus[i]).collect();
        best = best.min(topo.pairwise_cost(&subset));
        // Next combination.
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] != i + gpus.len() - n {
                idx[i] += 1;
                for j in (i + 1)..n {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The Eq. 2 component breakdown of a concrete placement (DESIGN.md §2) —
/// what the decision trace records per candidate machine.
pub fn placement_components(
    state: &ClusterState,
    machine: MachineId,
    job: &JobSpec,
    gpus: &[GpuId],
) -> UtilityComponents {
    let topo = state.cluster().machine(machine);
    let oracle = StateOracle::new(state, machine, job);

    let u_cc = if job.communicates() {
        let actual = topo.pairwise_cost(gpus);
        let best = best_possible_cost(topo, gpus.len());
        UtilityComponents::u_cc_from_costs(best, actual)
    } else {
        1.0
    };
    let u_interference = oracle.interference(gpus);
    let u_domains =
        UtilityComponents::u_domains_from_span(topo.sockets_spanned(gpus), topo.n_sockets());
    UtilityComponents { u_cc, u_interference, u_domains }
}

/// Final normalized utility of a concrete placement (DESIGN.md §2),
/// compared by `TOPO-AWARE-P` against the job's `min_utility`.
pub fn placement_utility(
    state: &ClusterState,
    machine: MachineId,
    job: &JobSpec,
    gpus: &[GpuId],
    weights: UtilityWeights,
) -> f64 {
    gts_map::utility(placement_components(state, machine, job, gpus), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};
    use crate::state::on_machine;
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology};
    use std::sync::Arc;

    fn state() -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, 1));
        ClusterState::new(cluster, profiles)
    }

    fn tiny_2gpu(id: u64) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5)
    }

    #[test]
    fn best_possible_cost_on_minsky() {
        let m = power8_minsky();
        assert_eq!(best_possible_cost(&m, 1), 0.0);
        assert_eq!(best_possible_cost(&m, 2), 1.0); // NVLink pair
        // 3 GPUs: best is a pair plus a cross-socket GPU: 1 + 22 + 22.
        assert_eq!(best_possible_cost(&m, 3), 45.0);
        // All 4: 2 pairs + 4 cross pairs.
        assert_eq!(best_possible_cost(&m, 4), 2.0 + 4.0 * 22.0);
    }

    #[test]
    fn packed_placement_on_idle_machine_scores_one() {
        let s = state();
        let job = tiny_2gpu(0);
        let u = placement_utility(
            &s,
            MachineId(0),
            &job,
            &[GpuId(0), GpuId(1)],
            UtilityWeights::default(),
        );
        assert!((u - 1.0).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn fig8_cross_socket_placement_falls_below_threshold() {
        let mut s = state();
        // Two single-GPU tiny jobs already running, one per socket — the
        // Fig. 8 moment when Job 3 faces one free GPU per socket.
        s.place(
            JobSpec::new(10, NnModel::AlexNet, BatchClass::Tiny, 1),
            on_machine(MachineId(0), &[GpuId(0)]),
            1.0,
        );
        s.place(
            JobSpec::new(11, NnModel::AlexNet, BatchClass::Tiny, 1),
            on_machine(MachineId(0), &[GpuId(2)]),
            1.0,
        );
        let job = tiny_2gpu(3);
        let u = placement_utility(
            &s,
            MachineId(0),
            &job,
            &[GpuId(1), GpuId(3)],
            UtilityWeights::default(),
        );
        assert!(u < 0.5, "cross-socket placement must violate 0.5, got {u}");
    }

    #[test]
    fn single_gpu_jobs_always_have_perfect_comm_utility() {
        let s = state();
        let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 1);
        let u = placement_utility(
            &s,
            MachineId(0),
            &job,
            &[GpuId(3)],
            UtilityWeights::default(),
        );
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interference_lowers_utility() {
        let mut s = state();
        let solo = placement_utility(
            &s,
            MachineId(0),
            &tiny_2gpu(0),
            &[GpuId(0), GpuId(1)],
            UtilityWeights::default(),
        );
        s.place(
            JobSpec::new(9, NnModel::AlexNet, BatchClass::Tiny, 1),
            on_machine(MachineId(0), &[GpuId(2)]),
            1.0,
        );
        let contended = placement_utility(
            &s,
            MachineId(0),
            &tiny_2gpu(0),
            &[GpuId(0), GpuId(1)],
            UtilityWeights::default(),
        );
        assert!(contended < solo);
    }

    #[test]
    fn oracle_fragmentation_counts_hypothetical_allocation() {
        let s = state();
        let job = tiny_2gpu(0);
        let oracle = StateOracle::new(&s, MachineId(0), &job);
        // Empty machine: fragmentation 1.0 before, 0.5 after taking socket 0.
        assert!((oracle.fragmentation_after(&[]) - 1.0).abs() < 1e-12);
        assert!((oracle.fragmentation_after(&[GpuId(0), GpuId(1)]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn googlenet_neighbor_barely_lowers_utility() {
        let mut s = state();
        s.place(
            JobSpec::new(9, NnModel::GoogLeNet, BatchClass::Big, 1),
            on_machine(MachineId(0), &[GpuId(2)]),
            1.0,
        );
        let u = placement_utility(
            &s,
            MachineId(0),
            &tiny_2gpu(0),
            &[GpuId(0), GpuId(1)],
            UtilityWeights::default(),
        );
        assert!(u > 0.95, "GoogLeNet big-batch causes almost no pressure: {u}");
    }
}
