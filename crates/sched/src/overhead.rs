//! Decision-latency metering (§5.5.3).
//!
//! The paper reports the mean time each algorithm spends "evaluating the
//! placement decision" (≈3 s for TOPO-AWARE(-P) vs ≈0.45 s for the greedy
//! baselines at 10 k jobs / 1 k machines). The scheduler wraps every
//! `decide()` call with a timer and aggregates here.

use std::time::Duration;

/// Aggregate statistics over placement-decision latencies.
#[derive(Debug, Clone, Default)]
pub struct DecisionStats {
    samples: Vec<Duration>,
}

impl DecisionStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision latency.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Number of decisions timed.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.total() / self.samples.len() as u32
    }

    /// Maximum latency (zero when empty).
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Total time spent deciding.
    pub fn total(&self) -> Duration {
        self.samples.iter().sum()
    }

    /// Mean latency in seconds, for report tables.
    pub fn mean_s(&self) -> f64 {
        self.mean().as_secs_f64()
    }

    /// 99th-percentile latency (zero when empty): the sample at the
    /// ceil(0.99·n)-th rank of the sorted latencies — the tail a mean
    /// hides when most retries replay in O(1) and a few pay a full
    /// decision.
    pub fn p99(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = (self.samples.len() * 99).div_ceil(100);
        sorted[rank.saturating_sub(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = DecisionStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.mean_s(), 0.0);
    }

    #[test]
    fn mean_and_max() {
        let mut s = DecisionStats::new();
        s.record(Duration::from_millis(10));
        s.record(Duration::from_millis(30));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Duration::from_millis(20));
        assert_eq!(s.max(), Duration::from_millis(30));
        assert_eq!(s.total(), Duration::from_millis(40));
    }

    #[test]
    fn p99_tracks_the_tail_not_the_mean() {
        assert_eq!(DecisionStats::new().p99(), Duration::ZERO);
        let mut s = DecisionStats::new();
        s.record(Duration::from_millis(5));
        assert_eq!(s.p99(), Duration::from_millis(5), "one sample is its own p99");
        // 99 fast samples + 1 slow: p99 lands on the 99th rank (fast),
        // 100 fast + 1 slower set lands on the slow tail at 199/200.
        let mut s = DecisionStats::new();
        for _ in 0..199 {
            s.record(Duration::from_micros(10));
        }
        s.record(Duration::from_millis(50));
        // rank = ceil(200*0.99) = 198 → still a fast sample.
        assert_eq!(s.p99(), Duration::from_micros(10));
        let mut s = DecisionStats::new();
        for _ in 0..99 {
            s.record(Duration::from_micros(10));
        }
        s.record(Duration::from_millis(50));
        // rank = ceil(100*0.99) = 99 → fast; add one more slow sample and
        // rank ceil(101*0.99) = 100 → the tail shows up.
        assert_eq!(s.p99(), Duration::from_micros(10));
        s.record(Duration::from_millis(50));
        assert_eq!(s.p99(), Duration::from_millis(50));
    }
}
