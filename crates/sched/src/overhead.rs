//! Decision-latency metering (§5.5.3).
//!
//! The paper reports the mean time each algorithm spends "evaluating the
//! placement decision" (≈3 s for TOPO-AWARE(-P) vs ≈0.45 s for the greedy
//! baselines at 10 k jobs / 1 k machines). The scheduler wraps every
//! `decide()` call with a timer and aggregates here.

use std::time::Duration;

/// Aggregate statistics over placement-decision latencies.
#[derive(Debug, Clone, Default)]
pub struct DecisionStats {
    samples: Vec<Duration>,
}

impl DecisionStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decision latency.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Number of decisions timed.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.total() / self.samples.len() as u32
    }

    /// Maximum latency (zero when empty).
    pub fn max(&self) -> Duration {
        self.samples.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Total time spent deciding.
    pub fn total(&self) -> Duration {
        self.samples.iter().sum()
    }

    /// Mean latency in seconds, for report tables.
    pub fn mean_s(&self) -> f64 {
        self.mean().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = DecisionStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.mean_s(), 0.0);
    }

    #[test]
    fn mean_and_max() {
        let mut s = DecisionStats::new();
        s.record(Duration::from_millis(10));
        s.record(Duration::from_millis(30));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Duration::from_millis(20));
        assert_eq!(s.max(), Duration::from_millis(30));
        assert_eq!(s.total(), Duration::from_millis(40));
    }
}
