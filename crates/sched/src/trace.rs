//! Placement decision tracing.
//!
//! Every Algorithm 1 decision leaves an auditable record: which machines
//! the policy looked at, the Eq. 2 utility breakdown (`u_cc`, `u_b`, `u_d`)
//! each candidate scored, and what the scheduler finally did. The stream is
//! opt-in (see [`crate::Scheduler::set_tracing`]) so steady-state runs and
//! benches pay nothing; the simulator surfaces it as `SimResult::trace` and
//! the `gts trace` subcommand pretty-prints it.

use gts_job::JobId;
use gts_topo::{GlobalGpuId, GpuId, MachineId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened to one candidate machine during a placement search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalOutcome {
    /// This candidate won the search and became the decision.
    Chosen,
    /// Feasible, but another machine scored a higher utility.
    Outscored,
    /// The §4.3 bandwidth constraint rejected the pick.
    RejectedBandwidth,
    /// The DRB mapper could not produce an assignment here.
    NoMapping,
}

impl fmt::Display for EvalOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvalOutcome::Chosen => "chosen",
            EvalOutcome::Outscored => "outscored",
            EvalOutcome::RejectedBandwidth => "rejected-bw",
            EvalOutcome::NoMapping => "no-mapping",
        };
        f.write_str(s)
    }
}

/// One candidate machine's evaluation: the GPU pick the policy would make
/// there and its Eq. 2 utility breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateEval {
    /// The machine evaluated.
    pub machine: MachineId,
    /// The machine-local GPUs the policy would grant there.
    pub gpus: Vec<GpuId>,
    /// Communication quality (`best_cost / actual_cost`), ∈ (0, 1].
    pub u_cc: f64,
    /// Interference quality (Eq. 4 mean of solo/collocated ratios), ∈ (0, 1].
    pub u_b: f64,
    /// Domain-spanning quality (Eq. 5 reading), ∈ [0, 1].
    pub u_d: f64,
    /// The weighted Eq. 2 total.
    pub utility: f64,
    /// Eq. 5 fragmentation the machine would be left with after this pick
    /// (0 = sockets topped off, 1 = everything free) — the consolidation
    /// tie-break the search applies between near-equal utilities.
    pub frag_after: f64,
    /// How the search disposed of this candidate.
    pub outcome: EvalOutcome,
}

/// One entry of the decision-trace stream, in event order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A job entered the waiting queue.
    Arrived {
        /// Event time, seconds.
        t_s: f64,
        /// The arriving job.
        job: JobId,
    },
    /// The policy searched candidate machines for a job. Present only for
    /// decisions where at least one machine passed the capacity filter.
    Evaluated {
        /// Event time, seconds.
        t_s: f64,
        /// The job being placed.
        job: JobId,
        /// Per-machine evaluations, in search order.
        candidates: Vec<CandidateEval>,
    },
    /// The job was granted GPUs.
    Placed {
        /// Event time, seconds.
        t_s: f64,
        /// The placed job.
        job: JobId,
        /// GPUs granted, in task order.
        gpus: Vec<GlobalGpuId>,
        /// Decision-time utility.
        utility: f64,
        /// True when the utility fell below the job's `min_utility`.
        slo_violated: bool,
    },
    /// TOPO-AWARE-P parked the job for low utility.
    Postponed {
        /// Event time, seconds.
        t_s: f64,
        /// The parked job.
        job: JobId,
        /// The rejected utility.
        utility: f64,
    },
    /// No feasible GPUs right now; the job keeps waiting.
    Waiting {
        /// Event time, seconds.
        t_s: f64,
        /// The waiting job.
        job: JobId,
    },
    /// A finished (or cancelled) job gave its GPUs back.
    Released {
        /// Event time, seconds.
        t_s: f64,
        /// The releasing job.
        job: JobId,
    },
    /// A multi-node-capable job was placed across machines because no
    /// single machine could host it.
    Spilled {
        /// Event time, seconds.
        t_s: f64,
        /// The spilled job.
        job: JobId,
        /// Machines the allocation spans.
        machines: Vec<MachineId>,
    },
    /// A machine went offline.
    MachineFailed {
        /// Event time, seconds.
        t_s: f64,
        /// The failed machine.
        machine: MachineId,
    },
    /// A failed machine rejoined the pool.
    MachineRecovered {
        /// Event time, seconds.
        t_s: f64,
        /// The recovered machine.
        machine: MachineId,
    },
    /// End-of-run counters of the cross-event placement cache
    /// ([`crate::EvalCache`]). Appended once by the simulator when tracing
    /// with the cache enabled; absent otherwise, so cache-off traces stay
    /// comparable event-for-event after stripping this variant.
    EvalCacheStats {
        /// Event time, seconds (the run's final clock).
        t_s: f64,
        /// Class evaluations answered from the cache.
        hits: u64,
        /// Class evaluations that ran the full DRB mapping.
        misses: u64,
        /// Entries displaced by LRU capacity pressure.
        evictions: u64,
    },
    /// End-of-run counters of the cross-event decision-replay path
    /// (`GTS_DECISION_REPLAY`, DESIGN.md §12). Appended once by the
    /// simulator when tracing with nonzero replay activity; absent
    /// otherwise, so replay-off traces stay comparable event-for-event
    /// after stripping this variant.
    DecisionReplayStats {
        /// Event time, seconds (the run's final clock).
        t_s: f64,
        /// Retries answered from a decision snapshot.
        hits: u64,
        /// Shards re-evaluated by partial replays.
        shards_reeval: u64,
        /// Snapshots present but unusable (guard mismatch).
        full_fallbacks: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp, seconds.
    pub fn t_s(&self) -> f64 {
        match self {
            TraceEvent::Arrived { t_s, .. }
            | TraceEvent::Evaluated { t_s, .. }
            | TraceEvent::Placed { t_s, .. }
            | TraceEvent::Postponed { t_s, .. }
            | TraceEvent::Waiting { t_s, .. }
            | TraceEvent::Released { t_s, .. }
            | TraceEvent::Spilled { t_s, .. }
            | TraceEvent::MachineFailed { t_s, .. }
            | TraceEvent::MachineRecovered { t_s, .. }
            | TraceEvent::EvalCacheStats { t_s, .. }
            | TraceEvent::DecisionReplayStats { t_s, .. } => *t_s,
        }
    }

    /// The job this event concerns, if any.
    pub fn job(&self) -> Option<JobId> {
        match self {
            TraceEvent::Arrived { job, .. }
            | TraceEvent::Evaluated { job, .. }
            | TraceEvent::Placed { job, .. }
            | TraceEvent::Postponed { job, .. }
            | TraceEvent::Waiting { job, .. }
            | TraceEvent::Released { job, .. }
            | TraceEvent::Spilled { job, .. } => Some(*job),
            TraceEvent::MachineFailed { .. }
            | TraceEvent::MachineRecovered { .. }
            | TraceEvent::EvalCacheStats { .. }
            | TraceEvent::DecisionReplayStats { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            TraceEvent::Arrived { t_s: 1.0, job: JobId(1) },
            TraceEvent::Evaluated { t_s: 2.0, job: JobId(1), candidates: vec![] },
            TraceEvent::Placed {
                t_s: 3.0,
                job: JobId(1),
                gpus: vec![],
                utility: 1.0,
                slo_violated: false,
            },
            TraceEvent::Postponed { t_s: 4.0, job: JobId(2), utility: 0.2 },
            TraceEvent::Waiting { t_s: 5.0, job: JobId(3) },
            TraceEvent::Released { t_s: 6.0, job: JobId(1) },
            TraceEvent::Spilled { t_s: 7.0, job: JobId(4), machines: vec![] },
            TraceEvent::MachineFailed { t_s: 8.0, machine: MachineId(0) },
            TraceEvent::MachineRecovered { t_s: 9.0, machine: MachineId(0) },
            TraceEvent::EvalCacheStats { t_s: 10.0, hits: 5, misses: 2, evictions: 0 },
            TraceEvent::DecisionReplayStats {
                t_s: 11.0,
                hits: 3,
                shards_reeval: 4,
                full_fallbacks: 1,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert!((e.t_s() - (i as f64 + 1.0)).abs() < 1e-12);
        }
        assert_eq!(events[0].job(), Some(JobId(1)));
        assert_eq!(events[7].job(), None);
        assert_eq!(events[9].job(), None);
        assert_eq!(events[10].job(), None);
    }

    #[test]
    fn trace_events_round_trip_through_json() {
        let e = TraceEvent::Placed {
            t_s: 12.5,
            job: JobId(7),
            gpus: vec![GlobalGpuId { machine: MachineId(1), gpu: GpuId(2) }],
            utility: 0.875,
            slo_violated: true,
        };
        let json = serde_json::to_string(&e).expect("serializes");
        let back: TraceEvent = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, e);
        let footer = TraceEvent::DecisionReplayStats {
            t_s: 99.0,
            hits: 10,
            shards_reeval: 20,
            full_fallbacks: 2,
        };
        let json = serde_json::to_string(&footer).expect("serializes");
        let back: TraceEvent = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, footer);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(EvalOutcome::Chosen.to_string(), "chosen");
        assert_eq!(EvalOutcome::RejectedBandwidth.to_string(), "rejected-bw");
    }
}
