//! Machine-partition sharding for datacenter-scale scheduling.
//!
//! At 4k–10k machines the flat Algorithm 1 arrival path stops scaling: even
//! with the equivalence-class engine and the cross-event cache, every
//! decision still walks the whole cluster to enumerate candidates and
//! allocates per-candidate bookkeeping. Sharding splits the cluster into
//! contiguous machine partitions (rack-aligned by default — rack locality
//! is what the §3 topology model already optimizes inside) and keeps cheap
//! per-shard aggregates so a decision becomes two levels:
//!
//! 1. **Global admission** — O(shards): consult the per-shard free-GPU
//!    histogram to skip every shard that cannot host the job at all;
//! 2. **Shard-local placement** — the existing class-grouped evaluation
//!    runs only over admitted shards, with a per-shard [`crate::EvalCache`].
//!
//! The aggregates are maintained O(1) per GPU on every
//! `place`/`release`/failure by [`crate::ClusterState`], re-derived from
//! scratch by `audit()` check 8 (and therefore shadow-recomputed after
//! every mutation in debug builds). Shards are always *contiguous,
//! ascending* machine-id ranges, so concatenating the shards' members
//! reproduces the flat ascending candidate order — the keystone of the
//! sharded-vs-flat bit-identity argument (DESIGN.md §10).

use gts_topo::{ClusterTopology, MachineId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// How to partition the cluster's machines into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// Rack-aligned: each contiguous run of equal rack ids becomes one
    /// shard (a single shard on flat fabrics — the pre-shard reference).
    Auto,
    /// `n` equal contiguous chunks (clamped to `1..=n_machines`). `1` is
    /// the single-shard reference path.
    Count(usize),
}

impl ShardSpec {
    /// Reads `GTS_SHARDS` (cached after the first read): unset, `auto` or
    /// `rack` select rack-aligned sharding; `0`/`off`/`false`/`1` select
    /// the single-shard reference; any other positive integer selects that
    /// many contiguous chunks.
    pub fn from_env() -> Self {
        static CACHED: OnceLock<ShardSpec> = OnceLock::new();
        *CACHED.get_or_init(|| match std::env::var("GTS_SHARDS") {
            Ok(v) => Self::parse(&v),
            Err(_) => ShardSpec::Auto,
        })
    }

    fn parse(raw: &str) -> Self {
        match raw.trim() {
            "" | "auto" | "rack" => ShardSpec::Auto,
            "0" | "off" | "false" | "1" => ShardSpec::Count(1),
            other => match other.parse::<usize>() {
                Ok(n) => ShardSpec::Count(n),
                Err(_) => ShardSpec::Auto,
            },
        }
    }
}

/// The incremental shard index: the machine→shard partition plus the
/// admission aggregates (per-shard free-GPU histogram and totals).
///
/// The partition is immutable for the life of the state; the aggregates
/// track every `place`/`release`/failure O(1) per touched GPU. Admission
/// counters are atomics so the read-only decision path can record how many
/// shards it skipped without `&mut`.
#[derive(Debug)]
pub struct ShardIndex {
    /// Machine index → shard index.
    shard_of: Vec<u32>,
    /// Per-shard member machines, ascending; shards are contiguous id
    /// ranges, so concatenating members reproduces `0..n_machines`.
    members: Vec<Vec<MachineId>>,
    /// `hist[s][k]` — machines of shard `s` with exactly `k` free GPUs
    /// (down machines count as 0 free). `k` ranges to the widest machine.
    hist: Vec<Vec<u32>>,
    /// `idle_hist[s][k]` — machines of shard `s` that are *idle* (every GPU
    /// free, i.e. free == width; down machines are never idle) and have `k`
    /// GPUs. Split out of `hist` because the utility bound treats idle
    /// machines differently: an idle host has no co-runners, so `u_b = 1`
    /// is achievable there, while an occupied machine in bucket `k` hosts
    /// at least one co-runner.
    idle_hist: Vec<Vec<u32>>,
    /// Installed GPU count per machine (static).
    width_of: Vec<u32>,
    /// Widest machine per shard (static).
    max_width: Vec<u32>,
    /// Distinct topology-class ids present in each shard, ascending
    /// (static — the partition and the machines never change).
    classes: Vec<Vec<u32>>,
    /// Per topology class: `(n_sockets, widest socket's GPU count)` for the
    /// pigeonhole `u_d` bound (static, indexed by class id).
    class_geom: Vec<(u32, u32)>,
    /// Free GPUs per shard (Σ k·hist\[s\]\[k\]).
    free_total: Vec<usize>,
    /// Free GPUs across the cluster.
    cluster_free: usize,
    /// Per-shard mutation counters: bumped whenever a member machine's
    /// class key is rebuilt. `(epoch, version)` uniquely identifies a
    /// shard's contents for the cross-decision shard memo
    /// ([`crate::EvalCache`]); an unchanged pair proves no member's
    /// eval-relevant state moved.
    versions: Vec<u64>,
    /// Sum of all per-shard version bumps — the O(1) "did *anything*
    /// eval-relevant move since this stamp?" probe behind the decision
    /// replay fast path (DESIGN.md §12). Equal totals under an equal epoch
    /// prove equal per-shard version vectors (versions only ever grow).
    total_version: u64,
    /// Process-unique id for this index instance, fresh on build *and* on
    /// clone, so two indices can never alias each other's version space
    /// even when their counters coincide.
    epoch: u64,
    /// Shards examined by admission passes.
    admission_checked: AtomicU64,
    /// Shards skipped by admission (no machine wide enough for the job).
    admission_skipped: AtomicU64,
    /// Memo-miss shards whose utility bound was consulted.
    bound_checked: AtomicU64,
    /// Memo-miss shards skipped because the bound proved them
    /// uncompetitive (branch-and-bound prune).
    bound_pruned: AtomicU64,
}

/// Allocates a process-unique epoch id (never reused, never 0).
fn next_epoch() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Clone for ShardIndex {
    fn clone(&self) -> Self {
        Self {
            shard_of: self.shard_of.clone(),
            members: self.members.clone(),
            hist: self.hist.clone(),
            idle_hist: self.idle_hist.clone(),
            width_of: self.width_of.clone(),
            max_width: self.max_width.clone(),
            classes: self.classes.clone(),
            class_geom: self.class_geom.clone(),
            free_total: self.free_total.clone(),
            cluster_free: self.cluster_free,
            versions: self.versions.clone(),
            total_version: self.total_version,
            // A clone diverges from its source from here on; a shared epoch
            // would let both advance the same (epoch, version) pairs with
            // different contents and poison each other's memo entries.
            epoch: next_epoch(),
            admission_checked: AtomicU64::new(self.admission_checked.load(Ordering::Relaxed)),
            admission_skipped: AtomicU64::new(self.admission_skipped.load(Ordering::Relaxed)),
            bound_checked: AtomicU64::new(self.bound_checked.load(Ordering::Relaxed)),
            bound_pruned: AtomicU64::new(self.bound_pruned.load(Ordering::Relaxed)),
        }
    }
}

impl ShardIndex {
    /// Builds the index for `cluster` under `spec`, reading each machine's
    /// current free-GPU count from `free_count`.
    pub fn build(
        cluster: &ClusterTopology,
        spec: ShardSpec,
        free_count: impl Fn(MachineId) -> usize,
    ) -> Self {
        let n = cluster.n_machines();
        let shard_of: Vec<u32> = match spec {
            ShardSpec::Auto => {
                // Contiguous runs of equal rack id become shards, so even a
                // cluster whose rack labels interleave still yields
                // contiguous (if more numerous) shards.
                let mut ids = Vec::with_capacity(n);
                let mut shard = 0u32;
                let mut prev_rack: Option<u32> = None;
                for m in cluster.machines() {
                    let rack = cluster.rack_of(m);
                    if prev_rack.is_some_and(|p| p != rack) {
                        shard += 1;
                    }
                    prev_rack = Some(rack);
                    ids.push(shard);
                }
                ids
            }
            ShardSpec::Count(c) => {
                let c = c.clamp(1, n.max(1));
                let chunk = n.div_ceil(c).max(1);
                (0..n).map(|i| (i / chunk) as u32).collect()
            }
        };
        let n_shards = shard_of.last().map_or(0, |&s| s as usize + 1);
        let width = cluster
            .machines()
            .map(|m| cluster.machine(m).n_gpus())
            .max()
            .unwrap_or(0);
        let mut members = vec![Vec::new(); n_shards];
        let mut hist = vec![vec![0u32; width + 1]; n_shards];
        let mut idle_hist = vec![vec![0u32; width + 1]; n_shards];
        let mut width_of = vec![0u32; n];
        let mut max_width = vec![0u32; n_shards];
        let mut classes = vec![Vec::new(); n_shards];
        let mut class_geom = vec![(0u32, 0u32); cluster.n_machine_classes()];
        let mut free_total = vec![0usize; n_shards];
        let mut cluster_free = 0usize;
        for m in cluster.machines() {
            let s = shard_of[m.index()] as usize;
            let free = free_count(m);
            let topo = cluster.machine(m);
            let w = topo.n_gpus();
            let class = cluster.machine_class(m);
            members[s].push(m);
            hist[s][free] += 1;
            if free == w {
                idle_hist[s][free] += 1;
            }
            width_of[m.index()] = w as u32;
            max_width[s] = max_width[s].max(w as u32);
            if !classes[s].contains(&class) {
                classes[s].push(class);
            }
            let max_socket = topo
                .sockets()
                .map(|sk| topo.gpus_in_socket(sk).len())
                .max()
                .unwrap_or(0);
            class_geom[class as usize] = (topo.n_sockets() as u32, max_socket as u32);
            free_total[s] += free;
            cluster_free += free;
        }
        for cs in &mut classes {
            cs.sort_unstable();
        }
        Self {
            shard_of,
            members,
            hist,
            idle_hist,
            width_of,
            max_width,
            classes,
            class_geom,
            free_total,
            cluster_free,
            versions: vec![0; n_shards],
            total_version: 0,
            epoch: next_epoch(),
            admission_checked: AtomicU64::new(0),
            admission_skipped: AtomicU64::new(0),
            bound_checked: AtomicU64::new(0),
            bound_pruned: AtomicU64::new(0),
        }
    }

    /// The index's process-unique epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard's mutation counter: advances every time a member
    /// machine's class key is rebuilt.
    pub fn version(&self, shard: usize) -> u64 {
        self.versions[shard]
    }

    /// The full per-shard version vector, indexed by shard.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Total version bumps across every shard. Under an unchanged epoch, an
    /// unchanged total proves the whole version vector is unchanged —
    /// versions are monotone, so the sum pins every summand.
    pub fn total_version(&self) -> u64 {
        self.total_version
    }

    /// Records that `machine`'s class key was rebuilt, invalidating every
    /// memoized per-shard evaluation of its shard.
    pub fn bump_version(&mut self, machine: MachineId) {
        self.versions[self.shard_of[machine.index()] as usize] += 1;
        self.total_version += 1;
    }

    /// Number of shards (0 only on an empty cluster).
    pub fn n_shards(&self) -> usize {
        self.members.len()
    }

    /// The shard holding `machine`.
    pub fn shard_of(&self, machine: MachineId) -> usize {
        self.shard_of[machine.index()] as usize
    }

    /// The shard's member machines, ascending id.
    pub fn machines(&self, shard: usize) -> &[MachineId] {
        &self.members[shard]
    }

    /// Free GPUs in one shard.
    pub fn free_in(&self, shard: usize) -> usize {
        self.free_total[shard]
    }

    /// Free GPUs across the whole cluster — the O(1) replacement for the
    /// flat per-machine scan.
    pub fn cluster_free(&self) -> usize {
        self.cluster_free
    }

    /// The admission predicate: does `shard` hold at least one machine with
    /// `n` or more free GPUs? O(max machine width) suffix scan of the
    /// histogram — independent of shard size.
    pub fn has_capacity(&self, shard: usize, n: usize) -> bool {
        let h = &self.hist[shard];
        if n >= h.len() {
            return false;
        }
        h[n..].iter().any(|&c| c > 0)
    }

    /// Widest free-GPU count any machine of `shard` offers right now.
    pub fn max_free(&self, shard: usize) -> usize {
        self.hist[shard]
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
    }

    /// O(1) aggregate maintenance: `machine` went from `old_free` to
    /// `new_free` free GPUs.
    pub fn update(&mut self, machine: MachineId, old_free: usize, new_free: usize) {
        if old_free == new_free {
            return;
        }
        let s = self.shard_of[machine.index()] as usize;
        debug_assert!(self.hist[s][old_free] > 0, "{machine} histogram underflow");
        self.hist[s][old_free] -= 1;
        self.hist[s][new_free] += 1;
        let w = self.width_of[machine.index()] as usize;
        if old_free == w {
            debug_assert!(self.idle_hist[s][w] > 0, "{machine} idle underflow");
            self.idle_hist[s][w] -= 1;
        }
        if new_free == w {
            self.idle_hist[s][w] += 1;
        }
        self.free_total[s] = self.free_total[s] + new_free - old_free;
        self.cluster_free = self.cluster_free + new_free - old_free;
    }

    /// The shard's free-GPU histogram (`[k]` = machines with `k` free).
    pub fn hist(&self, shard: usize) -> &[u32] {
        &self.hist[shard]
    }

    /// The shard's idle-machine histogram (`[k]` = fully-idle machines with
    /// `k` installed GPUs).
    pub fn idle_hist(&self, shard: usize) -> &[u32] {
        &self.idle_hist[shard]
    }

    /// Installed GPUs on `machine`.
    pub fn width_of(&self, machine: MachineId) -> usize {
        self.width_of[machine.index()] as usize
    }

    /// Widest machine in `shard` (installed GPUs, not current free count).
    pub fn max_width(&self, shard: usize) -> usize {
        self.max_width[shard] as usize
    }

    /// Distinct topology-class ids present in `shard`, ascending.
    pub fn classes_in(&self, shard: usize) -> &[u32] {
        &self.classes[shard]
    }

    /// Per topology class `(n_sockets, widest socket's GPU count)`.
    pub fn class_geom(&self) -> &[(u32, u32)] {
        &self.class_geom
    }

    /// Records one bound pass over memo-miss shards: `checked` bounds
    /// consulted, `pruned` shards skipped on their strength.
    pub fn note_bound(&self, checked: u64, pruned: u64) {
        self.bound_checked.fetch_add(checked, Ordering::Relaxed);
        self.bound_pruned.fetch_add(pruned, Ordering::Relaxed);
    }

    /// Total `(checked, pruned)` bound counters so far.
    pub fn bound_stats(&self) -> (u64, u64) {
        (
            self.bound_checked.load(Ordering::Relaxed),
            self.bound_pruned.load(Ordering::Relaxed),
        )
    }

    /// Records one admission pass: `checked` shards consulted, `skipped` of
    /// them rejected outright by the aggregates.
    pub fn note_admission(&self, checked: u64, skipped: u64) {
        self.admission_checked.fetch_add(checked, Ordering::Relaxed);
        self.admission_skipped.fetch_add(skipped, Ordering::Relaxed);
    }

    /// Total `(checked, skipped)` admission counters so far.
    pub fn admission_stats(&self) -> (u64, u64) {
        (
            self.admission_checked.load(Ordering::Relaxed),
            self.admission_skipped.load(Ordering::Relaxed),
        )
    }

    /// Re-derives every aggregate (and the partition's structural
    /// invariants) from scratch and compares — `audit()` check 8. Any drift
    /// means a mutation path forgot to call [`ShardIndex::update`].
    pub fn verify(
        &self,
        cluster: &ClusterTopology,
        free_count: impl Fn(MachineId) -> usize,
    ) -> Result<(), String> {
        if self.shard_of.len() != cluster.n_machines() {
            return Err(format!(
                "shard index covers {} machines, cluster has {}",
                self.shard_of.len(),
                cluster.n_machines()
            ));
        }
        // Structural: members agree with shard_of, and concatenating the
        // shards walks machine ids in ascending order (contiguity).
        let mut walked = 0usize;
        for (s, ms) in self.members.iter().enumerate() {
            for &m in ms {
                if m.index() != walked {
                    return Err(format!(
                        "shard {s} member {m} breaks the contiguous ascending order \
                         (expected machine{walked})"
                    ));
                }
                if self.shard_of[m.index()] as usize != s {
                    return Err(format!(
                        "{m} listed in shard {s} but shard_of says {}",
                        self.shard_of[m.index()]
                    ));
                }
                walked += 1;
            }
        }
        if walked != cluster.n_machines() {
            return Err(format!(
                "shard members cover {walked} machines of {}",
                cluster.n_machines()
            ));
        }
        // Aggregates: recompute the histograms and totals from the ground
        // truth free counts.
        let mut want_hist: Vec<Vec<u32>> =
            self.hist.iter().map(|h| vec![0u32; h.len()]).collect();
        let mut want_free = vec![0usize; self.members.len()];
        let mut want_cluster = 0usize;
        for m in cluster.machines() {
            let s = self.shard_of[m.index()] as usize;
            let free = free_count(m);
            if free >= want_hist[s].len() {
                return Err(format!(
                    "{m} reports {free} free GPUs, histogram caps at {}",
                    want_hist[s].len() - 1
                ));
            }
            want_hist[s][free] += 1;
            want_free[s] += free;
            want_cluster += free;
        }
        for s in 0..self.members.len() {
            if self.hist[s] != want_hist[s] {
                return Err(format!(
                    "shard {s} histogram {:?} disagrees with ground truth {:?}",
                    self.hist[s], want_hist[s]
                ));
            }
            if self.free_total[s] != want_free[s] {
                return Err(format!(
                    "shard {s} free total {} disagrees with ground truth {}",
                    self.free_total[s], want_free[s]
                ));
            }
        }
        if self.cluster_free != want_cluster {
            return Err(format!(
                "cluster free total {} disagrees with ground truth {want_cluster}",
                self.cluster_free
            ));
        }
        Ok(())
    }

    /// Re-derives every input of the per-shard utility bound from scratch
    /// and compares — `audit()` check 9. Any drift means a mutation path
    /// maintained `hist` but not the bound state (or vice versa).
    pub fn verify_bound_state(
        &self,
        cluster: &ClusterTopology,
        free_count: impl Fn(MachineId) -> usize,
    ) -> Result<(), String> {
        let n_shards = self.members.len();
        let buckets = self.hist.first().map_or(1, Vec::len);
        let mut want_idle = vec![vec![0u32; buckets]; n_shards];
        let mut want_max_width = vec![0u32; n_shards];
        let mut want_classes: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut want_geom = vec![(0u32, 0u32); cluster.n_machine_classes()];
        for m in cluster.machines() {
            let s = self.shard_of[m.index()] as usize;
            let topo = cluster.machine(m);
            let w = topo.n_gpus();
            if self.width_of[m.index()] as usize != w {
                return Err(format!(
                    "{m} width {} disagrees with topology {w}",
                    self.width_of[m.index()]
                ));
            }
            if free_count(m) == w {
                want_idle[s][w] += 1;
            }
            want_max_width[s] = want_max_width[s].max(w as u32);
            let class = cluster.machine_class(m);
            if !want_classes[s].contains(&class) {
                want_classes[s].push(class);
            }
            let max_socket = topo
                .sockets()
                .map(|sk| topo.gpus_in_socket(sk).len())
                .max()
                .unwrap_or(0);
            want_geom[class as usize] = (topo.n_sockets() as u32, max_socket as u32);
        }
        for cs in &mut want_classes {
            cs.sort_unstable();
        }
        for s in 0..n_shards {
            if self.idle_hist[s] != want_idle[s] {
                return Err(format!(
                    "shard {s} idle histogram {:?} disagrees with ground truth {:?}",
                    self.idle_hist[s], want_idle[s]
                ));
            }
            if self.max_width[s] != want_max_width[s] {
                return Err(format!(
                    "shard {s} max width {} disagrees with ground truth {}",
                    self.max_width[s], want_max_width[s]
                ));
            }
            if self.classes[s] != want_classes[s] {
                return Err(format!(
                    "shard {s} class set {:?} disagrees with ground truth {:?}",
                    self.classes[s], want_classes[s]
                ));
            }
        }
        if self.class_geom != want_geom {
            return Err(format!(
                "class geometry {:?} disagrees with ground truth {:?}",
                self.class_geom, want_geom
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::power8_minsky;

    #[test]
    fn spec_parsing_covers_the_knob_grammar() {
        assert_eq!(ShardSpec::parse(""), ShardSpec::Auto);
        assert_eq!(ShardSpec::parse("auto"), ShardSpec::Auto);
        assert_eq!(ShardSpec::parse("rack"), ShardSpec::Auto);
        assert_eq!(ShardSpec::parse("0"), ShardSpec::Count(1));
        assert_eq!(ShardSpec::parse("off"), ShardSpec::Count(1));
        assert_eq!(ShardSpec::parse("false"), ShardSpec::Count(1));
        assert_eq!(ShardSpec::parse("1"), ShardSpec::Count(1));
        assert_eq!(ShardSpec::parse(" 4 "), ShardSpec::Count(4));
        assert_eq!(ShardSpec::parse("banana"), ShardSpec::Auto);
    }

    #[test]
    fn auto_partition_follows_racks() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 3, 2);
        let idx = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        assert_eq!(idx.n_shards(), 3);
        assert_eq!(idx.machines(1), &[MachineId(2), MachineId(3)]);
        assert_eq!(idx.shard_of(MachineId(5)), 2);
        assert_eq!(idx.free_in(0), 8);
        assert_eq!(idx.cluster_free(), 24);
        idx.verify(&c, |_| 4).unwrap();
    }

    #[test]
    fn flat_fabric_is_one_shard_and_counts_chunk_contiguously() {
        let c = ClusterTopology::homogeneous(power8_minsky(), 6);
        let auto = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        assert_eq!(auto.n_shards(), 1);
        let chunked = ShardIndex::build(&c, ShardSpec::Count(4), |_| 4);
        assert_eq!(chunked.n_shards(), 3, "6 machines in ceil-sized chunks of 2");
        assert_eq!(chunked.machines(0), &[MachineId(0), MachineId(1)]);
        chunked.verify(&c, |_| 4).unwrap();
        let clamped = ShardIndex::build(&c, ShardSpec::Count(100), |_| 4);
        assert_eq!(clamped.n_shards(), 6);
    }

    #[test]
    fn updates_track_capacity_and_verify_catches_drift() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 2, 2);
        let mut idx = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        assert!(idx.has_capacity(0, 4));
        assert_eq!(idx.max_free(0), 4);
        idx.update(MachineId(0), 4, 1);
        idx.update(MachineId(1), 4, 2);
        assert!(!idx.has_capacity(0, 3), "widest machine in shard 0 offers 2");
        assert!(idx.has_capacity(0, 2));
        assert_eq!(idx.max_free(0), 2);
        assert_eq!(idx.free_in(0), 3);
        assert_eq!(idx.cluster_free(), 11);
        assert!(idx.has_capacity(1, 4), "shard 1 untouched");
        assert!(!idx.has_capacity(1, 5), "wider than any machine");
        let counts = [1usize, 2, 4, 4];
        idx.verify(&c, |m| counts[m.index()]).unwrap();
        let err = idx.verify(&c, |_| 4).unwrap_err();
        assert!(err.contains("histogram"), "got: {err}");
    }

    #[test]
    fn versions_advance_per_shard_and_clones_change_epoch() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 2, 2);
        let mut idx = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        assert_eq!((idx.version(0), idx.version(1)), (0, 0));
        idx.bump_version(MachineId(1));
        idx.bump_version(MachineId(1));
        idx.bump_version(MachineId(2));
        assert_eq!((idx.version(0), idx.version(1)), (2, 1));
        assert_eq!(idx.versions(), &[2, 1]);
        assert_eq!(idx.total_version(), 3, "total sums the per-shard bumps");
        let cloned = idx.clone();
        assert_eq!(cloned.version(0), 2, "counters carry over");
        assert_eq!(cloned.total_version(), 3, "the total carries over too");
        assert_ne!(cloned.epoch(), idx.epoch(), "epochs never alias");
        let rebuilt = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        assert_ne!(rebuilt.epoch(), idx.epoch());
    }

    #[test]
    fn idle_histogram_tracks_full_width_transitions() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 2, 2);
        let mut idx = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        assert_eq!(idx.idle_hist(0), &[0, 0, 0, 0, 2], "all machines start idle");
        assert_eq!(idx.max_width(0), 4);
        assert_eq!(idx.width_of(MachineId(3)), 4);
        // Partial occupancy leaves the idle bucket, full release re-enters
        // it, and an intermediate step never touches it.
        idx.update(MachineId(0), 4, 2);
        assert_eq!(idx.idle_hist(0), &[0, 0, 0, 0, 1]);
        idx.update(MachineId(0), 2, 1);
        assert_eq!(idx.idle_hist(0), &[0, 0, 0, 0, 1]);
        idx.update(MachineId(0), 1, 4);
        assert_eq!(idx.idle_hist(0), &[0, 0, 0, 0, 2]);
        // A failure (idle machine → 0 free) drains the idle bucket without
        // a matching 0-width entry: down machines are never idle.
        idx.update(MachineId(1), 4, 0);
        assert_eq!(idx.idle_hist(0), &[0, 0, 0, 0, 1]);
        let counts = [4usize, 0, 4, 4];
        idx.verify(&c, |m| counts[m.index()]).unwrap();
        idx.verify_bound_state(&c, |m| counts[m.index()]).unwrap();
        // Recovery restores the idle bucket.
        idx.update(MachineId(1), 0, 4);
        idx.verify_bound_state(&c, |_| 4).unwrap();
    }

    #[test]
    fn bound_state_verify_catches_idle_drift() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 2, 2);
        let idx = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        // Ground truth says machine0 is occupied, but the index still lists
        // it idle: check 9 must object even though plain `hist` disagrees
        // too — drift detection must not depend on check 8 running first.
        let counts = [2usize, 4, 4, 4];
        let err = idx.verify_bound_state(&c, |m| counts[m.index()]).unwrap_err();
        assert!(err.contains("idle histogram"), "got: {err}");
    }

    #[test]
    fn class_sets_and_geometry_are_derived_at_build() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 3, 2);
        let idx = ShardIndex::build(&c, ShardSpec::Auto, |_| 4);
        for s in 0..idx.n_shards() {
            assert_eq!(idx.classes_in(s), &[0], "homogeneous cluster: one class");
        }
        // power8_minsky: 4 GPUs over 2 sockets, 2 per socket.
        assert_eq!(idx.class_geom(), &[(2, 2)]);
        idx.verify_bound_state(&c, |_| 4).unwrap();
    }

    #[test]
    fn bound_counters_accumulate_through_shared_refs() {
        let c = ClusterTopology::homogeneous(power8_minsky(), 2);
        let idx = ShardIndex::build(&c, ShardSpec::Count(2), |_| 4);
        idx.note_bound(3, 2);
        idx.note_bound(1, 0);
        assert_eq!(idx.bound_stats(), (4, 2));
        let cloned = idx.clone();
        assert_eq!(cloned.bound_stats(), (4, 2));
    }

    #[test]
    fn admission_counters_accumulate_through_shared_refs() {
        let c = ClusterTopology::homogeneous(power8_minsky(), 2);
        let idx = ShardIndex::build(&c, ShardSpec::Count(2), |_| 4);
        idx.note_admission(2, 1);
        idx.note_admission(2, 0);
        assert_eq!(idx.admission_stats(), (4, 1));
        let cloned = idx.clone();
        assert_eq!(cloned.admission_stats(), (4, 1));
    }
}
