//! # gts-sched — the topology-aware scheduler (§4.4, §5.2)
//!
//! Implements Algorithm 1 around the `gts-map` mapping engine:
//!
//! * [`state`] — live cluster allocation state (free GPUs per machine,
//!   running jobs and their §4.2 profiles);
//! * [`oracle`] — the [`gts_map::PlacementOracle`] backed by that state:
//!   Eq. 4 interference prediction and Eq. 5 fragmentation;
//! * [`eval`] — the memoized + parallel candidate-evaluation engine behind
//!   `TOPO-AWARE(-P)`: equivalence-class deduplication, a scoped worker
//!   pool, and the `GTS_EVAL_THREADS` knob;
//! * [`policy`] — the four evaluated policies: `TOPO-AWARE`,
//!   `TOPO-AWARE-P` (postponing), `FCFS` and Best-Fit (`BF`);
//! * [`shard`] — machine-partition sharding for datacenter scale: the
//!   rack-aligned (or `GTS_SHARDS`-chosen) partition plus per-shard
//!   admission aggregates behind the two-level decision path;
//! * [`scheduler`] — the Algorithm 1 loop: arrival-ordered queue, host
//!   filtering, placement or postponement, SLO accounting;
//! * [`overhead`] — decision-latency metering for the §5.5.3 analysis;
//! * [`trace`] — opt-in decision-trace events: per-candidate Eq. 2 utility
//!   breakdowns and every place/postpone/release/failure the loop makes.

#![warn(missing_docs)]

pub mod bound;
pub mod enforcement;
pub mod eval;
pub mod oracle;
pub mod overhead;
pub mod policy;
pub mod scheduler;
pub mod shard;
pub mod spill;
pub mod state;
pub mod trace;

pub use bound::ShardBoundCtx;
pub use enforcement::{launch_plan, LaunchPlan};
pub use eval::{DecisionReplayStats, EvalCache, EvalCacheStats, EvalParams};
pub use oracle::StateOracle;
pub use overhead::DecisionStats;
pub use policy::{Policy, PolicyKind};
pub use scheduler::{CancelOutcome, PlacementOutcome, Scheduler, SchedulerConfig};
pub use shard::{ShardIndex, ShardSpec};
pub use spill::{decide_spill, ClusterOracle};
pub use state::{Allocation, ClusterState};
pub use trace::{CandidateEval, EvalOutcome, TraceEvent};
