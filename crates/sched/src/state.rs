//! Live cluster allocation state.
//!
//! Tracks which GPUs are free on every machine and which jobs hold the
//! rest, together with the §4.2 profiles the interference predictor needs.
//! Allocations are cluster-wide GPU sets ([`GlobalGpuId`]) so single-node
//! jobs and anti-collocated (one-task-per-machine) jobs share one code
//! path. All placement policies operate on this state; the simulator and
//! the prototype mutate it through `place`/`release`.

use crate::shard::{ShardIndex, ShardSpec};
use gts_job::{BatchClass, JobId, JobProfile, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_topo::{ClusterTopology, GlobalGpuId, GpuId, MachineId, SocketId};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A job's GPU allocation (possibly spanning machines).
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The placed job.
    pub spec: JobSpec,
    /// GPUs granted, in task order.
    pub gpus: Vec<GlobalGpuId>,
    /// Utility the placement scored at decision time.
    pub utility: f64,
}

impl Allocation {
    /// The job's profile, looked up from a library.
    pub fn profile<'a>(&self, lib: &'a ProfileLibrary) -> &'a JobProfile {
        lib.get(self.spec.model, self.spec.batch)
    }

    /// The GPUs this allocation holds on one machine.
    pub fn gpus_on(&self, machine: MachineId) -> Vec<GpuId> {
        self.gpus
            .iter()
            .filter(|g| g.machine == machine)
            .map(|g| g.gpu)
            .collect()
    }

    /// Machines touched by this allocation, deduplicated and ascending.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut ms: Vec<MachineId> = self.gpus.iter().map(|g| g.machine).collect();
        ms.sort_unstable();
        ms.dedup();
        ms
    }

    /// True when the allocation sits entirely on one machine.
    pub fn is_single_node(&self) -> bool {
        self.machines().len() <= 1
    }
}

/// Default per-socket host memory bandwidth, GB/s (Power8 "Minsky": 115 GB/s
/// sustained per socket, §3.1's 256 GB DDR4 configuration).
pub const DEFAULT_SOCKET_BW_GBS: f64 = 115.0;

/// One running job's contribution to a machine's co-runner signature: the
/// §4.2 profile plus the local GPU set it holds there. Entries are interned
/// per machine in canonical `(model, batch, mask)` order and shared (behind
/// one `Arc`) between the evaluation engine's class keys and every
/// [`crate::StateOracle`] Eq. 4 sum, so neither clones profiles or GPU
/// lists per candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Corunner {
    /// Profile of the running job (model + batch resolved once at
    /// placement time).
    pub profile: JobProfile,
    /// Local GPUs held on this machine, as a bitmask.
    pub mask: u128,
    /// Local GPUs, ascending (derived from `mask`).
    pub gpus: Vec<GpuId>,
}

impl Corunner {
    /// The canonical sort key: job ids never enter, so two machines running
    /// the same workload classes on the same GPUs are indistinguishable.
    fn sort_key(&self) -> (NnModel, BatchClass, u128) {
        (self.profile.model, self.profile.batch, self.mask)
    }
}

/// Payload of a machine's equivalence-class key — every input the
/// per-candidate placement evaluation depends on, with floats captured by
/// bit pattern so `Eq`/`Hash` are exact. A pure function of machine state:
/// the machine *id* and job ids never enter, so equal keys imply
/// bit-identical evaluation results (DESIGN.md §7, §9).
#[derive(Debug)]
pub struct KeyInner {
    /// Topology class ([`gts_topo::ClusterTopology::machine_class`]).
    pub topo_class: u32,
    /// Free-GPU bitmask (0 when the machine is down).
    pub free_mask: u128,
    /// Per-socket committed bandwidth, bit patterns.
    pub bw_bits: Vec<u64>,
    /// The machine's interned co-runner signature, canonical order.
    pub corunners: Arc<Vec<Corunner>>,
}

impl PartialEq for KeyInner {
    fn eq(&self, other: &Self) -> bool {
        self.topo_class == other.topo_class
            && self.free_mask == other.free_mask
            && self.bw_bits == other.bw_bits
            && (Arc::ptr_eq(&self.corunners, &other.corunners)
                || (self.corunners.len() == other.corunners.len()
                    && self
                        .corunners
                        .iter()
                        .zip(other.corunners.iter())
                        .all(|(a, b)| a.sort_key() == b.sort_key())))
    }
}

impl Eq for KeyInner {}

impl Hash for KeyInner {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.topo_class.hash(h);
        self.free_mask.hash(h);
        self.bw_bits.hash(h);
        self.corunners.len().hash(h);
        for c in self.corunners.iter() {
            c.sort_key().hash(h);
        }
    }
}

/// A machine's evaluation-engine equivalence-class key, maintained
/// incrementally by [`ClusterState`] on every `place`/`release`/failure so
/// arrival-time candidate grouping reads precomputed keys in O(feasible
/// machines) — no re-hashing of untouched machines. The 64-bit hash is
/// precomputed at rebuild time; `Hash` just replays it and `Eq`
/// short-circuits on it (then on `Arc` pointer identity) before falling
/// back to a field compare.
#[derive(Debug, Clone)]
pub struct MachineClassKey {
    hash: u64,
    inner: Arc<KeyInner>,
}

impl MachineClassKey {
    fn new(inner: KeyInner) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        inner.hash(&mut h);
        Self { hash: h.finish(), inner: Arc::new(inner) }
    }

    /// The precomputed 64-bit hash (stable for the life of the process).
    pub fn hash_bits(&self) -> u64 {
        self.hash
    }

    /// The key's payload.
    pub fn inner(&self) -> &KeyInner {
        &self.inner
    }
}

impl PartialEq for MachineClassKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner)
    }
}

impl Eq for MachineClassKey {}

impl Hash for MachineClassKey {
    fn hash<H: Hasher>(&self, h: &mut H) {
        h.write_u64(self.hash);
    }
}

/// Free/busy GPU bookkeeping across the cluster plus the running-job table.
///
/// The boolean bitmap `free` is the ground truth; `free_mask`,
/// `socket_free` and `jobs_on` are incremental caches maintained on every
/// `place`/`release` so the per-candidate hot-path queries
/// ([`ClusterState::free_gpus`], [`ClusterState::free_count`],
/// [`ClusterState::socket_occupancy`], [`ClusterState::running_on`]) cost
/// a bitmask read instead of a recomputation. [`ClusterState::audit`]
/// re-derives every cache from the ground truth.
#[derive(Debug, Clone)]
pub struct ClusterState {
    cluster: Arc<ClusterTopology>,
    profiles: Arc<ProfileLibrary>,
    /// `free[machine][gpu]` — GPU availability bitmaps (ground truth).
    free: Vec<Vec<bool>>,
    /// Per-machine free-GPU bitmask (bit `g` set ⇔ GPU `g` free); mirrors
    /// `free` incrementally. Machines are capped at 128 GPUs.
    free_mask: Vec<u128>,
    /// `socket_free[machine][socket]` — free-GPU counters per socket,
    /// mirrors `free` incrementally (the Eq. 5 input).
    socket_free: Vec<Vec<u32>>,
    /// `socket_total[machine][socket]` — GPUs per socket (immutable).
    socket_total: Vec<Vec<u32>>,
    /// Job ids holding at least one GPU on each machine, unordered;
    /// mirrors `running` incrementally.
    jobs_on: Vec<Vec<JobId>>,
    /// `bw_used[machine][socket]` — committed memory bandwidth, GB/s (§4.3's
    /// `t_bw ≤ p_bw` constraint).
    bw_used: Vec<Vec<f64>>,
    /// Machines currently failed/offline — excluded from every capacity
    /// query until marked up again.
    down: Vec<bool>,
    /// Per-machine equivalence-class key, rebuilt eagerly for exactly the
    /// machines a `place`/`release`/failure touches (the PR 4
    /// dirty-machine discipline applied to keys).
    class_keys: Vec<MachineClassKey>,
    /// Per-machine monotone rebuild counter for the class key: bumped every
    /// time `rebuild_machine_key` replaces `class_keys[m]`. An unchanged
    /// stamp therefore proves the machine's key — and every pure-function
    /// consequence of it — is the very value another snapshot saw, without
    /// touching the key's `Arc` (the shard-memo repair path compares stamps
    /// instead of cloning keys).
    key_stamps: Vec<u64>,
    /// Per-machine interned co-runner signature — the same `Arc` the class
    /// key holds, served to every [`crate::StateOracle`].
    corunners: Vec<Arc<Vec<Corunner>>>,
    /// Per-socket bandwidth capacity, GB/s.
    bw_capacity_gbs: f64,
    running: HashMap<JobId, Allocation>,
    /// The machine-partition shard index (DESIGN.md §10): immutable
    /// partition, plus per-shard admission aggregates maintained O(1) per
    /// GPU on every `place`/`release`/failure.
    shards: ShardIndex,
}

impl ClusterState {
    /// Fresh state: everything free, nothing running, default socket
    /// bandwidth capacity.
    pub fn new(cluster: Arc<ClusterTopology>, profiles: Arc<ProfileLibrary>) -> Self {
        let free: Vec<Vec<bool>> = cluster
            .machines()
            .map(|m| vec![true; cluster.machine(m).n_gpus()])
            .collect();
        let free_mask = free
            .iter()
            .map(|gpus| {
                assert!(gpus.len() <= 128, "machines are capped at 128 GPUs");
                full_mask(gpus.len())
            })
            .collect();
        let socket_total: Vec<Vec<u32>> = cluster
            .machines()
            .map(|m| {
                let topo = cluster.machine(m);
                topo.sockets()
                    .map(|s| topo.gpus_in_socket(s).len() as u32)
                    .collect()
            })
            .collect();
        let socket_free = socket_total.clone();
        let jobs_on = vec![Vec::new(); cluster.n_machines()];
        let bw_used = cluster
            .machines()
            .map(|m| vec![0.0; cluster.machine(m).n_sockets()])
            .collect();
        let down = vec![false; cluster.n_machines()];
        // Fresh state: every GPU free, so each machine contributes its full
        // width to the shard aggregates.
        let shards = ShardIndex::build(&cluster, ShardSpec::from_env(), |m| {
            cluster.machine(m).n_gpus()
        });
        let mut state = Self {
            cluster,
            profiles,
            free,
            free_mask,
            socket_free,
            socket_total,
            jobs_on,
            bw_used,
            bw_capacity_gbs: DEFAULT_SOCKET_BW_GBS,
            down,
            class_keys: Vec::new(),
            key_stamps: Vec::new(),
            corunners: Vec::new(),
            running: HashMap::new(),
            shards,
        };
        for m in state.cluster.machines() {
            let (corunners, key) = state.compute_machine_key(m);
            state.corunners.push(corunners);
            state.class_keys.push(key);
            state.key_stamps.push(0);
        }
        state
    }

    /// Re-derives one machine's interned co-runner signature and class key
    /// from the ground truth (`jobs_on` + `running`). Pure read; the eager
    /// rebuild paths and `audit()` check 7 both go through this.
    fn compute_machine_key(
        &self,
        machine: MachineId,
    ) -> (Arc<Vec<Corunner>>, MachineClassKey) {
        let mi = machine.index();
        let mut list: Vec<Corunner> = self.jobs_on[mi]
            .iter()
            .map(|id| {
                let alloc = &self.running[id];
                let mut mask = 0u128;
                for g in alloc.gpus_on(machine) {
                    mask |= 1u128 << g.index();
                }
                let mut bits = mask;
                let mut gpus = Vec::with_capacity(bits.count_ones() as usize);
                while bits != 0 {
                    gpus.push(GpuId(bits.trailing_zeros()));
                    bits &= bits - 1;
                }
                Corunner { profile: *alloc.profile(&self.profiles), mask, gpus }
            })
            .collect();
        list.sort_by_key(Corunner::sort_key);
        let corunners = Arc::new(list);
        let key = MachineClassKey::new(KeyInner {
            topo_class: self.cluster.machine_class(machine),
            free_mask: self.free_mask_bits(machine),
            bw_bits: self.bw_used[mi].iter().map(|b| b.to_bits()).collect(),
            corunners: Arc::clone(&corunners),
        });
        (corunners, key)
    }

    /// Eagerly rebuilds one machine's key + signature after a mutation.
    /// O(jobs on that machine) — paid once per touched machine per event,
    /// never per candidate.
    fn rebuild_machine_key(&mut self, machine: MachineId) {
        let (corunners, key) = self.compute_machine_key(machine);
        self.corunners[machine.index()] = corunners;
        self.class_keys[machine.index()] = key;
        self.key_stamps[machine.index()] += 1;
        // Every eval-relevant mutation funnels through this rebuild, so
        // bumping here is what makes an unchanged (epoch, version) pair
        // prove the shard memo entry still matches the live state.
        self.shards.bump_version(machine);
    }

    /// The machine's precomputed equivalence-class key (DESIGN.md §7, §9).
    pub fn machine_class_key(&self, machine: MachineId) -> &MachineClassKey {
        &self.class_keys[machine.index()]
    }

    /// The machine's class-key rebuild stamp: equal stamps prove equal keys
    /// (the key is only ever replaced through `rebuild_machine_key`, which
    /// bumps this). The converse does not hold — a place/release pair can
    /// restore the old key under a new stamp — so stamp inequality means
    /// "re-check", never "wrong".
    pub fn key_stamp(&self, machine: MachineId) -> u64 {
        self.key_stamps[machine.index()]
    }

    /// The machine's interned co-runner signature, canonical
    /// `(model, batch, mask)` order — shared with the class key.
    pub fn corunners(&self, machine: MachineId) -> &Arc<Vec<Corunner>> {
        &self.corunners[machine.index()]
    }

    /// Marks a machine offline (failed) or back online. Offline machines
    /// vanish from every capacity query; the caller is responsible for
    /// cancelling/requeueing whatever was running there first.
    ///
    /// # Panics
    ///
    /// Panics when taking a machine down that still hosts allocations.
    pub fn set_machine_down(&mut self, machine: MachineId, down: bool) {
        if down {
            assert!(
                self.running_on(machine).is_empty(),
                "cancel {machine}'s jobs before failing it"
            );
        }
        let old_free = self.free_count(machine);
        self.down[machine.index()] = down;
        // The key's free-mask component (and the shard aggregate's view of
        // the machine's capacity) reads 0 while down; rebuild so both track
        // the transition in both directions.
        self.shards.update(machine, old_free, self.free_count(machine));
        self.rebuild_machine_key(machine);
    }

    /// True when the machine is marked offline.
    pub fn is_machine_down(&self, machine: MachineId) -> bool {
        self.down[machine.index()]
    }

    /// Overrides the per-socket memory-bandwidth capacity (GB/s).
    pub fn with_bw_capacity(mut self, gbs: f64) -> Self {
        assert!(gbs > 0.0 && gbs.is_finite(), "capacity must be positive");
        self.bw_capacity_gbs = gbs;
        self
    }

    /// Per-socket bandwidth capacity in force, GB/s.
    pub fn bw_capacity_gbs(&self) -> f64 {
        self.bw_capacity_gbs
    }

    /// Remaining memory bandwidth on one socket, GB/s.
    pub fn socket_bw_free(&self, machine: MachineId, socket: SocketId) -> f64 {
        (self.bw_capacity_gbs - self.bw_used[machine.index()][socket.index()]).max(0.0)
    }

    /// How a job's bandwidth demand lands on sockets: proportional to the
    /// GPUs it holds there.
    fn bw_shares(&self, machine: MachineId, gpus: &[GpuId], demand: f64) -> Vec<(usize, f64)> {
        if demand <= 0.0 || gpus.is_empty() {
            return Vec::new();
        }
        let topo = self.cluster.machine(machine);
        let per_gpu = demand / gpus.len() as f64;
        let mut shares: Vec<(usize, f64)> = Vec::new();
        for &g in gpus {
            let s = topo.socket_of(g).index();
            match shares.iter_mut().find(|(idx, _)| *idx == s) {
                Some((_, v)) => *v += per_gpu,
                None => shares.push((s, per_gpu)),
            }
        }
        shares
    }

    /// §4.3 capacity check: would placing `demand` GB/s over these GPUs
    /// keep every touched socket within `p_bw`?
    pub fn fits_bw(&self, machine: MachineId, gpus: &[GpuId], demand: f64) -> bool {
        self.bw_shares(machine, gpus, demand).iter().all(|&(s, share)| {
            self.bw_used[machine.index()][s] + share <= self.bw_capacity_gbs + 1e-9
        })
    }

    /// The topology this state tracks.
    pub fn cluster(&self) -> &ClusterTopology {
        &self.cluster
    }

    /// Shared handle to the topology.
    pub fn cluster_arc(&self) -> Arc<ClusterTopology> {
        Arc::clone(&self.cluster)
    }

    /// The profile library in force.
    pub fn profiles(&self) -> &ProfileLibrary {
        &self.profiles
    }

    /// Shared handle to the profile library.
    pub fn profiles_arc(&self) -> Arc<ProfileLibrary> {
        Arc::clone(&self.profiles)
    }

    /// Free GPUs on `machine`, ascending (none when the machine is down).
    pub fn free_gpus(&self, machine: MachineId) -> Vec<GpuId> {
        let mut mask = self.free_mask_bits(machine);
        let mut gpus = Vec::with_capacity(mask.count_ones() as usize);
        while mask != 0 {
            let g = mask.trailing_zeros();
            gpus.push(GpuId(g));
            mask &= mask - 1;
        }
        gpus
    }

    /// Lowest-id free GPU on `machine`, if any.
    pub fn first_free_gpu(&self, machine: MachineId) -> Option<GpuId> {
        let mask = self.free_mask_bits(machine);
        (mask != 0).then(|| GpuId(mask.trailing_zeros()))
    }

    /// The machine's free-GPU set as a bitmask (bit `g` set ⇔ GPU `g`
    /// free; 0 when the machine is down) — the evaluation engine's
    /// equivalence-class key component.
    pub fn free_mask_bits(&self, machine: MachineId) -> u128 {
        if self.down[machine.index()] {
            return 0;
        }
        self.free_mask[machine.index()]
    }

    /// Committed per-socket memory bandwidth on `machine`, GB/s.
    pub fn socket_bw_used(&self, machine: MachineId) -> &[f64] {
        &self.bw_used[machine.index()]
    }

    /// Number of free GPUs on `machine` (0 when the machine is down).
    pub fn free_count(&self, machine: MachineId) -> usize {
        self.free_mask_bits(machine).count_ones() as usize
    }

    /// Total free GPUs across the cluster — O(1) from the shard aggregates.
    pub fn total_free(&self) -> usize {
        self.shards.cluster_free()
    }

    /// True when at least one GPU is free anywhere ("availableResources(P)"
    /// in Algorithm 1).
    pub fn has_free_resources(&self) -> bool {
        self.total_free() > 0
    }

    /// Free GPUs of `machine` grouped per socket as `(free, total)` —
    /// the Eq. 5 input. Served from the incrementally maintained counters.
    pub fn socket_occupancy(&self, machine: MachineId) -> Vec<(u32, u32)> {
        self.socket_free[machine.index()]
            .iter()
            .zip(&self.socket_total[machine.index()])
            .map(|(&f, &t)| (f, t))
            .collect()
    }

    /// Machines with at least `n` free GPUs, ascending id — the Algorithm 1
    /// `filterHostsByConstraints` capacity filter. Shards whose aggregates
    /// prove no member is wide enough are skipped wholesale; because shards
    /// are contiguous ascending id ranges, the output is identical to the
    /// flat per-machine scan.
    pub fn machines_with_capacity(&self, n: usize) -> Vec<MachineId> {
        let mut out = Vec::new();
        for s in 0..self.shards.n_shards() {
            if !self.shards.has_capacity(s, n) {
                continue;
            }
            out.extend(
                self.shards
                    .machines(s)
                    .iter()
                    .copied()
                    .filter(|&m| self.free_count(m) >= n),
            );
        }
        out
    }

    /// The shard index: partition, admission aggregates and counters
    /// (DESIGN.md §10).
    pub fn shards(&self) -> &ShardIndex {
        &self.shards
    }

    /// Repartitions the cluster under `spec`, rebuilding the aggregates
    /// from the current free counts. `ShardSpec::Count(1)` restores the
    /// single-shard reference regardless of the `GTS_SHARDS` environment.
    pub fn with_shards(mut self, spec: ShardSpec) -> Self {
        let shards = ShardIndex::build(&self.cluster, spec, |m| self.free_count(m));
        self.shards = shards;
        self
    }

    /// Ids of the jobs holding at least one GPU on `machine`, in placement
    /// order — the raw per-machine index behind
    /// [`ClusterState::running_on`]. The simulator's incremental event loop
    /// reuses this index to scope slowdown refreshes and failure teardown
    /// to the machines an event actually touched, instead of scanning the
    /// whole running set.
    pub fn jobs_on_machine(&self, machine: MachineId) -> &[JobId] {
        &self.jobs_on[machine.index()]
    }

    /// Allocations holding at least one GPU on `machine`, ascending job id.
    /// Served from the per-machine job index — no cluster-wide scan.
    pub fn running_on(&self, machine: MachineId) -> Vec<&Allocation> {
        let mut v: Vec<&Allocation> = self.jobs_on[machine.index()]
            .iter()
            .map(|id| &self.running[id])
            .collect();
        v.sort_by_key(|a| a.spec.id);
        v
    }

    /// All running allocations, by job id.
    pub fn running(&self) -> impl Iterator<Item = &Allocation> {
        self.running.values()
    }

    /// Looks up one running allocation.
    pub fn allocation(&self, id: JobId) -> Option<&Allocation> {
        self.running.get(&id)
    }

    /// Number of running jobs.
    pub fn n_running(&self) -> usize {
        self.running.len()
    }

    /// Commits a placement, marking its GPUs busy.
    ///
    /// # Panics
    ///
    /// Panics if any requested GPU is already allocated or the job id is
    /// already running — both indicate a scheduler bug.
    pub fn place(&mut self, spec: JobSpec, gpus: Vec<GlobalGpuId>, utility: f64) {
        assert!(
            !self.running.contains_key(&spec.id),
            "{} placed twice",
            spec.id
        );
        for &g in &gpus {
            assert!(
                !self.down[g.machine.index()],
                "{} is down; the scheduler must not place there",
                g.machine
            );
            let old_free = self.free_count(g.machine);
            let slot = &mut self.free[g.machine.index()][g.gpu.index()];
            assert!(*slot, "{g} is already allocated");
            *slot = false;
            self.free_mask[g.machine.index()] &= !(1u128 << g.gpu.index());
            self.shards.update(g.machine, old_free, old_free - 1);
            let socket = self.cluster.machine(g.machine).socket_of(g.gpu).index();
            self.socket_free[g.machine.index()][socket] -= 1;
        }
        // Commit the bandwidth demand per machine.
        let mut machines: Vec<MachineId> = gpus.iter().map(|g| g.machine).collect();
        machines.sort_unstable();
        machines.dedup();
        for &m in &machines {
            self.jobs_on[m.index()].push(spec.id);
            let local: Vec<GpuId> = gpus
                .iter()
                .filter(|g| g.machine == m)
                .map(|g| g.gpu)
                .collect();
            let machine_share =
                spec.bw_demand_gbs * local.len() as f64 / gpus.len().max(1) as f64;
            for (s, share) in self.bw_shares(m, &local, machine_share) {
                self.bw_used[m.index()][s] += share;
            }
        }
        let id = spec.id;
        self.running.insert(id, Allocation { spec, gpus, utility });
        for m in machines {
            self.rebuild_machine_key(m);
        }
        self.debug_audit();
    }

    /// Releases a finished job's GPUs. Returns the allocation it held.
    ///
    /// # Panics
    ///
    /// Panics if the job is not running.
    pub fn release(&mut self, id: JobId) -> Allocation {
        let alloc = self
            .running
            .remove(&id)
            .unwrap_or_else(|| panic!("{id} is not running"));
        for &g in &alloc.gpus {
            let old_free = self.free_count(g.machine);
            self.free[g.machine.index()][g.gpu.index()] = true;
            self.free_mask[g.machine.index()] |= 1u128 << g.gpu.index();
            self.shards.update(g.machine, old_free, old_free + 1);
            let socket = self.cluster.machine(g.machine).socket_of(g.gpu).index();
            self.socket_free[g.machine.index()][socket] += 1;
        }
        for m in alloc.machines() {
            self.jobs_on[m.index()].retain(|&j| j != id);
            let local = alloc.gpus_on(m);
            let machine_share = alloc.spec.bw_demand_gbs * local.len() as f64
                / alloc.gpus.len().max(1) as f64;
            for (s, share) in self.bw_shares(m, &local, machine_share) {
                let used = &mut self.bw_used[m.index()][s];
                *used = (*used - share).max(0.0);
            }
        }
        for m in alloc.machines() {
            self.rebuild_machine_key(m);
        }
        self.debug_audit();
        alloc
    }

    /// Exhaustively cross-checks the state's internal invariants against the
    /// running-allocation table. Cheap enough to run after every mutation in
    /// debug builds (it is, under `debug_assertions`); release builds call
    /// it only where a driver explicitly asks.
    ///
    /// Invariants checked:
    ///
    /// 1. **No double-booking** — no GPU appears in two allocations (or
    ///    twice in one);
    /// 2. **Conservation** — a GPU is marked busy in the free bitmap *iff*
    ///    exactly one allocation holds it;
    /// 3. **Bandwidth accounting** — per-socket `bw_used` equals the sum of
    ///    the running allocations' committed shares;
    /// 4. **Socket-occupancy totals** — per-socket `(free, total)` readings
    ///    agree with the free bitmap and the machine topology;
    /// 5. **Down machines are empty** — an offline machine hosts no
    ///    allocation and reports no capacity.
    pub fn audit(&self) -> Result<(), String> {
        // 1 + 2a: walk allocations, claiming each GPU exactly once.
        let mut owner: Vec<Vec<Option<JobId>>> = self
            .free
            .iter()
            .map(|m| vec![None; m.len()])
            .collect();
        for (id, alloc) in &self.running {
            if alloc.spec.id != *id {
                return Err(format!("running table key {id} holds {}", alloc.spec.id));
            }
            for g in &alloc.gpus {
                if self.down[g.machine.index()] {
                    return Err(format!("{} is down but hosts {id}", g.machine));
                }
                let slot = &mut owner[g.machine.index()][g.gpu.index()];
                if let Some(prev) = slot {
                    return Err(format!("{g} double-booked by {prev} and {id}"));
                }
                *slot = Some(*id);
                if self.free[g.machine.index()][g.gpu.index()] {
                    return Err(format!("{g} allocated to {id} but marked free"));
                }
            }
        }
        // 2b: every busy GPU belongs to some allocation.
        for (mi, bitmap) in self.free.iter().enumerate() {
            for (gi, &is_free) in bitmap.iter().enumerate() {
                if !is_free && owner[mi][gi].is_none() {
                    return Err(format!(
                        "machine{mi}/gpu{gi} is marked busy but no allocation holds it"
                    ));
                }
            }
        }
        // 3: recompute committed bandwidth from scratch.
        let mut expected: Vec<Vec<f64>> = self
            .bw_used
            .iter()
            .map(|m| vec![0.0; m.len()])
            .collect();
        for alloc in self.running.values() {
            for m in alloc.machines() {
                let local = alloc.gpus_on(m);
                let machine_share = alloc.spec.bw_demand_gbs * local.len() as f64
                    / alloc.gpus.len().max(1) as f64;
                for (s, share) in self.bw_shares(m, &local, machine_share) {
                    expected[m.index()][s] += share;
                }
            }
        }
        for (mi, sockets) in self.bw_used.iter().enumerate() {
            for (si, &used) in sockets.iter().enumerate() {
                let want = expected[mi][si];
                if (used - want).abs() > 1e-6 {
                    return Err(format!(
                        "machine{mi}/socket{si} bandwidth ledger {used} GB/s \
                         disagrees with allocations ({want} GB/s)"
                    ));
                }
                if used > self.bw_capacity_gbs + 1e-6 {
                    return Err(format!(
                        "machine{mi}/socket{si} over capacity: {used} > {}",
                        self.bw_capacity_gbs
                    ));
                }
            }
        }
        // 4 + 5: occupancy readings and down-machine capacity.
        for m in self.cluster.machines() {
            let occ = self.socket_occupancy(m);
            let topo = self.cluster.machine(m);
            let free_sum: u32 = occ.iter().map(|&(f, _)| f).sum();
            let total_sum: u32 = occ.iter().map(|&(_, t)| t).sum();
            let bitmap_free = self.free[m.index()].iter().filter(|&&f| f).count() as u32;
            if free_sum != bitmap_free {
                return Err(format!(
                    "{m} socket occupancy sums to {free_sum} free, bitmap says {bitmap_free}"
                ));
            }
            if total_sum != topo.n_gpus() as u32 {
                return Err(format!(
                    "{m} socket occupancy covers {total_sum} GPUs of {}",
                    topo.n_gpus()
                ));
            }
            if self.down[m.index()] && self.free_count(m) != 0 {
                return Err(format!("{m} is down but reports free capacity"));
            }
        }
        // 6: incremental caches re-derived from the ground truth. Any drift
        // here is a cache-invalidation bug on place/release/failure.
        for m in self.cluster.machines() {
            let topo = self.cluster.machine(m);
            let mi = m.index();
            let mut want_mask = 0u128;
            for (gi, &is_free) in self.free[mi].iter().enumerate() {
                if is_free {
                    want_mask |= 1u128 << gi;
                }
            }
            if self.free_mask[mi] != want_mask {
                return Err(format!(
                    "{m} free_mask cache {:#x} disagrees with bitmap {want_mask:#x}",
                    self.free_mask[mi]
                ));
            }
            for s in topo.sockets() {
                let gpus = topo.gpus_in_socket(s);
                let want_free =
                    gpus.iter().filter(|g| self.free[mi][g.index()]).count() as u32;
                if self.socket_free[mi][s.index()] != want_free {
                    return Err(format!(
                        "{m}/{s} socket_free cache {} disagrees with bitmap ({want_free})",
                        self.socket_free[mi][s.index()]
                    ));
                }
                if self.socket_total[mi][s.index()] != gpus.len() as u32 {
                    return Err(format!(
                        "{m}/{s} socket_total cache {} disagrees with topology ({})",
                        self.socket_total[mi][s.index()],
                        gpus.len()
                    ));
                }
            }
            let mut want_jobs: Vec<JobId> = self
                .running
                .values()
                .filter(|a| a.gpus.iter().any(|g| g.machine == m))
                .map(|a| a.spec.id)
                .collect();
            want_jobs.sort_unstable();
            let mut cached = self.jobs_on[mi].clone();
            cached.sort_unstable();
            if cached != want_jobs {
                return Err(format!(
                    "{m} jobs_on cache {cached:?} disagrees with allocations {want_jobs:?}"
                ));
            }
        }
        // 7: the incremental class index. Re-derive every machine's
        // co-runner signature and equivalence-class key (including the
        // precomputed hash) from the ground truth; drift here means a
        // place/release/failure path forgot to rebuild a touched machine.
        for m in self.cluster.machines() {
            let mi = m.index();
            let (want_corunners, want_key) = self.compute_machine_key(m);
            let have = &self.corunners[mi];
            let sig_ok = have.len() == want_corunners.len()
                && have
                    .iter()
                    .zip(want_corunners.iter())
                    .all(|(a, b)| a == b);
            if !sig_ok {
                return Err(format!(
                    "{m} interned co-runner signature {have:?} disagrees with \
                     ground truth {want_corunners:?}"
                ));
            }
            if !Arc::ptr_eq(have, &self.class_keys[mi].inner().corunners) {
                return Err(format!(
                    "{m} class key holds a different co-runner Arc than the \
                     interned signature"
                ));
            }
            if self.class_keys[mi] != want_key {
                return Err(format!(
                    "{m} class key {:?} disagrees with re-derived key {:?}",
                    self.class_keys[mi], want_key
                ));
            }
            if self.class_keys[mi].hash_bits() != want_key.hash_bits() {
                return Err(format!(
                    "{m} class key hash {:#x} disagrees with re-derived hash {:#x}",
                    self.class_keys[mi].hash_bits(),
                    want_key.hash_bits()
                ));
            }
        }
        // 8: the shard index. Re-derive the admission aggregates (per-shard
        // free-GPU histograms and totals) from the ground truth and check
        // the partition's structural invariants; drift means a
        // place/release/failure path skipped a `ShardIndex::update`.
        self.shards.verify(&self.cluster, |m| self.free_count(m))?;
        // 9: the utility-bound inputs. Re-derive the idle-machine
        // histograms, machine widths and static class sets/geometry backing
        // the branch-and-bound shard pruning; drift here would silently
        // turn the "exact" prune into a lossy one.
        self.shards.verify_bound_state(&self.cluster, |m| self.free_count(m))?;
        Ok(())
    }

    #[inline]
    fn debug_audit(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.audit() {
            panic!("ClusterState::audit failed after mutation: {e}");
        }
    }

    /// Sockets of `machine` touched by running jobs other than `exclude`.
    pub fn busy_sockets(&self, machine: MachineId, exclude: Option<JobId>) -> Vec<SocketId> {
        let topo = self.cluster.machine(machine);
        let mut sockets: Vec<SocketId> = self.jobs_on[machine.index()]
            .iter()
            .filter(|&&id| Some(id) != exclude)
            .flat_map(|id| self.running[id].gpus_on(machine))
            .map(|g| topo.socket_of(g))
            .collect();
        sockets.sort_unstable();
        sockets.dedup();
        sockets
    }
}

/// Lifts machine-local GPU ids into the cluster id space.
pub fn on_machine(machine: MachineId, gpus: &[GpuId]) -> Vec<GlobalGpuId> {
    gpus.iter().map(|&gpu| GlobalGpuId { machine, gpu }).collect()
}

/// Bitmask with the low `n` bits set (`n ≤ 128`).
fn full_mask(n: usize) -> u128 {
    if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_job::{BatchClass, NnModel};
    use gts_topo::power8_minsky;

    fn state(n_machines: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles)
    }

    fn spec(id: u64, gpus: u32) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus)
    }

    fn g(m: u32, gpu: u32) -> GlobalGpuId {
        GlobalGpuId { machine: MachineId(m), gpu: GpuId(gpu) }
    }

    #[test]
    fn fresh_state_is_fully_free() {
        let s = state(2);
        assert_eq!(s.total_free(), 8);
        assert!(s.has_free_resources());
        assert_eq!(s.free_gpus(MachineId(0)).len(), 4);
        assert_eq!(s.socket_occupancy(MachineId(0)), vec![(2, 2), (2, 2)]);
    }

    #[test]
    fn place_and_release_round_trip() {
        let mut s = state(1);
        s.place(spec(0, 2), vec![g(0, 0), g(0, 1)], 1.0);
        assert_eq!(s.free_count(MachineId(0)), 2);
        assert_eq!(s.socket_occupancy(MachineId(0)), vec![(0, 2), (2, 2)]);
        assert_eq!(s.n_running(), 1);
        assert!(s.allocation(JobId(0)).is_some());

        let alloc = s.release(JobId(0));
        assert_eq!(alloc.gpus, vec![g(0, 0), g(0, 1)]);
        assert!(alloc.is_single_node());
        assert_eq!(s.free_count(MachineId(0)), 4);
        assert_eq!(s.n_running(), 0);
    }

    #[test]
    fn capacity_filter_respects_occupancy() {
        let mut s = state(2);
        s.place(spec(0, 3), vec![g(0, 0), g(0, 1), g(0, 2)], 1.0);
        assert_eq!(s.machines_with_capacity(2), vec![MachineId(1)]);
        assert_eq!(
            s.machines_with_capacity(1),
            vec![MachineId(0), MachineId(1)]
        );
        assert_eq!(s.machines_with_capacity(5), vec![]);
    }

    #[test]
    fn multi_machine_allocation_is_tracked_per_machine() {
        let mut s = state(2);
        let mut j = spec(0, 2);
        j.constraints = gts_job::Constraints { single_node: false, anti_collocate: true };
        s.place(j, vec![g(0, 0), g(1, 0)], 0.9);
        let alloc = s.allocation(JobId(0)).unwrap();
        assert!(!alloc.is_single_node());
        assert_eq!(alloc.machines(), vec![MachineId(0), MachineId(1)]);
        assert_eq!(alloc.gpus_on(MachineId(1)), vec![GpuId(0)]);
        assert_eq!(s.running_on(MachineId(0)).len(), 1);
        assert_eq!(s.running_on(MachineId(1)).len(), 1);
        s.release(JobId(0));
        assert_eq!(s.total_free(), 8);
    }

    #[test]
    fn busy_sockets_excludes_requested_job() {
        let mut s = state(1);
        s.place(spec(0, 1), vec![g(0, 0)], 1.0);
        s.place(spec(1, 1), vec![g(0, 2)], 1.0);
        assert_eq!(
            s.busy_sockets(MachineId(0), None),
            vec![SocketId(0), SocketId(1)]
        );
        assert_eq!(
            s.busy_sockets(MachineId(0), Some(JobId(0))),
            vec![SocketId(1)]
        );
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocation_panics() {
        let mut s = state(1);
        s.place(spec(0, 1), vec![g(0, 0)], 1.0);
        s.place(spec(1, 1), vec![g(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn duplicate_job_panics() {
        let mut s = state(1);
        s.place(spec(0, 1), vec![g(0, 0)], 1.0);
        s.place(spec(0, 1), vec![g(0, 1)], 1.0);
    }

    #[test]
    #[should_panic(expected = "is not running")]
    fn releasing_unknown_job_panics() {
        let mut s = state(1);
        s.release(JobId(9));
    }

    #[test]
    fn running_on_filters_by_machine() {
        let mut s = state(2);
        s.place(spec(0, 1), vec![g(0, 0)], 1.0);
        s.place(spec(1, 1), vec![g(1, 0)], 1.0);
        assert_eq!(s.running_on(MachineId(0)).len(), 1);
        assert_eq!(s.running_on(MachineId(1))[0].spec.id, JobId(1));
    }

    #[test]
    fn on_machine_lifts_ids() {
        let lifted = on_machine(MachineId(3), &[GpuId(0), GpuId(2)]);
        assert_eq!(lifted, vec![g(3, 0), g(3, 2)]);
    }

    #[test]
    fn incremental_caches_track_place_release_and_failure() {
        let mut s = state(2);
        assert_eq!(s.free_mask_bits(MachineId(0)), 0b1111);
        assert_eq!(s.first_free_gpu(MachineId(0)), Some(GpuId(0)));

        s.place(spec(0, 2), vec![g(0, 0), g(0, 2)], 1.0);
        assert_eq!(s.free_mask_bits(MachineId(0)), 0b1010);
        assert_eq!(s.first_free_gpu(MachineId(0)), Some(GpuId(1)));
        assert_eq!(s.free_gpus(MachineId(0)), vec![GpuId(1), GpuId(3)]);
        assert_eq!(s.socket_occupancy(MachineId(0)), vec![(1, 2), (1, 2)]);
        s.audit().unwrap();

        s.release(JobId(0));
        assert_eq!(s.free_mask_bits(MachineId(0)), 0b1111);
        s.audit().unwrap();

        // A down machine reports an empty mask but keeps its bookkeeping.
        s.set_machine_down(MachineId(1), true);
        assert_eq!(s.free_mask_bits(MachineId(1)), 0);
        assert_eq!(s.first_free_gpu(MachineId(1)), None);
        assert_eq!(s.free_count(MachineId(1)), 0);
        s.audit().unwrap();
        s.set_machine_down(MachineId(1), false);
        assert_eq!(s.free_mask_bits(MachineId(1)), 0b1111);
    }

    #[test]
    fn socket_bw_used_tracks_commitments() {
        let mut s = state(1);
        assert_eq!(s.socket_bw_used(MachineId(0)), &[0.0, 0.0]);
        let mut j = spec(0, 2);
        j.bw_demand_gbs = 10.0;
        s.place(j, vec![g(0, 0), g(0, 2)], 1.0);
        assert_eq!(s.socket_bw_used(MachineId(0)), &[5.0, 5.0]);
        s.release(JobId(0));
        assert_eq!(s.socket_bw_used(MachineId(0)), &[0.0, 0.0]);
    }
}
