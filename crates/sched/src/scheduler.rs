//! Algorithm 1 — the topology-aware job placement loop.
//!
//! ```text
//! while availableResources(P) and Q ≠ ∅:
//!     A ← Q.pop()
//!     P' ← filterHostsByConstraints(A, P)
//!     s ← DRB(A, P', C)
//!     if U(s) < A.minimal_utility and postpone:
//!         postponed_list.add(A)
//!     else:
//!         place(A, s)
//! Q.add(postponed_list)
//! ```
//!
//! The loop is driven by the simulator (`gts-sim`) or the prototype
//! (`gts-proto`), which call [`Scheduler::run_iteration`] whenever a job
//! arrives or finishes ("wakeup after an event").

use crate::eval::{DecisionReplayStats, EvalCache, EvalCacheStats, EvalParams};
use crate::overhead::DecisionStats;
use crate::policy::Policy;
use crate::state::{Allocation, ClusterState};
use crate::trace::TraceEvent;
use gts_job::{JobId, JobSpec, WaitQueue};
use gts_topo::{GlobalGpuId, MachineId};
use std::time::Instant;

/// Scheduler construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// The placement policy to run.
    pub policy: Policy,
    /// Candidate-evaluation engine parameters.
    pub eval: EvalParams,
    /// Whether to keep a cross-event [`EvalCache`] for the run (DESIGN.md
    /// §9). Defaults to the `GTS_EVAL_CACHE` knob; the cache only ever
    /// engages on the engine path (`eval.threads > 1`).
    pub eval_cache: bool,
}

impl SchedulerConfig {
    /// Config with the environment-selected evaluation engine
    /// ([`EvalParams::from_env`]) and cache toggle
    /// ([`EvalCache::enabled_by_env`]).
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            eval: EvalParams::from_env(),
            eval_cache: EvalCache::enabled_by_env(),
        }
    }
}

/// What happened to one job during a scheduler iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementOutcome {
    /// The job was placed on these GPUs with this utility.
    Placed {
        /// The placed job.
        spec: JobSpec,
        /// GPUs granted.
        gpus: Vec<GlobalGpuId>,
        /// Utility at decision time.
        utility: f64,
        /// True when the placement's utility is below the job's
        /// `min_utility` — an SLO violation the paper counts.
        slo_violated: bool,
    },
    /// TOPO-AWARE-P parked the job: its best utility was below threshold.
    PostponedLowUtility {
        /// The parked job.
        id: JobId,
        /// The rejected utility.
        utility: f64,
    },
    /// No feasible GPUs right now; the job waits for capacity.
    WaitingForCapacity {
        /// The waiting job.
        id: JobId,
    },
}

/// What [`Scheduler::cancel`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub enum CancelOutcome {
    /// The job was waiting (or postponed) and has been dropped.
    Dequeued,
    /// The job was running; its GPUs are free again and the returned
    /// allocation tells the driver what to tear down.
    Stopped(Allocation),
    /// No such job is known to the scheduler.
    NotFound,
}

/// The Algorithm 1 driver.
#[derive(Debug)]
pub struct Scheduler {
    policy: Policy,
    eval: EvalParams,
    /// The cross-event placement caches, alive for the whole run — one per
    /// shard of the cluster state, each with the full `GTS_EVAL_CACHE`
    /// capacity (a single cache on unsharded states). `None` when disabled
    /// by config/knob.
    eval_cache: Option<Vec<EvalCache>>,
    state: ClusterState,
    queue: WaitQueue,
    stats: DecisionStats,
    slo_violations: usize,
    postpone_counts: std::collections::HashMap<JobId, u32>,
    tracing: bool,
    now_s: f64,
    trace: Vec<TraceEvent>,
}

impl Scheduler {
    /// A scheduler over a fresh cluster state.
    pub fn new(state: ClusterState, config: SchedulerConfig) -> Self {
        let eval_cache = config
            .eval_cache
            .then(|| EvalCache::from_env_per_shard(state.shards().n_shards()));
        Self {
            policy: config.policy,
            eval: config.eval,
            eval_cache,
            state,
            queue: WaitQueue::new(),
            stats: DecisionStats::new(),
            slo_violations: 0,
            postpone_counts: std::collections::HashMap::new(),
            tracing: false,
            now_s: 0.0,
            trace: Vec::new(),
        }
    }

    /// Counters of the cross-event cache (summed over the per-shard
    /// caches), or `None` when it is disabled.
    pub fn eval_cache_stats(&self) -> Option<EvalCacheStats> {
        self.eval_cache.as_ref().map(|caches| {
            caches.iter().map(EvalCache::stats).fold(
                EvalCacheStats::default(),
                |acc, s| EvalCacheStats {
                    hits: acc.hits + s.hits,
                    misses: acc.misses + s.misses,
                    evictions: acc.evictions + s.evictions,
                },
            )
        })
    }

    /// Counters of the cross-event decision-replay path, or `None` when
    /// the eval cache is disabled (the snapshot lives in its shard memo).
    /// Only `caches[0]` hosts the memo/snapshot rows, so no fold is needed.
    pub fn decision_replay_stats(&self) -> Option<DecisionReplayStats> {
        self.eval_cache.as_ref().and_then(|cs| cs.first()).map(EvalCache::replay_stats)
    }

    /// Turns the decision-trace stream on or off. Off by default — tracing
    /// allocates per decision, so benches and steady-state runs pay nothing
    /// unless a driver opts in.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Whether the decision trace is being recorded.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Sets the wall-clock the next trace events will be stamped with.
    /// Drivers call this as their simulated (or real) time advances.
    pub fn set_now(&mut self, t_s: f64) {
        self.now_s = t_s;
    }

    /// Drains and returns the trace recorded so far.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if self.tracing {
            self.trace.push(event);
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Read access to the cluster state.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Mutable access to the cluster state — for drivers applying external
    /// events (machine failures/recoveries). Placement bookkeeping must
    /// still go through `place`/`complete`/`cancel`.
    pub fn state_mut(&mut self) -> &mut ClusterState {
        &mut self.state
    }

    /// The waiting queue (arrival-ordered).
    pub fn queue(&self) -> &WaitQueue {
        &self.queue
    }

    /// Decision-latency statistics collected so far.
    pub fn decision_stats(&self) -> &DecisionStats {
        &self.stats
    }

    /// SLO violations recorded so far (placements below `min_utility`).
    pub fn slo_violations(&self) -> usize {
        self.slo_violations
    }

    /// How often a job has been postponed for low utility so far — the
    /// starvation-watch counter ("to avoid starvation ... the job waiting
    /// queue is sorted by the job's arrival time", §4.4).
    pub fn postpone_count(&self, id: JobId) -> u32 {
        self.postpone_counts.get(&id).copied().unwrap_or(0)
    }

    /// The highest postponement count any job has accumulated.
    pub fn max_postpone_count(&self) -> u32 {
        self.postpone_counts.values().copied().max().unwrap_or(0)
    }

    /// Removes and returns the head of the waiting queue without placing
    /// it. Drivers use this to evict a job that external analysis proved
    /// permanently unplaceable (it would otherwise block an in-order
    /// policy forever).
    pub fn drop_head(&mut self) -> Option<JobSpec> {
        self.queue.pop()
    }

    /// Enqueues an arriving job.
    pub fn submit(&mut self, job: JobSpec) {
        debug_assert!(job.validate().is_ok(), "invalid job submitted");
        self.emit(TraceEvent::Arrived { t_s: self.now_s, job: job.id });
        self.queue.add(job);
    }

    /// Releases a finished job's GPUs (the "a job has finished" wakeup
    /// event feeds this, then calls [`Scheduler::run_iteration`]).
    pub fn complete(&mut self, id: JobId) -> Allocation {
        self.emit(TraceEvent::Released { t_s: self.now_s, job: id });
        self.state.release(id)
    }

    /// Takes a machine offline, releasing nothing — the driver must have
    /// already cancelled (or migrated) the jobs running there. Emits a
    /// trace event, unlike raw `state_mut().set_machine_down`.
    pub fn fail_machine(&mut self, machine: MachineId) {
        self.emit(TraceEvent::MachineFailed { t_s: self.now_s, machine });
        self.state.set_machine_down(machine, true);
    }

    /// Brings a failed machine back into the pool.
    pub fn recover_machine(&mut self, machine: MachineId) {
        self.emit(TraceEvent::MachineRecovered { t_s: self.now_s, machine });
        self.state.set_machine_down(machine, false);
    }

    /// Cancels a job wherever it currently is.
    ///
    /// A queued (or postponed) job is removed from the queue; a running job
    /// is released and its allocation returned so the driver can stop its
    /// execution. Unknown ids report [`CancelOutcome::NotFound`].
    pub fn cancel(&mut self, id: JobId) -> CancelOutcome {
        if self.queue.contains(id) {
            self.queue.remove(id);
            return CancelOutcome::Dequeued;
        }
        if self.state.allocation(id).is_some() {
            self.emit(TraceEvent::Released { t_s: self.now_s, job: id });
            return CancelOutcome::Stopped(self.state.release(id));
        }
        CancelOutcome::NotFound
    }

    /// One Algorithm 1 iteration: drains the queue as far as resources and
    /// the policy allow. Returns what happened, in processing order.
    pub fn run_iteration(&mut self) -> Vec<PlacementOutcome> {
        let mut outcomes = Vec::new();
        while self.state.has_free_resources() && !self.queue.is_empty() {
            let job = self.queue.pop().expect("queue checked non-empty");

            let started = Instant::now();
            let caches = self.eval_cache.as_deref();
            let decision = if self.tracing {
                let mut evals = Vec::new();
                let d = self.policy.decide_traced_with_caches(
                    &self.state,
                    &job,
                    &mut evals,
                    self.eval,
                    caches,
                );
                if !evals.is_empty() {
                    self.trace.push(TraceEvent::Evaluated {
                        t_s: self.now_s,
                        job: job.id,
                        candidates: evals,
                    });
                }
                d
            } else {
                self.policy.decide_with_caches(&self.state, &job, self.eval, caches)
            };
            self.stats.record(started.elapsed());

            match decision {
                None => {
                    let id = job.id;
                    self.emit(TraceEvent::Waiting { t_s: self.now_s, job: id });
                    if self.policy.kind.postpones() {
                        // Out-of-order execution: park it, keep draining.
                        self.queue.postpone(job);
                        outcomes.push(PlacementOutcome::WaitingForCapacity { id });
                    } else {
                        // In-order policies block on the head job.
                        self.queue.add(job);
                        outcomes.push(PlacementOutcome::WaitingForCapacity { id });
                        break;
                    }
                }
                Some(d) => {
                    let below = d.utility + 1e-9 < job.min_utility;
                    if below && self.policy.kind.postpones() {
                        *self.postpone_counts.entry(job.id).or_insert(0) += 1;
                        self.emit(TraceEvent::Postponed {
                            t_s: self.now_s,
                            job: job.id,
                            utility: d.utility,
                        });
                        outcomes.push(PlacementOutcome::PostponedLowUtility {
                            id: job.id,
                            utility: d.utility,
                        });
                        self.queue.postpone(job);
                    } else {
                        if below {
                            self.slo_violations += 1;
                        }
                        if self.tracing {
                            let mut machines: Vec<MachineId> =
                                d.gpus.iter().map(|g| g.machine).collect();
                            machines.sort_unstable();
                            machines.dedup();
                            if machines.len() > 1 {
                                self.trace.push(TraceEvent::Spilled {
                                    t_s: self.now_s,
                                    job: job.id,
                                    machines,
                                });
                            }
                            self.trace.push(TraceEvent::Placed {
                                t_s: self.now_s,
                                job: job.id,
                                gpus: d.gpus.clone(),
                                utility: d.utility,
                                slo_violated: below,
                            });
                        }
                        outcomes.push(PlacementOutcome::Placed {
                            spec: job.clone(),
                            gpus: d.gpus.clone(),
                            utility: d.utility,
                            slo_violated: below,
                        });
                        self.state.place(job, d.gpus, d.utility);
                    }
                }
            }
        }
        self.queue.requeue_postponed();
        #[cfg(debug_assertions)]
        if let Err(e) = self.audit() {
            panic!("Scheduler::audit failed after iteration: {e}");
        }
        outcomes
    }

    /// Cross-checks the scheduler's bookkeeping on top of
    /// [`ClusterState::audit`]: a job must live in exactly one place —
    /// waiting queue, postponement list, or the running set — and the two
    /// queue lists must themselves be duplicate-free.
    pub fn audit(&self) -> Result<(), String> {
        self.state.audit()?;
        let mut seen = std::collections::HashSet::new();
        for job in self.queue.iter() {
            if !seen.insert(job.id) {
                return Err(format!("{} queued twice", job.id));
            }
            if self.state.allocation(job.id).is_some() {
                return Err(format!("{} is both queued and running", job.id));
            }
        }
        for job in self.queue.postponed_iter() {
            if !seen.insert(job.id) {
                return Err(format!("{} in both queue and postponed list", job.id));
            }
            if self.state.allocation(job.id).is_some() {
                return Err(format!("{} is both postponed and running", job.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, PolicyKind};
    use gts_job::{BatchClass, NnModel};
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology, GpuId, MachineId};
    use std::sync::Arc;

    fn scheduler(kind: PolicyKind, n_machines: usize) -> Scheduler {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        Scheduler::new(
            ClusterState::new(cluster, profiles),
            SchedulerConfig::new(Policy::new(kind)),
        )
    }

    fn job(id: u64, gpus: u32, min_utility: f64) -> JobSpec {
        JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus)
            .with_min_utility(min_utility)
            .arriving_at(id as f64)
    }

    fn placed_ids(outcomes: &[PlacementOutcome]) -> Vec<JobId> {
        outcomes
            .iter()
            .filter_map(|o| match o {
                PlacementOutcome::Placed { spec, .. } => Some(spec.id),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn places_jobs_in_arrival_order() {
        let mut s = scheduler(PolicyKind::TopoAware, 1);
        s.submit(job(1, 1, 0.3));
        s.submit(job(0, 1, 0.3));
        let outcomes = s.run_iteration();
        assert_eq!(placed_ids(&outcomes), vec![JobId(0), JobId(1)]);
        assert_eq!(s.state().n_running(), 2);
        assert_eq!(s.decision_stats().count(), 2);
    }

    #[test]
    fn topo_aware_p_postpones_low_utility_placements() {
        let mut s = scheduler(PolicyKind::TopoAwareP, 1);
        // Fill one GPU per socket so a 2-GPU job faces a forced spread.
        s.submit(job(0, 1, 0.3));
        s.submit(job(1, 1, 0.3));
        s.run_iteration();
        // TOPO-AWARE-P put the two 1-GPU jobs on *different* sockets? No:
        // it placed them one by one; the second avoids the first's socket
        // (interference), so GPUs 0 and 2 are taken.
        let mut busy: Vec<GpuId> = s
            .state()
            .running()
            .flat_map(|a| a.gpus_on(MachineId(0)))
            .collect();
        busy.sort_unstable();
        assert_eq!(busy, vec![GpuId(0), GpuId(2)]);

        s.submit(job(2, 2, 0.5));
        let outcomes = s.run_iteration();
        assert!(matches!(
            outcomes[..],
            [PlacementOutcome::PostponedLowUtility { id: JobId(2), .. }]
        ));
        assert_eq!(s.state().n_running(), 2);
        // Parked job is back in the queue for the next iteration.
        assert!(s.queue().contains(JobId(2)));
        assert_eq!(s.slo_violations(), 0);

        // Once a socket frees up entirely, the job lands packed.
        s.complete(JobId(0));
        let outcomes = s.run_iteration();
        match &outcomes[..] {
            [PlacementOutcome::Placed { spec, gpus, utility, slo_violated }] => {
                assert_eq!(spec.id, JobId(2));
                let topo = s.state().cluster().machine(MachineId(0));
                let local: Vec<GpuId> = gpus.iter().map(|g| g.gpu).collect();
                assert!(topo.is_packed(&local), "got {local:?}");
                assert!(*utility >= 0.5, "got {utility}");
                assert!(!slo_violated);
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
    }

    #[test]
    fn topo_aware_places_even_below_threshold_and_counts_violation() {
        let mut s = scheduler(PolicyKind::TopoAware, 1);
        s.submit(job(0, 1, 0.3));
        s.submit(job(1, 1, 0.3));
        s.run_iteration();
        s.submit(job(2, 2, 0.5));
        let outcomes = s.run_iteration();
        match &outcomes[..] {
            [PlacementOutcome::Placed { utility, slo_violated, .. }] => {
                assert!(*utility < 0.5);
                assert!(*slo_violated);
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
        assert_eq!(s.slo_violations(), 1);
    }

    #[test]
    fn in_order_policies_block_behind_the_head_job() {
        let mut s = scheduler(PolicyKind::Fcfs, 1);
        s.submit(job(0, 3, 0.0));
        s.run_iteration();
        // A 3-GPU job leaves one GPU; the 2-GPU job is stuck, and the
        // 1-GPU job behind it must NOT jump the line under FCFS.
        s.submit(job(1, 2, 0.0));
        s.submit(job(2, 1, 0.0));
        let outcomes = s.run_iteration();
        assert_eq!(placed_ids(&outcomes), vec![]);
        assert!(matches!(
            outcomes[..],
            [PlacementOutcome::WaitingForCapacity { id: JobId(1) }]
        ));
        assert_eq!(s.queue().len(), 2);

        s.complete(JobId(0));
        let outcomes = s.run_iteration();
        assert_eq!(placed_ids(&outcomes), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn postponing_policy_lets_small_jobs_through() {
        let mut s = scheduler(PolicyKind::TopoAwareP, 1);
        s.submit(job(0, 4, 0.0));
        s.run_iteration();
        s.submit(job(1, 2, 0.0));
        s.submit(job(2, 1, 0.0));
        let outcomes = s.run_iteration();
        // No capacity for either (machine fully busy) — has_free_resources
        // is false, so nothing even gets popped.
        assert!(outcomes.is_empty());
        s.complete(JobId(0));
        let outcomes = s.run_iteration();
        assert_eq!(placed_ids(&outcomes), vec![JobId(1), JobId(2)]);
    }

    #[test]
    fn iteration_terminates_with_everything_postponed() {
        let mut s = scheduler(PolicyKind::TopoAwareP, 1);
        s.submit(job(0, 1, 0.3));
        s.submit(job(1, 1, 0.3));
        s.run_iteration();
        // Remaining GPUs are one per socket; two 2-GPU jobs will both be
        // postponed — the iteration must still end.
        s.submit(job(2, 2, 0.5));
        s.submit(job(3, 2, 0.5));
        let outcomes = s.run_iteration();
        assert_eq!(outcomes.len(), 2);
        assert!(placed_ids(&outcomes).is_empty());
        assert!(s.queue().contains(JobId(2)) && s.queue().contains(JobId(3)));
    }

    #[test]
    fn cancel_covers_queued_postponed_and_running_jobs() {
        use super::CancelOutcome;
        let mut s = scheduler(PolicyKind::TopoAwareP, 1);
        // Running job.
        s.submit(job(0, 1, 0.3));
        s.run_iteration();
        // Queued job that cannot start (machine needs to free up for 4).
        s.submit(job(1, 4, 0.0));
        s.run_iteration();

        // Cancel the queued one: capacity accounting untouched.
        assert_eq!(s.cancel(JobId(1)), CancelOutcome::Dequeued);
        assert!(!s.queue().contains(JobId(1)));

        // Cancel the running one: GPUs come back.
        let before = s.state().total_free();
        match s.cancel(JobId(0)) {
            CancelOutcome::Stopped(alloc) => assert_eq!(alloc.spec.id, JobId(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.state().total_free(), before + 1);

        // Unknown job.
        assert_eq!(s.cancel(JobId(42)), CancelOutcome::NotFound);
    }

    #[test]
    fn cancelling_a_blocking_head_unblocks_fcfs() {
        use super::CancelOutcome;
        let mut s = scheduler(PolicyKind::Fcfs, 1);
        s.submit(job(0, 3, 0.0));
        s.run_iteration();
        s.submit(job(1, 2, 0.0)); // stuck behind capacity
        s.submit(job(2, 1, 0.0)); // stuck behind J1 (in-order)
        s.run_iteration();
        assert_eq!(s.state().n_running(), 1);

        assert_eq!(s.cancel(JobId(1)), CancelOutcome::Dequeued);
        let outcomes = s.run_iteration();
        assert_eq!(placed_ids(&outcomes), vec![JobId(2)], "J2 should now run");
    }

    #[test]
    fn best_fit_consolidates_onto_used_machines() {
        let mut s = scheduler(PolicyKind::BestFit, 2);
        s.submit(job(0, 2, 0.0));
        s.run_iteration();
        s.submit(job(1, 2, 0.0));
        let outcomes = s.run_iteration();
        match &outcomes[..] {
            [PlacementOutcome::Placed { gpus, .. }] => {
                assert_eq!(gpus[0].machine, MachineId(0), "BF packs machine 0 first");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
