//! Placement enforcement (§5.1).
//!
//! "For enforcing the decisions, before executing any application, the
//! system first defines the order of the GPU IDs by exporting the parameter
//! `CUDA_DEVICE_ORDER=PCI_BUS_ID`, and then, for each application, it
//! exposes only the specified GPU list from the scheduler decisions using
//! the parameter `CUDA_VISIBLE_DEVICES=$gpu_list`. For preventing
//! performance variability related to NUMA remote memory access, the
//! applications with only GPUs in the same socket are bound to the socket
//! using the command `numactl`."
//!
//! This module turns an [`Allocation`] into exactly that launch recipe.

use crate::state::Allocation;
use gts_topo::{MachineTopology, NumaInfo, SocketId};

/// Environment and command-prefix recipe for launching a placed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchPlan {
    /// Environment variables to export, in order.
    pub env: Vec<(String, String)>,
    /// `numactl` prefix for single-socket allocations.
    pub numactl_prefix: Option<String>,
}

impl LaunchPlan {
    /// Renders the full shell command line for a training command.
    pub fn command_line(&self, base_cmd: &str) -> String {
        let mut parts: Vec<String> = self
            .env
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if let Some(prefix) = &self.numactl_prefix {
            parts.push(prefix.clone());
        }
        parts.push(base_cmd.to_string());
        parts.join(" ")
    }
}

/// Builds the §5.1 launch plan for an allocation on its (single) machine.
///
/// `numa` is the parsed `numactl --hardware` output when available; without
/// it the socket binding falls back to the generic
/// `--cpunodebind/--membind` form.
///
/// # Panics
///
/// Panics if the allocation spans machines — enforcement happens per
/// machine; anti-collocated jobs get one plan per shard via
/// [`Allocation::gpus_on`].
pub fn launch_plan(
    alloc: &Allocation,
    topo: &MachineTopology,
    numa: Option<&NumaInfo>,
) -> LaunchPlan {
    assert!(
        alloc.is_single_node(),
        "launch plans are per machine; split multi-node allocations first"
    );
    let machine = alloc.gpus[0].machine;
    let local = alloc.gpus_on(machine);

    let gpu_list = local
        .iter()
        .map(|g| g.0.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let env = vec![
        ("CUDA_DEVICE_ORDER".to_string(), "PCI_BUS_ID".to_string()),
        ("CUDA_VISIBLE_DEVICES".to_string(), gpu_list),
    ];

    // Socket binding only when every GPU lives on one socket.
    let sockets: Vec<SocketId> = {
        let mut s: Vec<SocketId> = local.iter().map(|&g| topo.socket_of(g)).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let numactl_prefix = (sockets.len() == 1).then(|| {
        let socket = sockets[0];
        match numa {
            Some(info) => info.bind_command(socket),
            None => format!(
                "numactl --cpunodebind={id} --membind={id}",
                id = socket.0
            ),
        }
    });

    LaunchPlan { env, numactl_prefix }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::on_machine;
    use gts_job::{BatchClass, JobSpec, NnModel};
    use gts_topo::{power8_minsky, GpuId, MachineId};

    fn alloc(gpus: &[u32]) -> Allocation {
        Allocation {
            spec: JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, gpus.len() as u32),
            gpus: on_machine(
                MachineId(0),
                &gpus.iter().map(|&g| GpuId(g)).collect::<Vec<_>>(),
            ),
            utility: 1.0,
        }
    }

    #[test]
    fn packed_job_gets_visible_devices_and_numa_binding() {
        let topo = power8_minsky();
        let plan = launch_plan(&alloc(&[2, 3]), &topo, None);
        assert_eq!(
            plan.env,
            vec![
                ("CUDA_DEVICE_ORDER".into(), "PCI_BUS_ID".into()),
                ("CUDA_VISIBLE_DEVICES".into(), "2,3".into()),
            ]
        );
        assert_eq!(
            plan.numactl_prefix.as_deref(),
            Some("numactl --cpunodebind=1 --membind=1")
        );
        assert_eq!(
            plan.command_line("caffe train --solver=solver.prototxt"),
            "CUDA_DEVICE_ORDER=PCI_BUS_ID CUDA_VISIBLE_DEVICES=2,3 \
             numactl --cpunodebind=1 --membind=1 caffe train --solver=solver.prototxt"
        );
    }

    #[test]
    fn spread_job_is_not_numa_bound() {
        let topo = power8_minsky();
        let plan = launch_plan(&alloc(&[1, 2]), &topo, None);
        assert!(plan.numactl_prefix.is_none());
        assert_eq!(plan.env[1].1, "1,2");
        assert_eq!(
            plan.command_line("caffe train"),
            "CUDA_DEVICE_ORDER=PCI_BUS_ID CUDA_VISIBLE_DEVICES=1,2 caffe train"
        );
    }

    #[test]
    fn numa_info_feeds_the_binding() {
        let topo = power8_minsky();
        let numactl_text = "\
node 0 cpus: 0 1 2 3
node 1 cpus: 4 5 6 7
node distances:
node   0   1
  0:  10  40
  1:  40  10
";
        let info = NumaInfo::parse(numactl_text).unwrap();
        let plan = launch_plan(&alloc(&[0]), &topo, Some(&info));
        assert_eq!(
            plan.numactl_prefix.as_deref(),
            Some("numactl --cpunodebind=0 --membind=0")
        );
    }

    #[test]
    #[should_panic(expected = "per machine")]
    fn multi_node_allocations_are_rejected() {
        let topo = power8_minsky();
        let a = Allocation {
            spec: JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2),
            gpus: vec![
                gts_topo::GlobalGpuId { machine: MachineId(0), gpu: GpuId(0) },
                gts_topo::GlobalGpuId { machine: MachineId(1), gpu: GpuId(0) },
            ],
            utility: 1.0,
        };
        launch_plan(&a, &topo, None);
    }
}
