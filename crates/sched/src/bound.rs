//! Admissible per-shard utility upper bound for branch-and-bound pruning.
//!
//! The two-level sharded decision path ([`crate::Policy`]) evaluates every
//! admitted shard even though the selection window only keeps candidates
//! within `FRAG_TIE_EPS` of the best utility. This module computes, from
//! the [`crate::ShardIndex`] aggregates alone (free/idle histograms, static
//! class sets and geometry — all maintained O(1) per mutation), an upper
//! bound on the utility any candidate inside a shard can reach for the job
//! at hand. A shard whose bound falls below the floor established by
//! already-known results is provably irrelevant: none of its candidates
//! could enter the selection window or move `u_max`, so skipping it is
//! *exact*, not approximate (DESIGN.md §11).
//!
//! Admissibility argument (per Eq. 2 component, each bounded by a value
//! computed through the *same* float operations as the real evaluation, so
//! the dominance holds in IEEE arithmetic, not just over the reals):
//!
//! - `u_cc ≤ 1` by construction (`u_cc_from_costs` clamps; non-communicating
//!   jobs score exactly 1).
//! - `u_b` (Eq. 4): an idle machine has no co-runners, so `u_b = 1` is
//!   achievable and bounds the bucket. An occupied machine with `k` free
//!   GPUs hosts between 1 and `W_s − k` co-runner jobs (each holds ≥ 1 GPU;
//!   `W_s` is the shard's widest machine). Every real Eq. 4 term is
//!   dominated by the synthetic term built from the *library-wide minimum*
//!   sensitivity/pressure at the weakest domain factor (0.35, same machine
//!   across sockets): suffered slowdowns only grow with real coefficients,
//!   caused slowdowns only grow likewise, and `x ↦ 1/(1+min(x,0.75))` is
//!   antitone. Taking the prefix maximum over co-runner counts `1..=c`
//!   makes the table monotone in the count bound.
//! - `u_d` (Eq. 5 proxy): `n` GPUs on a machine whose widest socket holds
//!   `max_socket` GPUs must span at least `ceil(n / max_socket)` sockets
//!   (pigeonhole), and `u_domains_from_span` is antitone in the span.
//!
//! The composed bound runs through [`gts_map::utility()`] itself with the
//! same weights, preserving the op-for-op float dominance end to end. Debug
//! builds shadow-evaluate every pruned shard and assert the bound held
//! (`Policy::decide_topo_sharded`).

use crate::shard::ShardIndex;
use crate::state::ClusterState;
use gts_job::{BatchClass, JobProfile, JobSpec, NnModel};
use gts_map::{UtilityComponents, UtilityWeights};
use gts_perf::calibration::DOMAIN_SAME_MACHINE;

/// Per-decision context for the shard utility bound: everything that
/// depends on the job and the profile library, precomputed once so each
/// shard's bound is an O(histogram width) fold over the aggregates.
pub struct ShardBoundCtx {
    /// GPUs the job requests.
    n: usize,
    weights: UtilityWeights,
    /// `ub_occ_max[c]` — upper bound on Eq. 4 for a placement on an
    /// occupied machine hosting between 1 and `c` co-runner jobs (prefix
    /// max of the synthetic weakest-co-runner Eq. 4; index 0 unused).
    ub_occ_max: Vec<f64>,
    /// Per topology class: pigeonhole upper bound on `u_domains` for an
    /// `n`-GPU placement on a machine of that class.
    ud_by_class: Vec<f64>,
}

impl ShardBoundCtx {
    /// Builds the bound context for placing `job` on `state`'s cluster.
    ///
    /// Cost: one pass over the (closed, 12-entry) profile library, one
    /// Eq. 4 evaluation per possible co-runner count, one
    /// `u_domains_from_span` per machine class — microseconds, amortized
    /// over every memo-miss shard of the decision.
    pub fn new(state: &ClusterState, job: &JobSpec, weights: UtilityWeights) -> Self {
        let shards = state.shards();
        let profiles = state.profiles();
        let cand = *profiles.get(job.model, job.batch);
        // The profile library is closed: every running job's profile is one
        // of the |models| × |batches| entries, so the library minima bound
        // any co-runner's coefficients without consulting the running set.
        let mut s_min = f64::INFINITY;
        let mut p_min = f64::INFINITY;
        for model in NnModel::ALL {
            for batch in BatchClass::ALL {
                let p = profiles.get(model, batch);
                s_min = s_min.min(p.sensitivity);
                p_min = p_min.min(p.pressure);
            }
        }
        let weak = JobProfile { sensitivity: s_min, pressure: p_min, ..cand };
        let w_max = (0..shards.n_shards()).map(|s| shards.max_width(s)).max().unwrap_or(0);
        let mut ub_occ_max = vec![1.0; w_max + 1];
        let mut pack: Vec<(JobProfile, f64)> = Vec::with_capacity(w_max);
        let mut best = f64::NEG_INFINITY;
        for slot in ub_occ_max.iter_mut().skip(1) {
            pack.push((weak, DOMAIN_SAME_MACHINE));
            best = best.max(cand.eq4_interference(&pack));
            *slot = best;
        }
        let n = job.n_gpus as usize;
        let ud_by_class: Vec<f64> = shards
            .class_geom()
            .iter()
            .map(|&(n_sockets, max_socket)| {
                if max_socket == 0 {
                    // Class with no GPUs — can never host a candidate.
                    1.0
                } else {
                    let span = n.div_ceil(max_socket as usize).clamp(1, (n_sockets as usize).max(1));
                    UtilityComponents::u_domains_from_span(span, n_sockets as usize)
                }
            })
            .collect();
        Self { n, weights, ub_occ_max, ud_by_class }
    }

    /// The admissible utility upper bound for `shard`: no candidate machine
    /// in the shard can yield a placement utility above this value.
    /// Returns `NEG_INFINITY` when no machine in the shard has capacity
    /// (admission should already have filtered such shards out).
    pub fn shard_bound(&self, shards: &ShardIndex, shard: usize) -> f64 {
        let hist = shards.hist(shard);
        let idle = shards.idle_hist(shard);
        let w_s = shards.max_width(shard);
        let mut ub_b = f64::NEG_INFINITY;
        for k in self.n..hist.len() {
            if idle[k] > 0 {
                // An idle machine wide enough for the job: zero co-runners,
                // Eq. 4 is exactly 1 — nothing can beat that.
                ub_b = 1.0;
                break;
            }
            if hist[k] > 0 {
                // Occupied machines with k free GPUs host 1..=W_s−k jobs
                // (k == W_s would force the machine idle, so the subtraction
                // stays ≥ 1; the clamp is defensive).
                let c_max = w_s.saturating_sub(k).clamp(1, self.ub_occ_max.len() - 1);
                ub_b = ub_b.max(self.ub_occ_max[c_max]);
            }
        }
        if ub_b == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let mut ud = f64::NEG_INFINITY;
        for &class in shards.classes_in(shard) {
            ud = ud.max(self.ud_by_class[class as usize]);
        }
        // Same composition op order as the real evaluation — dominance
        // survives float rounding (see module docs).
        gts_map::utility(
            UtilityComponents { u_cc: 1.0, u_interference: ub_b, u_domains: ud },
            self.weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::placement_utility;
    use crate::shard::ShardSpec;
    use gts_perf::ProfileLibrary;
    use gts_topo::{power8_minsky, ClusterTopology, GlobalGpuId, GpuId, MachineId};
    use std::sync::Arc;

    fn state(n_machines: usize, shards: usize) -> ClusterState {
        let machine = power8_minsky();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
        let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
        ClusterState::new(cluster, profiles).with_shards(ShardSpec::Count(shards))
    }

    fn spec(id: u64, gpus: u32) -> JobSpec {
        JobSpec::new(id, gts_job::NnModel::AlexNet, gts_job::BatchClass::Tiny, gpus)
    }

    fn g(m: u32, gpu: u32) -> GlobalGpuId {
        GlobalGpuId { machine: MachineId(m), gpu: GpuId(gpu) }
    }

    #[test]
    fn idle_shard_bound_is_exactly_one_for_single_gpu_jobs() {
        // Fresh cluster: every machine idle. A 1-GPU job fits in one socket
        // (span 1 → u_d = 1), has no co-runners (u_b = 1) and u_cc = 1, so
        // the bound must be utility(1,1,1) = 1 exactly with default weights.
        let s = state(4, 2);
        let ctx = ShardBoundCtx::new(&s, &spec(0, 1), UtilityWeights::default());
        for shard in 0..s.shards().n_shards() {
            assert_eq!(ctx.shard_bound(s.shards(), shard), 1.0);
        }
    }

    #[test]
    fn idle_shard_bound_reflects_pigeonhole_socket_span() {
        // A minsky has 2 sockets × 2 GPUs: a 3-GPU placement must span both
        // sockets, so u_d = 0 even on an idle machine. The bound must be
        // exactly w_cc·1 + w_b·1 + w_d·0 = 2/3 with default weights — i.e.
        // the pigeonhole argument tightens the bound below 1.
        let s = state(2, 1);
        let w = UtilityWeights::default();
        let ctx = ShardBoundCtx::new(&s, &spec(0, 3), w);
        let expected = gts_map::utility(
            UtilityComponents { u_cc: 1.0, u_interference: 1.0, u_domains: 0.0 },
            w,
        );
        assert_eq!(ctx.shard_bound(s.shards(), 0), expected);
        assert!(expected < 0.7);
    }

    #[test]
    fn occupied_shard_bound_drops_below_idle_and_dominates_real_utilities() {
        // Shard 0 = machine 0 (occupied by a co-runner), shard 1 = machine 1
        // (idle). The occupied shard's bound must fall strictly below the
        // idle bound for an interference-sensitive job, yet still dominate
        // the true utility of every concrete placement inside the shard —
        // the admissibility contract the pruner relies on.
        let mut s = state(2, 2);
        s.place(spec(0, 1), vec![g(0, 0)], 1.0);
        let job = spec(1, 1);
        let w = UtilityWeights::default();
        let ctx = ShardBoundCtx::new(&s, &job, w);
        let occupied = ctx.shard_bound(s.shards(), 0);
        let idle = ctx.shard_bound(s.shards(), 1);
        assert_eq!(idle, 1.0);
        assert!(occupied < idle, "occupied bound {occupied} should be < idle bound {idle}");
        for gpu in 1..4 {
            let u = placement_utility(&s, MachineId(0), &job, &[GpuId(gpu)], w);
            assert!(
                u <= occupied,
                "placement on gpu {gpu} scored {u}, above the bound {occupied}"
            );
        }
    }

    #[test]
    fn bound_is_admissible_across_mutations_and_corunner_mixes() {
        // Brute-force admissibility: after every mutation (place, multi-node
        // place, release, failure, recovery) and for every library profile,
        // every single-GPU placement utility stays ≤ its shard's bound, and
        // the audit's bound-state check (check 9) stays green.
        let mut s = state(4, 2);
        s.place(spec(0, 2), vec![g(0, 0), g(0, 1)], 1.0);
        s.place(spec(1, 3), vec![g(1, 0), g(1, 1), g(2, 3)], 0.8);
        s.set_machine_down(MachineId(3), true);
        s.audit().unwrap();

        let check = |s: &ClusterState| {
            for model in gts_job::NnModel::ALL {
                for batch in gts_job::BatchClass::ALL {
                    let job = JobSpec::new(99, model, batch, 1);
                    let ctx = ShardBoundCtx::new(s, &job, UtilityWeights::default());
                    for shard in 0..s.shards().n_shards() {
                        let bound = ctx.shard_bound(s.shards(), shard);
                        for &m in s.shards().machines(shard) {
                            if s.is_machine_down(m) {
                                continue;
                            }
                            for gpu in s.free_gpus(m) {
                                let u = placement_utility(
                                    s,
                                    m,
                                    &job,
                                    &[gpu],
                                    UtilityWeights::default(),
                                );
                                assert!(
                                    u <= bound,
                                    "{model:?}/{batch:?} on {m:?} scored {u} > bound {bound}"
                                );
                            }
                        }
                    }
                }
            }
        };
        check(&s);

        s.set_machine_down(MachineId(3), false);
        s.release(gts_job::JobId(1));
        s.audit().unwrap();
        check(&s);

        s.release(gts_job::JobId(0));
        s.audit().unwrap();
        check(&s);
    }
}
