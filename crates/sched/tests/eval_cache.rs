//! Integration tests for the cross-event placement cache and the
//! incrementally maintained machine class index (DESIGN.md §9).
//!
//! The unit tests in `eval.rs` cover the cache data structure; these tests
//! drive the *public* surface: `Policy::decide_with_cache` under LRU
//! pressure, and the `ClusterState` class index across every mutation kind
//! — with `audit()` (whose check 7 re-derives every key from scratch)
//! after each step.

use gts_job::{BatchClass, JobId, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::eval::EvalCache;
use gts_sched::state::on_machine;
use gts_sched::{ClusterState, EvalParams, Policy, PolicyKind};
use gts_topo::{power8_minsky, ClusterTopology, GlobalGpuId, MachineId};
use std::sync::Arc;

fn fresh_state(n_machines: usize) -> ClusterState {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    ClusterState::new(cluster, profiles)
}

/// Occupies the state so candidate machines differ (co-runners on M0, a
/// busy socket on M1) and decisions are non-trivial.
fn occupied_state() -> ClusterState {
    let mut state = fresh_state(3);
    let a = JobSpec::new(9001, NnModel::AlexNet, BatchClass::Small, 2);
    let free = state.free_gpus(MachineId(0));
    state.place(a, on_machine(MachineId(0), &free[..2]), 1.0);
    let b = JobSpec::new(9002, NnModel::GoogLeNet, BatchClass::Big, 1);
    let free = state.free_gpus(MachineId(1));
    state.place(b, on_machine(MachineId(1), &free[..1]), 1.0);
    state.audit().expect("setup state audits clean");
    state
}

/// Every (model, batch, width) combination — far more job classes than a
/// capacity-1 cache (one entry per shard) can hold.
fn job_classes() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for model in [NnModel::AlexNet, NnModel::CaffeRef, NnModel::GoogLeNet] {
        for batch in [BatchClass::Tiny, BatchClass::Small, BatchClass::Medium, BatchClass::Big] {
            for n_gpus in 1..=2u32 {
                jobs.push(JobSpec::new(id, model, batch, n_gpus));
                id += 1;
            }
        }
    }
    jobs
}

/// A cache too small for the working set must evict — and every decision
/// made through it, including re-decisions of evicted classes, must be
/// bit-identical to uncached evaluation.
#[test]
fn lru_eviction_then_recompute_is_bit_identical() {
    let state = occupied_state();
    let policy = Policy::new(PolicyKind::TopoAware);
    let params = EvalParams::parallel(2);
    let tiny = EvalCache::with_capacity(1);
    let jobs = job_classes();

    // First sweep: mostly misses, with evictions as classes churn through
    // the tiny shards.
    let first: Vec<_> = jobs
        .iter()
        .map(|j| policy.decide_with_cache(&state, j, params, Some(&tiny)))
        .collect();
    let stats = tiny.stats();
    assert!(stats.misses > 0, "sweep must populate the cache");
    assert!(
        stats.evictions > 0,
        "24 job classes through 8 one-entry shards must evict, got {stats:?}"
    );

    // Second sweep: evicted classes recompute; answers must not drift.
    let second: Vec<_> = jobs
        .iter()
        .map(|j| policy.decide_with_cache(&state, j, params, Some(&tiny)))
        .collect();

    // Reference: no cache at all.
    for (i, job) in jobs.iter().enumerate() {
        let reference = policy.decide_with(&state, job, params);
        for (label, got) in [("first", &first[i]), ("second", &second[i])] {
            match (&reference, got) {
                (None, None) => {}
                (Some(want), Some(have)) => {
                    assert_eq!(want.gpus, have.gpus, "job {i} ({label} sweep): gpus");
                    assert_eq!(
                        want.utility.to_bits(),
                        have.utility.to_bits(),
                        "job {i} ({label} sweep): utility bits"
                    );
                }
                other => panic!("job {i} ({label} sweep): {other:?}"),
            }
        }
    }
}

/// A roomy cache must answer repeat sweeps from memory (hits) and still
/// agree with the uncached reference.
#[test]
fn warm_cache_serves_hits_without_drift() {
    let state = occupied_state();
    let policy = Policy::new(PolicyKind::TopoAwareP);
    let params = EvalParams::parallel(2);
    let cache = EvalCache::with_capacity(4096);
    let jobs = job_classes();

    for j in &jobs {
        policy.decide_with_cache(&state, j, params, Some(&cache));
    }
    let cold = cache.stats();
    for j in &jobs {
        let cached = policy.decide_with_cache(&state, j, params, Some(&cache));
        let reference = policy.decide_with(&state, j, params);
        assert_eq!(
            cached.map(|d| (d.gpus, d.utility.to_bits())),
            reference.map(|d| (d.gpus, d.utility.to_bits())),
            "{} diverged on the warm sweep",
            j.id
        );
    }
    let warm = cache.stats();
    assert_eq!(warm.misses, cold.misses, "warm sweep must not miss");
    assert!(warm.hits > cold.hits, "warm sweep must hit");
    assert_eq!(warm.evictions, 0, "capacity 4096 must not evict here");
}

/// The incrementally maintained class index must stay equal to a
/// from-scratch derivation across place, release, failure, recovery, and
/// multi-node teardown — `audit()` check 7 does the re-derivation.
#[test]
fn class_index_tracks_every_mutation_kind() {
    let mut state = fresh_state(3);
    let (m0, m1, m2) = (MachineId(0), MachineId(1), MachineId(2));

    // Pristine machines are one equivalence class: equal keys, equal hashes.
    assert_eq!(state.machine_class_key(m0), state.machine_class_key(m1));
    assert_eq!(
        state.machine_class_key(m0).hash_bits(),
        state.machine_class_key(m2).hash_bits()
    );
    state.audit().expect("pristine");

    // Place: the touched machine leaves the empty class.
    let spec = JobSpec::new(0, NnModel::AlexNet, BatchClass::Small, 2);
    let free = state.free_gpus(m0);
    state.place(spec, on_machine(m0, &free[..2]), 1.0);
    state.audit().expect("after place");
    assert_ne!(state.machine_class_key(m0), state.machine_class_key(m1));
    assert_eq!(state.corunners(m0).len(), 1);
    // The key interns the same co-runner signature the oracle reads.
    assert!(Arc::ptr_eq(
        state.corunners(m0),
        &state.machine_class_key(m0).inner().corunners
    ));

    // An identically loaded machine rejoins the same class.
    let spec = JobSpec::new(1, NnModel::AlexNet, BatchClass::Small, 2);
    let free = state.free_gpus(m1);
    state.place(spec, on_machine(m1, &free[..2]), 1.0);
    state.audit().expect("after twin place");
    assert_eq!(state.machine_class_key(m0), state.machine_class_key(m1));
    assert_eq!(
        state.machine_class_key(m0).hash_bits(),
        state.machine_class_key(m1).hash_bits()
    );

    // Release: back to the empty class.
    state.release(JobId(0));
    state.audit().expect("after release");
    assert_eq!(state.machine_class_key(m0), state.machine_class_key(m2));

    // Failure and recovery: a down machine keys differently (no capacity),
    // a recovered one rejoins the empty class.
    state.set_machine_down(m2, true);
    state.audit().expect("after failure");
    assert_ne!(state.machine_class_key(m2), state.machine_class_key(m0));
    state.set_machine_down(m2, false);
    state.audit().expect("after recovery");
    assert_eq!(state.machine_class_key(m2), state.machine_class_key(m0));

    // Multi-node allocation: both spanned machines change class on place
    // and revert on teardown.
    state.release(JobId(1));
    state.audit().expect("drained");
    let mut wide = JobSpec::new(2, NnModel::GoogLeNet, BatchClass::Big, 4);
    wide.constraints = gts_job::Constraints { single_node: false, anti_collocate: false };
    let mut gpus: Vec<GlobalGpuId> = Vec::new();
    gpus.extend(on_machine(m0, &state.free_gpus(m0)[..2]));
    gpus.extend(on_machine(m1, &state.free_gpus(m1)[..2]));
    state.place(wide, gpus, 1.0);
    state.audit().expect("after multi-node place");
    assert_ne!(state.machine_class_key(m0), state.machine_class_key(m2));
    assert_ne!(state.machine_class_key(m1), state.machine_class_key(m2));
    // Both spanned machines see the same co-runner (same job), but their
    // keys still differ from each other only if their masks differ — here
    // both host GPUs 0-1, so they are one class.
    assert_eq!(state.machine_class_key(m0), state.machine_class_key(m1));

    state.release(JobId(2));
    state.audit().expect("after multi-node teardown");
    assert_eq!(state.machine_class_key(m0), state.machine_class_key(m2));
    assert_eq!(state.machine_class_key(m1), state.machine_class_key(m2));
}
