//! Integration tests for the machine-partition shard index behind the
//! two-level decision path (DESIGN.md §10).
//!
//! The unit tests in `shard.rs` cover the data structure; these tests
//! drive the *public* surface: shard aggregates staying exact across every
//! `ClusterState` mutation kind — with `audit()` (whose check 8 re-derives
//! the whole shard index from scratch) after each step — plus the
//! admission pre-pass counters and flat-vs-sharded decision equivalence.

use gts_job::{BatchClass, Constraints, JobId, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::state::on_machine;
use gts_sched::{ClusterState, EvalParams, Policy, PolicyKind, ShardSpec};
use gts_topo::{power8_minsky, ClusterTopology, GlobalGpuId, MachineId};
use std::sync::Arc;

/// A 2-racks × 2-machines cluster; the default (auto) shard spec follows
/// the racks, so this state has two shards of two machines each.
fn racked_state() -> ClusterState {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 2, 2));
    ClusterState::new(cluster, profiles)
}

fn place_n(state: &mut ClusterState, id: u64, machine: MachineId, n: usize) {
    let spec = JobSpec::new(id, NnModel::AlexNet, BatchClass::Small, n as u32);
    let free = state.free_gpus(machine);
    state.place(spec, on_machine(machine, &free[..n]), 1.0);
}

/// Shard aggregates must track place, release, failure, recovery, and
/// multi-node teardown exactly — audit() re-derives them from scratch
/// after every step.
#[test]
fn shard_aggregates_track_every_mutation_kind() {
    let mut state = racked_state();
    let per_machine = 4; // power8_minsky GPU count
    assert_eq!(state.shards().n_shards(), 2, "auto spec must follow the racks");
    assert_eq!(state.shards().shard_of(MachineId(1)), 0);
    assert_eq!(state.shards().shard_of(MachineId(2)), 1);
    assert_eq!(state.shards().cluster_free(), 4 * per_machine);
    assert_eq!(state.total_free(), state.shards().cluster_free());
    state.audit().expect("pristine");

    // Place in shard 0: only shard 0's aggregate moves.
    place_n(&mut state, 0, MachineId(0), 2);
    state.audit().expect("after place");
    assert_eq!(state.shards().free_in(0), 2 * per_machine - 2);
    assert_eq!(state.shards().free_in(1), 2 * per_machine);
    assert_eq!(state.shards().max_free(0), per_machine);

    // Fill machine 0 entirely: shard 0 can still admit 4-wide via machine 1.
    place_n(&mut state, 1, MachineId(0), 2);
    state.audit().expect("machine 0 full");
    assert!(state.shards().has_capacity(0, per_machine));
    place_n(&mut state, 2, MachineId(1), 3);
    state.audit().expect("machine 1 mostly full");
    assert!(!state.shards().has_capacity(0, 2), "widest free block in shard 0 is 1");
    assert!(state.shards().has_capacity(0, 1));
    assert_eq!(state.shards().max_free(0), 1);

    // Release: aggregates return with the GPUs.
    state.release(JobId(2));
    state.audit().expect("after release");
    assert!(state.shards().has_capacity(0, per_machine));

    // Failure: the machine's free GPUs leave its shard's aggregates; a
    // recovered machine brings them back.
    state.set_machine_down(MachineId(3), true);
    state.audit().expect("after failure");
    assert_eq!(state.shards().free_in(1), per_machine);
    state.set_machine_down(MachineId(3), false);
    state.audit().expect("after recovery");
    assert_eq!(state.shards().free_in(1), 2 * per_machine);

    // Multi-node allocation spanning both shards, then teardown.
    let mut wide = JobSpec::new(3, NnModel::GoogLeNet, BatchClass::Big, 4);
    wide.constraints = Constraints { single_node: false, anti_collocate: false };
    let mut gpus: Vec<GlobalGpuId> = Vec::new();
    gpus.extend(on_machine(MachineId(1), &state.free_gpus(MachineId(1))[..2]));
    gpus.extend(on_machine(MachineId(2), &state.free_gpus(MachineId(2))[..2]));
    state.place(wide, gpus, 1.0);
    state.audit().expect("after multi-node place");
    assert_eq!(state.shards().free_in(0), per_machine - 2);
    assert_eq!(state.shards().free_in(1), 2 * per_machine - 2);
    state.release(JobId(3));
    state.audit().expect("after multi-node teardown");
    assert_eq!(state.shards().cluster_free(), 4 * per_machine - 4);
}

/// `machines_with_capacity` routes through the shard histograms; its
/// output must equal the flat definition (every machine, ascending id,
/// with enough free GPUs) for any shard count.
#[test]
fn capacity_scan_is_shard_count_invariant() {
    for shards in [1usize, 2, 3, 4] {
        let mut state = racked_state().with_shards(ShardSpec::Count(shards));
        place_n(&mut state, 0, MachineId(0), 4);
        place_n(&mut state, 1, MachineId(2), 3);
        state.audit().expect("occupied state audits clean");
        for want in 1..=4usize {
            let got = state.machines_with_capacity(want);
            let flat: Vec<MachineId> = (0..4)
                .map(MachineId)
                .filter(|&m| state.free_gpus(m).len() >= want)
                .collect();
            assert_eq!(got, flat, "width {want} with {shards} shard(s)");
        }
    }
}

/// The admission pre-pass must count every examined shard and skip shards
/// whose widest free block is too narrow — without changing the decision.
#[test]
fn admission_pass_skips_saturated_shards() {
    let mut state = racked_state();
    // Saturate rack 0 (shard 0) completely.
    place_n(&mut state, 0, MachineId(0), 4);
    place_n(&mut state, 1, MachineId(1), 4);
    state.audit().expect("rack 0 saturated");

    let policy = Policy::new(PolicyKind::TopoAware);
    let params = EvalParams::parallel(2);
    let job = JobSpec::new(100, NnModel::AlexNet, BatchClass::Small, 2);
    let decision = policy
        .decide_with_caches(&state, &job, params, None)
        .expect("rack 1 has room");
    assert!(
        decision.gpus.iter().all(|g| g.machine.0 >= 2),
        "placement must land in rack 1, got {:?}",
        decision.gpus
    );
    let (checked, skipped) = state.shards().admission_stats();
    assert_eq!(checked, 2, "both shards examined once");
    assert_eq!(skipped, 1, "saturated shard 0 must be skipped");

    // The single-shard reference path never counts.
    let flat = state.clone().with_shards(ShardSpec::Count(1));
    let same = policy
        .decide_with_caches(&flat, &job, params, None)
        .expect("still placeable");
    assert_eq!(flat.shards().admission_stats(), (0, 0));
    assert_eq!(decision.gpus, same.gpus);
    assert_eq!(decision.utility.to_bits(), same.utility.to_bits());
}

/// Sharded and single-shard decisions must agree bit for bit across job
/// classes and both topo-aware policies on a partially occupied cluster.
#[test]
fn sharded_decisions_match_single_shard_reference() {
    let mut sharded = racked_state();
    place_n(&mut sharded, 9001, MachineId(0), 2);
    place_n(&mut sharded, 9002, MachineId(2), 1);
    sharded.audit().expect("occupied state audits clean");
    let flat = sharded.clone().with_shards(ShardSpec::Count(1));
    assert_eq!(flat.shards().n_shards(), 1);

    let params = EvalParams::parallel(2);
    let mut id = 0u64;
    for kind in [PolicyKind::TopoAware, PolicyKind::TopoAwareP] {
        let policy = Policy::new(kind);
        for model in [NnModel::AlexNet, NnModel::CaffeRef, NnModel::GoogLeNet] {
            for batch in [BatchClass::Tiny, BatchClass::Medium, BatchClass::Big] {
                for n_gpus in 1..=4u32 {
                    let job = JobSpec::new(id, model, batch, n_gpus);
                    id += 1;
                    let a = policy.decide_with_caches(&sharded, &job, params, None);
                    let b = policy.decide_with_caches(&flat, &job, params, None);
                    assert_eq!(
                        a.as_ref().map(|d| (&d.gpus, d.utility.to_bits())),
                        b.as_ref().map(|d| (&d.gpus, d.utility.to_bits())),
                        "{kind} diverged on {model:?}/{batch:?}/{n_gpus}"
                    );
                }
            }
        }
    }
}
