//! Snapshot-invalidation edges of the cross-event decision-replay path
//! (`GTS_DECISION_REPLAY`, DESIGN.md §12).
//!
//! Each test drives the *public* `Scheduler` surface through an event
//! script twice — replay on vs replay off — and asserts the iteration
//! outcomes (placements, GPUs, utility bits) and final cluster occupancy
//! are identical, while the replay-on run actually exercised its
//! snapshots. The scripts target the edges where a stale snapshot would
//! be most tempting to trust: a machine failing and recovering while the
//! queue is blocked, a cancel landing on a job whose class is
//! snapshotted, and a multi-node teardown bumping several shard versions
//! between consecutive retries.

use gts_job::{BatchClass, Constraints, JobId, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::{
    CancelOutcome, ClusterState, DecisionReplayStats, EvalParams, PlacementOutcome, Policy,
    PolicyKind, Scheduler, SchedulerConfig,
};
use gts_topo::{power8_minsky, ClusterTopology, MachineId};
use std::sync::Arc;

/// What a scripted cancel must have found (the `Stopped` allocation
/// itself is run-dependent, so only the kind is asserted).
#[derive(Clone, Copy, Debug)]
enum CancelKind {
    Dequeued,
    Stopped,
}

/// One scripted driver event.
#[derive(Clone)]
enum Ev {
    Submit(JobSpec),
    Complete(JobId),
    Cancel(JobId, CancelKind),
    Fail(MachineId),
    Recover(MachineId),
    /// Run one Algorithm 1 iteration and record its outcomes.
    Drain,
}

/// A rack-partitioned cluster (auto shard spec follows the racks).
fn racked_state(n_racks: usize, per_rack: usize) -> ClusterState {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, n_racks, per_rack));
    ClusterState::new(cluster, profiles)
}

fn job(id: u64, gpus: u32) -> JobSpec {
    JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus).with_min_utility(0.3)
}

/// A job allowed to spill across machines (and shards).
fn wide_job(id: u64, gpus: u32) -> JobSpec {
    let mut spec = JobSpec::new(id, NnModel::GoogLeNet, BatchClass::Big, gpus)
        .with_min_utility(0.3);
    spec.constraints = Constraints { single_node: false, anti_collocate: false };
    spec
}

/// Replays the script on a fresh scheduler, auditing the state after every
/// drain. Returns the per-drain outcomes, the final per-machine occupancy
/// fingerprint, and the replay counters.
fn run_script(
    state: ClusterState,
    replay: bool,
    script: &[Ev],
) -> (Vec<Vec<PlacementOutcome>>, Vec<usize>, DecisionReplayStats) {
    let n_machines = state.cluster().machines().count();
    let config = SchedulerConfig {
        policy: Policy::new(PolicyKind::TopoAware),
        eval: EvalParams::parallel(2).with_decision_replay(replay),
        eval_cache: true,
    };
    let mut sched = Scheduler::new(state, config);
    let mut drains = Vec::new();
    for ev in script {
        match ev {
            Ev::Submit(spec) => sched.submit(spec.clone()),
            Ev::Complete(id) => {
                sched.complete(*id);
            }
            Ev::Cancel(id, want) => {
                let got = sched.cancel(*id);
                match want {
                    CancelKind::Dequeued => {
                        assert!(matches!(got, CancelOutcome::Dequeued), "{id:?}: {got:?}")
                    }
                    CancelKind::Stopped => {
                        assert!(matches!(got, CancelOutcome::Stopped(_)), "{id:?}: {got:?}")
                    }
                }
            }
            Ev::Fail(m) => sched.fail_machine(*m),
            Ev::Recover(m) => sched.recover_machine(*m),
            Ev::Drain => {
                drains.push(sched.run_iteration());
                sched.audit().expect("state audits clean after drain");
            }
        }
    }
    let occupancy: Vec<usize> =
        (0..n_machines).map(|m| sched.state().free_gpus(MachineId(m as u32)).len()).collect();
    let stats = sched.decision_replay_stats().expect("cache is on");
    (drains, occupancy, stats)
}

/// Outcome streams must agree bit for bit (utilities compared as bits).
#[track_caller]
fn assert_outcomes_identical(on: &[Vec<PlacementOutcome>], off: &[Vec<PlacementOutcome>]) {
    assert_eq!(on.len(), off.len(), "drain count diverged");
    for (i, (a, b)) in on.iter().zip(off).enumerate() {
        assert_eq!(a.len(), b.len(), "drain {i} outcome count diverged");
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (
                    PlacementOutcome::Placed { spec: sa, gpus: ga, utility: ua, slo_violated: va },
                    PlacementOutcome::Placed { spec: sb, gpus: gb, utility: ub, slo_violated: vb },
                ) => {
                    assert_eq!(sa.id, sb.id, "drain {i} placed a different job");
                    assert_eq!(ga, gb, "drain {i} placed {:?} elsewhere", sa.id);
                    assert_eq!(ua.to_bits(), ub.to_bits(), "drain {i} utility bits diverged");
                    assert_eq!(va, vb, "drain {i} SLO flag diverged");
                }
                _ => assert_eq!(x, y, "drain {i} outcome kind diverged"),
            }
        }
    }
}

/// Runs the script under replay on and off, asserts bit-identity, and
/// hands back the replay-on counters for activity assertions.
fn assert_replay_invariant(state: ClusterState, script: &[Ev]) -> DecisionReplayStats {
    let (on, occ_on, stats_on) = run_script(state.clone(), true, script);
    let (off, occ_off, stats_off) = run_script(state, false, script);
    assert_outcomes_identical(&on, &off);
    assert_eq!(occ_on, occ_off, "final occupancy diverged");
    assert_eq!(stats_off, DecisionReplayStats::default(), "replay off must not snapshot");
    stats_on
}

/// A machine fails while the queue head is blocked on capacity and later
/// recovers: the failure bumps its shard's version (and epoch bookkeeping),
/// so the head's retry must re-examine that shard instead of trusting the
/// pre-failure snapshot — and the recovery retry must see the machine
/// again.
#[test]
fn failure_and_recovery_mid_queue_invalidate_the_snapshot() {
    let state = racked_state(2, 2);
    let mut script = Vec::new();
    // Fill all four machines, then queue two more machine-filling jobs.
    for id in 0..4u64 {
        script.push(Ev::Submit(job(id, 4)));
    }
    script.push(Ev::Drain);
    script.push(Ev::Submit(job(10, 4)));
    script.push(Ev::Submit(job(11, 4)));
    // Head blocks: the decision snapshots a cluster with no capacity.
    script.push(Ev::Drain);
    // Tenant on machine 0 is cancelled, but the machine fails before the
    // retry — the freed GPUs must NOT admit the head.
    script.push(Ev::Cancel(JobId(0), CancelKind::Stopped));
    script.push(Ev::Fail(MachineId(0)));
    script.push(Ev::Drain);
    // Recovery makes the 4 GPUs real; the head must place on machine 0.
    script.push(Ev::Recover(MachineId(0)));
    script.push(Ev::Drain);
    // A completion elsewhere drains the second queued job too.
    script.push(Ev::Complete(JobId(3)));
    script.push(Ev::Drain);
    let stats = assert_replay_invariant(state, &script);
    assert!(stats.hits > 0, "blocked-head retries never replayed: {stats:?}");
}

/// Cancelling jobs around a snapshot: a cancel of a *running* job frees
/// capacity the snapshot predates (the retry must see it), and a cancel of
/// the *snapshotted queued job itself* must simply drop it — the orphaned
/// snapshot may linger but can never resurrect the job or leak into a
/// different job's decision (the snapshot key is the job class, and the
/// next same-class arrival revalidates versions before reuse).
#[test]
fn cancel_of_running_and_snapshotted_jobs_stays_exact() {
    let state = racked_state(2, 2);
    let mut script = Vec::new();
    for id in 0..4u64 {
        script.push(Ev::Submit(job(id, 4)));
    }
    script.push(Ev::Drain);
    // Two queued same-class jobs: the head's Waiting decision is
    // snapshotted.
    script.push(Ev::Submit(job(20, 4)));
    script.push(Ev::Submit(job(21, 4)));
    script.push(Ev::Drain);
    // Cancel the snapshotted head while it waits: it must vanish.
    script.push(Ev::Cancel(JobId(20), CancelKind::Dequeued));
    // Cancel a running job: capacity reappears on machine 1's shard and
    // the surviving queued job (same class as the dropped one) must place
    // there despite the stale no-capacity snapshot.
    script.push(Ev::Cancel(JobId(1), CancelKind::Stopped));
    script.push(Ev::Drain);
    // One more same-class arrival reuses the (now re-validated) snapshot
    // row without confusing it with the cancelled job.
    script.push(Ev::Submit(job(22, 4)));
    script.push(Ev::Drain);
    script.push(Ev::Complete(JobId(2)));
    script.push(Ev::Drain);
    let stats = assert_replay_invariant(state, &script);
    assert!(stats.hits > 0, "cancel scenario never replayed: {stats:?}");
}

/// A multi-node teardown releases GPUs on several machines at once,
/// bumping multiple shard versions between two retries of the same queued
/// class: the partial replay must re-evaluate every mutated shard, not
/// just one.
#[test]
fn multi_node_teardown_bumps_several_shards_between_retries() {
    let state = racked_state(3, 2);
    let mut script = Vec::new();
    // Occupy 2 of 4 GPUs on every machine, so no machine can host a
    // 4-GPU job but a spilling 8-GPU job spans several machines (and
    // with 2-machine racks, several shards).
    for id in 0..6u64 {
        script.push(Ev::Submit(job(id, 2)));
    }
    script.push(Ev::Drain);
    script.push(Ev::Submit(wide_job(30, 8)));
    script.push(Ev::Drain);
    // Queue two machine-filling jobs: the head blocks (every machine is
    // at least half full) and its class gets snapshotted.
    script.push(Ev::Submit(job(31, 4)));
    script.push(Ev::Submit(job(32, 4)));
    script.push(Ev::Drain);
    // A small completion in one shard: first retry partially replays.
    script.push(Ev::Complete(JobId(0)));
    script.push(Ev::Drain);
    // The multi-node teardown: GPUs return on machines across several
    // shards in one event, and the next retry must fold in all of them.
    script.push(Ev::Complete(JobId(30)));
    script.push(Ev::Drain);
    script.push(Ev::Complete(JobId(1)));
    script.push(Ev::Drain);
    let stats = assert_replay_invariant(state, &script);
    assert!(stats.hits > 0, "teardown scenario never replayed: {stats:?}");
    assert!(
        stats.shards_reeval > 0,
        "mutated shards must be re-evaluated, not trusted: {stats:?}"
    );
}
