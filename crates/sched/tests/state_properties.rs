//! Property tests over the allocation state: arbitrary interleavings of
//! place / release / fail / recover operations preserve the bookkeeping
//! invariants.

use gts_job::{BatchClass, JobId, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::state::on_machine;
use gts_sched::ClusterState;
use gts_topo::{power8_minsky, ClusterTopology, GpuId, MachineId, SocketId};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Place { machine: u32, demand: f64 },
    ReleaseOldest,
    Fail(u32),
    Recover(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..3, 0.0f64..60.0).prop_map(|(machine, demand)| Op::Place { machine, demand }),
        Just(Op::ReleaseOldest),
        (0u32..3).prop_map(Op::Fail),
        (0u32..3).prop_map(Op::Recover),
    ]
}

fn fresh_state() -> ClusterState {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 3));
    ClusterState::new(cluster, profiles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bookkeeping_invariants_hold_under_any_interleaving(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut state = fresh_state();
        let mut live: Vec<JobId> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Place { machine, demand } => {
                    let m = MachineId(machine);
                    let free = state.free_gpus(m);
                    if free.is_empty() || !state.fits_bw(m, &free[..1], demand) {
                        continue;
                    }
                    let spec = JobSpec::new(next_id, NnModel::AlexNet, BatchClass::Small, 1)
                        .with_bw_demand(demand);
                    state.place(spec, on_machine(m, &free[..1]), 1.0);
                    live.push(JobId(next_id));
                    next_id += 1;
                }
                Op::ReleaseOldest => {
                    if let Some(id) = live.first().copied() {
                        live.remove(0);
                        let alloc = state.release(id);
                        prop_assert_eq!(alloc.spec.id, id);
                    }
                }
                Op::Fail(machine) => {
                    let m = MachineId(machine);
                    // Only fail machines with nothing running (the driver's
                    // contract); otherwise skip.
                    if state.running_on(m).is_empty() {
                        state.set_machine_down(m, true);
                    }
                }
                Op::Recover(machine) => {
                    state.set_machine_down(MachineId(machine), false);
                }
            }

            // Invariant 1: free + allocated == capacity, per machine (down
            // machines report zero free but their GPUs are not leaked).
            let mut allocated_total = 0usize;
            let machines: Vec<MachineId> = state.cluster().machines().collect();
            for m in machines {
                let allocated: usize = state
                    .running_on(m)
                    .iter()
                    .map(|a| a.gpus_on(m).len())
                    .sum();
                allocated_total += allocated;
                if !state.is_machine_down(m) {
                    prop_assert_eq!(
                        state.free_count(m) + allocated,
                        4,
                        "machine {} leaks GPUs", m
                    );
                }
                // Invariant 2: committed bandwidth never exceeds capacity.
                let sockets: Vec<SocketId> = state.cluster().machine(m).sockets().collect();
                for s in sockets {
                    prop_assert!(state.socket_bw_free(m, s) >= -1e-9);
                    prop_assert!(state.socket_bw_free(m, s) <= state.bw_capacity_gbs() + 1e-9);
                }
            }
            // Invariant 3: the running table matches the live set.
            prop_assert_eq!(state.n_running(), live.len());
            prop_assert_eq!(allocated_total, live.len());
        }

        // Drain everything: the state returns to pristine bandwidth.
        for id in live {
            state.release(id);
        }
        let machines: Vec<MachineId> = state.cluster().machines().collect();
        for m in machines {
            state.set_machine_down(m, false);
            prop_assert_eq!(state.free_count(m), 4);
            let sockets: Vec<SocketId> = state.cluster().machine(m).sockets().collect();
            for s in sockets {
                prop_assert!((state.socket_bw_free(m, s) - state.bw_capacity_gbs()).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn down_machine_is_invisible_to_capacity_queries() {
    let mut state = fresh_state();
    state.set_machine_down(MachineId(1), true);
    assert_eq!(state.machines_with_capacity(1).len(), 2);
    assert!(state.free_gpus(MachineId(1)).is_empty());
    assert_eq!(state.free_count(MachineId(1)), 0);
    assert_eq!(state.total_free(), 8);
    state.set_machine_down(MachineId(1), false);
    assert_eq!(state.total_free(), 12);
    let _ = SocketId(0); // keep the import exercised on all feature sets
    let _ = GpuId(0);
}
