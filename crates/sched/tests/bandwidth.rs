//! §4.3 memory-bandwidth capacity constraint (`t_bw ≤ p_bw`): end-to-end
//! behaviour through the allocation state and every policy.

use gts_job::{BatchClass, JobSpec, NnModel};
use gts_perf::ProfileLibrary;
use gts_sched::{ClusterState, Policy, PolicyKind};
use gts_topo::{power8_minsky, ClusterTopology, GpuId, MachineId, SocketId};
use std::sync::Arc;

fn state(n_machines: usize, capacity: f64) -> ClusterState {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    ClusterState::new(cluster, profiles).with_bw_capacity(capacity)
}

fn hungry_job(id: u64, gpus: u32, demand: f64) -> JobSpec {
    JobSpec::new(id, NnModel::AlexNet, BatchClass::Tiny, gpus).with_bw_demand(demand)
}

#[test]
fn accounting_debits_and_credits_sockets() {
    let mut s = state(1, 100.0);
    assert_eq!(s.socket_bw_free(MachineId(0), SocketId(0)), 100.0);

    // 2-GPU job packed on socket 0 demanding 60 GB/s.
    let job = hungry_job(0, 2, 60.0);
    let gpus = gts_sched::state::on_machine(MachineId(0), &[GpuId(0), GpuId(1)]);
    s.place(job, gpus, 1.0);
    assert!((s.socket_bw_free(MachineId(0), SocketId(0)) - 40.0).abs() < 1e-9);
    assert_eq!(s.socket_bw_free(MachineId(0), SocketId(1)), 100.0);

    s.release(gts_job::JobId(0));
    assert_eq!(s.socket_bw_free(MachineId(0), SocketId(0)), 100.0);
}

#[test]
fn spread_allocation_splits_the_demand() {
    let mut s = state(1, 100.0);
    let job = hungry_job(0, 2, 60.0);
    let gpus = gts_sched::state::on_machine(MachineId(0), &[GpuId(0), GpuId(2)]);
    s.place(job, gpus, 0.5);
    assert!((s.socket_bw_free(MachineId(0), SocketId(0)) - 70.0).abs() < 1e-9);
    assert!((s.socket_bw_free(MachineId(0), SocketId(1)) - 70.0).abs() < 1e-9);
}

#[test]
fn fits_bw_rejects_oversubscription() {
    let mut s = state(1, 100.0);
    s.place(
        hungry_job(0, 2, 80.0),
        gts_sched::state::on_machine(MachineId(0), &[GpuId(0), GpuId(1)]),
        1.0,
    );
    // Socket 0 has 20 GB/s left: another 30 GB/s job does not fit there...
    assert!(!s.fits_bw(MachineId(0), &[GpuId(0)], 30.0));
    // ...but fits on socket 1.
    assert!(s.fits_bw(MachineId(0), &[GpuId(2)], 30.0));
    // Zero-demand jobs always fit.
    assert!(s.fits_bw(MachineId(0), &[GpuId(0)], 0.0));
}

#[test]
fn policies_route_around_bandwidth_saturated_machines() {
    for kind in PolicyKind::ALL {
        let mut s = state(2, 100.0);
        // Saturate machine 0's bandwidth with two 1-GPU jobs (one per
        // socket) so GPUs remain free but no bandwidth does.
        s.place(
            hungry_job(10, 1, 100.0),
            gts_sched::state::on_machine(MachineId(0), &[GpuId(0)]),
            1.0,
        );
        s.place(
            hungry_job(11, 1, 100.0),
            gts_sched::state::on_machine(MachineId(0), &[GpuId(2)]),
            1.0,
        );
        let d = Policy::new(kind)
            .decide(&s, &hungry_job(0, 2, 50.0))
            .unwrap_or_else(|| panic!("{kind}: machine 1 has room"));
        assert_eq!(d.gpus[0].machine, MachineId(1), "{kind} ignored the bw constraint");
    }
}

#[test]
fn fully_saturated_cluster_defers_the_job() {
    let mut s = state(1, 50.0);
    s.place(
        hungry_job(10, 1, 50.0),
        gts_sched::state::on_machine(MachineId(0), &[GpuId(0)]),
        1.0,
    );
    s.place(
        hungry_job(11, 1, 50.0),
        gts_sched::state::on_machine(MachineId(0), &[GpuId(2)]),
        1.0,
    );
    for kind in PolicyKind::ALL {
        assert!(
            Policy::new(kind).decide(&s, &hungry_job(0, 1, 10.0)).is_none(),
            "{kind} placed into a saturated machine"
        );
    }
    // A zero-demand job still fits: only bandwidth is exhausted, not GPUs.
    assert!(Policy::new(PolicyKind::Fcfs)
        .decide(&s, &hungry_job(1, 1, 0.0))
        .is_some());
}

#[test]
fn spec_validation_rejects_negative_demand() {
    let mut j = hungry_job(0, 1, 10.0);
    assert!(j.validate().is_ok());
    j.bw_demand_gbs = -1.0;
    assert!(j.validate().is_err());
    j.bw_demand_gbs = f64::NAN;
    assert!(j.validate().is_err());
}
