//! Strongly-typed identifiers for topology entities.
//!
//! The scheduler juggles three distinct id spaces (GPUs within a machine,
//! sockets within a machine, machines within a cluster); newtypes prevent
//! mixing them up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A GPU within a single machine (`GPU0`..`GPU7` in the paper's figures).
    GpuId,
    "GPU"
);

id_newtype!(
    /// A CPU socket within a single machine (`S0`, `S1` in Fig. 7).
    SocketId,
    "S"
);

id_newtype!(
    /// A machine within a cluster (`M1`, `M2` in Fig. 7).
    MachineId,
    "M"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(GpuId(3).to_string(), "GPU3");
        assert_eq!(SocketId(1).to_string(), "S1");
        assert_eq!(MachineId(42).to_string(), "M42");
    }

    #[test]
    fn conversions_roundtrip() {
        let g: GpuId = 7usize.into();
        assert_eq!(g.index(), 7);
        let s: SocketId = 2u32.into();
        assert_eq!(s, SocketId(2));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(GpuId(0));
        set.insert(GpuId(0));
        set.insert(GpuId(1));
        assert_eq!(set.len(), 2);
        assert!(GpuId(0) < GpuId(1));
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&GpuId(5)).unwrap();
        assert_eq!(json, "5");
        let back: GpuId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, GpuId(5));
    }
}
