//! Topology discovery from `nvidia-smi topo --matrix` output.
//!
//! §5.1: "For discovering the topology during the system startup, it
//! executes the `nvidia-smi topo --matrix` command to create a matrix of
//! GPUs, and the command `numactl --hardware` to include socket distance
//! and CPU locality in the model." This module parses that matrix format —
//! the de-facto interchange for GPU connectivity — into a
//! [`MachineTopology`], so a deployment can feed real discovery output to
//! the scheduler.
//!
//! Recognized relationship tokens (the `nvidia-smi` legend):
//!
//! | token | meaning | modeled as |
//! |---|---|---|
//! | `X` | self | — |
//! | `NV#` | # bonded NVLink lanes | direct GPU↔GPU NVLink edge |
//! | `PIX` | same PCIe switch | shared switch vertex |
//! | `PXB` | multiple PCIe bridges | shared switch vertex |
//! | `PHB` / `NODE` | same socket, through the host bridge | common socket |
//! | `SYS` | crosses the inter-socket interconnect | different sockets |
//!
//! Socket membership comes from the trailing `CPU Affinity` column when
//! present (distinct affinity strings → distinct sockets, in order of first
//! appearance) and otherwise from the connected components of the non-`SYS`
//! relation.

use crate::builders::MachineBuilder;
use crate::ids::SocketId;
use crate::link::LinkKind;
use crate::machine::MachineTopology;
use std::fmt;

/// Why a matrix failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// The text contains no `GPU#` header row.
    MissingHeader,
    /// A data row does not match the header's GPU count.
    RaggedRow {
        /// The offending GPU row label.
        row: String,
    },
    /// An unknown relationship token.
    UnknownToken {
        /// The offending token.
        token: String,
    },
    /// The matrix is not symmetric.
    Asymmetric {
        /// First offending pair.
        pair: (usize, usize),
    },
    /// No GPU rows found.
    NoGpus,
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::MissingHeader => write!(f, "no GPU header row found"),
            DiscoveryError::RaggedRow { row } => {
                write!(f, "row {row} does not match the header's GPU count")
            }
            DiscoveryError::UnknownToken { token } => {
                write!(f, "unknown relationship token '{token}'")
            }
            DiscoveryError::Asymmetric { pair } => {
                write!(f, "matrix is asymmetric at GPU{} / GPU{}", pair.0, pair.1)
            }
            DiscoveryError::NoGpus => write!(f, "no GPU rows found"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

/// One parsed relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    SelfRel,
    NvLink(u8),
    SameSwitch,
    SameSocket,
    CrossSocket,
}

fn parse_token(tok: &str) -> Result<Relation, DiscoveryError> {
    let t = tok.trim().to_ascii_uppercase();
    if t == "X" {
        return Ok(Relation::SelfRel);
    }
    if let Some(lanes) = t.strip_prefix("NV") {
        let lanes: u8 = lanes.parse().map_err(|_| DiscoveryError::UnknownToken {
            token: tok.to_string(),
        })?;
        return Ok(Relation::NvLink(lanes.max(1)));
    }
    match t.as_str() {
        "PIX" | "PXB" => Ok(Relation::SameSwitch),
        "PHB" | "NODE" => Ok(Relation::SameSocket),
        "SYS" => Ok(Relation::CrossSocket),
        _ => Err(DiscoveryError::UnknownToken { token: tok.to_string() }),
    }
}

/// Parses `nvidia-smi topo --matrix` text into a machine topology.
///
/// ```
/// use gts_topo::{parse_topo_matrix, GpuId};
///
/// let matrix = "\
///         GPU0    GPU1    CPU Affinity
/// GPU0     X      NV2     0-7
/// GPU1    NV2      X      0-7
/// ";
/// let machine = parse_topo_matrix(matrix).unwrap();
/// assert_eq!(machine.n_gpus(), 2);
/// assert_eq!(machine.pair_bandwidth_gbs(GpuId(0), GpuId(1)), 40.0);
/// ```
pub fn parse_topo_matrix(text: &str) -> Result<MachineTopology, DiscoveryError> {
    // Locate the header: the first line whose fields start with GPU names.
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .find(|l| l.split_whitespace().next().is_some_and(|w| w.starts_with("GPU")))
        .ok_or(DiscoveryError::MissingHeader)?;
    let header_gpus = header
        .split_whitespace()
        .take_while(|w| w.starts_with("GPU"))
        .count();
    if header_gpus == 0 {
        return Err(DiscoveryError::MissingHeader);
    }

    // Collect GPU rows.
    let mut matrix: Vec<Vec<Relation>> = Vec::new();
    let mut affinities: Vec<Option<String>> = Vec::new();
    for line in lines {
        let mut fields = line.split_whitespace();
        let Some(label) = fields.next() else { continue };
        if !label.starts_with("GPU") {
            continue; // legend lines, NIC rows, etc.
        }
        let fields: Vec<&str> = fields.collect();
        if fields.len() < header_gpus {
            return Err(DiscoveryError::RaggedRow { row: label.to_string() });
        }
        let rels: Result<Vec<Relation>, _> =
            fields[..header_gpus].iter().map(|t| parse_token(t)).collect();
        matrix.push(rels?);
        affinities.push(fields.get(header_gpus).map(|s| s.to_string()));
    }
    let n = matrix.len();
    if n == 0 {
        return Err(DiscoveryError::NoGpus);
    }
    if n != header_gpus {
        return Err(DiscoveryError::RaggedRow { row: format!("GPU{}", n) });
    }
    for (i, row) in matrix.iter().enumerate() {
        for (j, &rel) in row.iter().enumerate() {
            if i == j && rel != Relation::SelfRel {
                return Err(DiscoveryError::Asymmetric { pair: (i, j) });
            }
            if matrix[j][i] != rel {
                return Err(DiscoveryError::Asymmetric { pair: (i, j) });
            }
        }
    }

    // Socket membership: affinity strings if present, else connected
    // components of the non-SYS relation.
    let socket_of: Vec<usize> = if affinities.iter().all(|a| a.is_some()) {
        let mut seen: Vec<String> = Vec::new();
        affinities
            .iter()
            .map(|a| {
                let a = a.as_ref().expect("checked above");
                match seen.iter().position(|s| s == a) {
                    Some(i) => i,
                    None => {
                        seen.push(a.clone());
                        seen.len() - 1
                    }
                }
            })
            .collect()
    } else {
        // Union-find over non-SYS pairs.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (i, row) in matrix.iter().enumerate() {
            for (j, &rel) in row.iter().enumerate().skip(i + 1) {
                if rel != Relation::CrossSocket {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut seen: Vec<usize> = Vec::new();
        (0..n)
            .map(|i| {
                let root = find(&mut parent, i);
                match seen.iter().position(|&s| s == root) {
                    Some(k) => k,
                    None => {
                        seen.push(root);
                        seen.len() - 1
                    }
                }
            })
            .collect()
    };
    let n_sockets = socket_of.iter().copied().max().unwrap_or(0) + 1;

    // Switch groups: connected components of SameSwitch within a socket.
    let mut switch_group: Vec<Option<usize>> = vec![None; n];
    let mut next_switch = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if matrix[i][j] == Relation::SameSwitch && socket_of[i] == socket_of[j] {
                let g = switch_group[i].or(switch_group[j]).unwrap_or_else(|| {
                    let g = next_switch;
                    next_switch += 1;
                    g
                });
                switch_group[i] = Some(g);
                switch_group[j] = Some(g);
            }
        }
    }

    // Assemble. GPUs with a switch group hang off a switch (PCIe); others
    // attach to the socket. Host link technology: NVLink machines attach
    // GPUs by NVLink (Power8-style), PCIe otherwise — inferred from whether
    // the GPU has any NVLink relation.
    let mut b = MachineBuilder::new(n_sockets);
    let pcie = LinkKind::PciE { gen: 3 };
    let mut switch_nodes: Vec<Option<crate::graph::NodeIdx>> = vec![None; next_switch];
    let mut gpu_nodes = Vec::with_capacity(n);
    for i in 0..n {
        let socket = SocketId(socket_of[i] as u32);
        let has_nvlink = matrix[i].iter().any(|r| matches!(r, Relation::NvLink(_)));
        let node = match switch_group[i] {
            Some(g) => {
                let sw = match switch_nodes[g] {
                    Some(sw) => sw,
                    None => {
                        let sw = b.add_switch(socket, g as u32, pcie);
                        switch_nodes[g] = Some(sw);
                        sw
                    }
                };
                b.add_gpu(socket, sw, pcie)
            }
            None => {
                let host_link = if has_nvlink {
                    LinkKind::NvLink { lanes: 2 }
                } else {
                    pcie
                };
                let sock_node = b.sockets[socket.index()];
                b.add_gpu(socket, sock_node, host_link)
            }
        };
        gpu_nodes.push(node);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if let Relation::NvLink(lanes) = matrix[i][j] {
                b.peer_edge(gpu_nodes[i], gpu_nodes[j], LinkKind::NvLink { lanes });
            }
        }
    }
    Ok(b.finish("discovered"))
}

/// Renders a machine back into `nvidia-smi topo --matrix` text — the
/// inverse of [`parse_topo_matrix`], handy for golden files and for
/// describing synthetic machines to external tooling.
///
/// Relationships are derived from the shortest route between each pair:
/// direct NVLink edges become `NV#`, switch-only P2P routes `PIX`,
/// host-bridge routes within a socket `PHB`, and socket-crossing routes
/// `SYS`. CPU affinities are synthesized as 8 cores per socket.
pub fn to_topo_matrix(machine: &MachineTopology) -> String {
    use crate::paths::shortest_path;
    let n = machine.n_gpus();
    let mut out = String::new();
    out.push_str("        ");
    for g in machine.gpus() {
        out.push_str(&format!("{:<8}", g.to_string()));
    }
    out.push_str("CPU Affinity\n");
    for a in machine.gpus() {
        out.push_str(&format!("{:<8}", a.to_string()));
        for b in machine.gpus() {
            let token = if a == b {
                " X".to_string()
            } else {
                let path = shortest_path(machine.graph(), machine.gpu_node(a), machine.gpu_node(b))
                    .expect("machines are connected");
                let direct_nv = machine
                    .graph()
                    .neighbors(machine.gpu_node(a))
                    .iter()
                    .find(|e| {
                        e.to == machine.gpu_node(b)
                            && matches!(e.kind, LinkKind::NvLink { .. })
                    })
                    .map(|e| match e.kind {
                        LinkKind::NvLink { lanes } => lanes,
                        _ => unreachable!(),
                    });
                match direct_nv {
                    Some(lanes) => format!("NV{lanes}"),
                    None if path.is_p2p(machine.graph()) => "PIX".to_string(),
                    None if machine.socket_of(a) == machine.socket_of(b) => "PHB".to_string(),
                    None => "SYS".to_string(),
                }
            };
            out.push_str(&format!("{token:<8}"));
        }
        let socket = machine.socket_of(a).0;
        out.push_str(&format!("{}-{}\n", socket * 8, socket * 8 + 7));
    }
    let _ = n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::power8_minsky;
    use crate::ids::GpuId;

    const MINSKY_MATRIX: &str = "\
        GPU0    GPU1    GPU2    GPU3    CPU Affinity
GPU0     X      NV2     SYS     SYS     0-7
GPU1    NV2      X      SYS     SYS     0-7
GPU2    SYS     SYS      X      NV2     8-15
GPU3    SYS     SYS     NV2      X      8-15

Legend:
  X   = Self
  NV# = Connection traversing a bonded set of # NVLinks
  SYS = Connection traversing PCIe as well as the SMP interconnect
";

    #[test]
    fn minsky_matrix_reproduces_the_builder_topology() {
        let discovered = parse_topo_matrix(MINSKY_MATRIX).unwrap();
        let reference = power8_minsky();
        assert_eq!(discovered.n_gpus(), 4);
        assert_eq!(discovered.n_sockets(), 2);
        for a in discovered.gpus() {
            for bgpu in discovered.gpus() {
                assert_eq!(
                    discovered.distance(a, bgpu),
                    reference.distance(a, bgpu),
                    "{a}-{bgpu}"
                );
            }
        }
        assert!(discovered.is_p2p(GpuId(0), GpuId(1)));
        assert!(!discovered.is_p2p(GpuId(1), GpuId(2)));
        assert_eq!(discovered.pair_bandwidth_gbs(GpuId(0), GpuId(1)), 40.0);
    }

    #[test]
    fn pcie_switch_machine_parses_pix_groups() {
        let text = "\
        GPU0    GPU1    GPU2    GPU3    CPU Affinity
GPU0     X      PIX     SYS     SYS     0-7
GPU1    PIX      X      SYS     SYS     0-7
GPU2    SYS     SYS      X      PIX     8-15
GPU3    SYS     SYS     PIX      X      8-15
";
        let m = parse_topo_matrix(text).unwrap();
        assert_eq!(m.n_sockets(), 2);
        // Same-switch pair: distance 2 (GPU-SW-GPU), P2P through the switch.
        assert_eq!(m.distance(GpuId(0), GpuId(1)), 2.0);
        assert!(m.is_p2p(GpuId(0), GpuId(1)));
        // Cross socket: over switch + sockets.
        assert_eq!(m.distance(GpuId(0), GpuId(2)), 42.0);
    }

    #[test]
    fn affinity_free_matrix_uses_components() {
        let text = "\
        GPU0    GPU1    GPU2    GPU3
GPU0     X      NV1     SYS     SYS
GPU1    NV1      X      SYS     SYS
GPU2    SYS     SYS      X      NV1
GPU3    SYS     SYS     NV1      X
";
        let m = parse_topo_matrix(text).unwrap();
        assert_eq!(m.n_sockets(), 2);
        assert_eq!(m.socket_of(GpuId(0)), m.socket_of(GpuId(1)));
        assert_ne!(m.socket_of(GpuId(0)), m.socket_of(GpuId(2)));
        // Single-lane NVLink caps at 20 GB/s.
        assert_eq!(m.pair_bandwidth_gbs(GpuId(0), GpuId(1)), 20.0);
    }

    #[test]
    fn phb_rows_share_a_socket_without_a_switch() {
        let text = "\
        GPU0    GPU1    CPU Affinity
GPU0     X      PHB     0-7
GPU1    PHB      X      0-7
";
        let m = parse_topo_matrix(text).unwrap();
        assert_eq!(m.n_sockets(), 1);
        // Host-bridge route: GPU-S-GPU.
        assert_eq!(m.distance(GpuId(0), GpuId(1)), 2.0);
        assert!(!m.is_p2p(GpuId(0), GpuId(1)));
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_topo_matrix("nothing here"),
            Err(DiscoveryError::MissingHeader)
        ));
        let ragged = "\
        GPU0    GPU1
GPU0     X      NV2
GPU1    NV2
";
        assert!(matches!(
            parse_topo_matrix(ragged),
            Err(DiscoveryError::RaggedRow { .. })
        ));
        let unknown = "\
        GPU0    GPU1
GPU0     X      ???
GPU1    ???      X
";
        assert!(matches!(
            parse_topo_matrix(unknown),
            Err(DiscoveryError::UnknownToken { .. })
        ));
        let asymmetric = "\
        GPU0    GPU1
GPU0     X      NV2
GPU1    SYS      X
";
        assert!(matches!(
            parse_topo_matrix(asymmetric),
            Err(DiscoveryError::Asymmetric { .. })
        ));
        let missing_rows = "\
        GPU0    GPU1
GPU0     X      NV2
";
        assert!(matches!(
            parse_topo_matrix(missing_rows),
            Err(DiscoveryError::RaggedRow { .. })
        ));
    }

    #[test]
    fn matrix_round_trips_through_the_renderer() {
        use crate::builders::{dgx1, power8_pcie_k80};
        for machine in [power8_minsky(), power8_pcie_k80(), dgx1()] {
            let text = to_topo_matrix(&machine);
            let parsed = parse_topo_matrix(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", machine.name()));
            assert_eq!(parsed.n_gpus(), machine.n_gpus(), "{}", machine.name());
            assert_eq!(parsed.n_sockets(), machine.n_sockets(), "{}", machine.name());
            for a in machine.gpus() {
                for b in machine.gpus() {
                    if a == b {
                        continue;
                    }
                    // Route *class* survives the round trip (exact
                    // qualitative distances may differ when a switch is
                    // inferred rather than original).
                    assert_eq!(
                        parsed.is_p2p(a, b),
                        machine.is_p2p(a, b),
                        "{}: {a}-{b}",
                        machine.name()
                    );
                    assert_eq!(
                        parsed.socket_of(a) == parsed.socket_of(b),
                        machine.socket_of(a) == machine.socket_of(b),
                        "{}: {a}-{b}",
                        machine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn legend_and_nic_rows_are_ignored() {
        let text = "\
        GPU0    GPU1    mlx5_0  CPU Affinity
GPU0     X      NV2     PHB     0-7
GPU1    NV2      X      PHB     0-7
mlx5_0  PHB     PHB      X
";
        let m = parse_topo_matrix(text).unwrap();
        assert_eq!(m.n_gpus(), 2);
    }
}
