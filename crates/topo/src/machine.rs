//! A single machine's physical GPU topology.
//!
//! Wraps the raw [`TopoGraph`] with the queries the scheduler actually needs:
//! GPU enumeration, socket membership, pairwise distances (precomputed) and
//! full path lookups.

use crate::graph::{NodeIdx, TopoGraph};
use crate::ids::{GpuId, SocketId};
use crate::paths::{shortest_path, GpuDistanceMatrix, PathInfo};

/// Immutable physical topology of one machine.
///
/// Built once by the [`crate::builders`] and shared (`Arc`) across the
/// scheduler, simulator and performance model. All queries are `O(1)` except
/// [`MachineTopology::path`], which runs Dijkstra on demand.
#[derive(Debug, Clone)]
pub struct MachineTopology {
    name: String,
    graph: TopoGraph,
    machine_node: NodeIdx,
    socket_nodes: Vec<NodeIdx>,
    gpu_nodes: Vec<NodeIdx>,
    socket_of: Vec<SocketId>,
    distances: GpuDistanceMatrix,
}

impl MachineTopology {
    /// Assembles a machine topology from a finished graph.
    ///
    /// `gpu_nodes[i]` must be the vertex of `GpuId(i)` and `socket_of[i]` its
    /// socket. Used by the builders; downstream code should prefer those.
    ///
    /// # Panics
    ///
    /// Panics if the id mappings are inconsistent with the graph or if any
    /// GPU pair is mutually unreachable.
    pub fn from_parts(
        name: impl Into<String>,
        graph: TopoGraph,
        machine_node: NodeIdx,
        socket_nodes: Vec<NodeIdx>,
        gpu_nodes: Vec<NodeIdx>,
        socket_of: Vec<SocketId>,
    ) -> Self {
        assert_eq!(
            gpu_nodes.len(),
            socket_of.len(),
            "each GPU needs a socket assignment"
        );
        for (i, &n) in gpu_nodes.iter().enumerate() {
            assert_eq!(
                graph.node(n).as_gpu(),
                Some(GpuId(i as u32)),
                "gpu_nodes[{i}] does not hold GPU{i}"
            );
        }
        let distances = GpuDistanceMatrix::build(&graph);
        assert_eq!(distances.gpu_nodes, gpu_nodes, "GPU vertex order mismatch");
        for i in 0..gpu_nodes.len() {
            for j in 0..gpu_nodes.len() {
                assert!(
                    distances.distance(i, j).is_finite(),
                    "GPU{i} cannot reach GPU{j}: disconnected topology"
                );
            }
        }
        Self {
            name: name.into(),
            graph,
            machine_node,
            socket_nodes,
            gpu_nodes,
            socket_of,
            distances,
        }
    }

    /// Human-readable model name ("power8-minsky", "dgx-1", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying multi-level graph.
    pub fn graph(&self) -> &TopoGraph {
        &self.graph
    }

    /// The machine root vertex.
    pub fn machine_node(&self) -> NodeIdx {
        self.machine_node
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.gpu_nodes.len()
    }

    /// Number of CPU sockets.
    pub fn n_sockets(&self) -> usize {
        self.socket_nodes.len()
    }

    /// All GPU ids on this machine, ascending.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.gpu_nodes.len() as u32).map(GpuId)
    }

    /// All socket ids, ascending.
    pub fn sockets(&self) -> impl Iterator<Item = SocketId> + '_ {
        (0..self.socket_nodes.len() as u32).map(SocketId)
    }

    /// The graph vertex of a GPU.
    pub fn gpu_node(&self, gpu: GpuId) -> NodeIdx {
        self.gpu_nodes[gpu.index()]
    }

    /// The graph vertex of a socket.
    pub fn socket_node(&self, socket: SocketId) -> NodeIdx {
        self.socket_nodes[socket.index()]
    }

    /// The socket a GPU hangs off.
    pub fn socket_of(&self, gpu: GpuId) -> SocketId {
        self.socket_of[gpu.index()]
    }

    /// GPUs attached to `socket`, ascending.
    pub fn gpus_in_socket(&self, socket: SocketId) -> Vec<GpuId> {
        self.gpus().filter(|&g| self.socket_of(g) == socket).collect()
    }

    /// Qualitative distance between two GPUs (0 for the same GPU).
    pub fn distance(&self, a: GpuId, b: GpuId) -> f64 {
        self.distances.distance(a.index(), b.index())
    }

    /// Eq. 3 communication cost for a candidate GPU set: sum of pairwise
    /// distances over all unordered pairs.
    pub fn pairwise_cost(&self, gpus: &[GpuId]) -> f64 {
        let idx: Vec<usize> = gpus.iter().map(|g| g.index()).collect();
        self.distances.pairwise_cost(&idx)
    }

    /// Smallest nonzero pairwise distance on this machine — the best case a
    /// 2-GPU job can hope for. Used to normalize utilities.
    pub fn min_pair_distance(&self) -> f64 {
        let n = self.n_gpus();
        let mut best = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                best = best.min(self.distances.distance(i, j));
            }
        }
        best
    }

    /// Largest pairwise distance on this machine — the worst case, used as
    /// the Eq. 1 normalization denominator `t_w`.
    pub fn max_pair_distance(&self) -> f64 {
        let n = self.n_gpus();
        let mut worst: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                worst = worst.max(self.distances.distance(i, j));
            }
        }
        worst
    }

    /// Full route between two GPUs (Dijkstra on demand).
    pub fn path(&self, a: GpuId, b: GpuId) -> PathInfo {
        shortest_path(&self.graph, self.gpu_node(a), self.gpu_node(b))
            .expect("machine topologies are connected by construction")
    }

    /// True when `a` and `b` can talk over direct P2P (NVLink edge or a
    /// switch-only route).
    pub fn is_p2p(&self, a: GpuId, b: GpuId) -> bool {
        self.path(a, b).is_p2p(&self.graph)
    }

    /// Bottleneck bandwidth of the cheapest route between two GPUs, GB/s.
    pub fn pair_bandwidth_gbs(&self, a: GpuId, b: GpuId) -> f64 {
        self.path(a, b).bottleneck_bandwidth_gbs()
    }

    /// True when the GPU set fits entirely inside one socket.
    pub fn is_packed(&self, gpus: &[GpuId]) -> bool {
        match gpus.split_first() {
            None => true,
            Some((&first, rest)) => {
                let s = self.socket_of(first);
                rest.iter().all(|&g| self.socket_of(g) == s)
            }
        }
    }

    /// Number of distinct sockets a GPU set spans.
    pub fn sockets_spanned(&self, gpus: &[GpuId]) -> usize {
        let mut seen: Vec<SocketId> = gpus.iter().map(|&g| self.socket_of(g)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dgx1, power8_minsky, power8_pcie_k80};

    #[test]
    fn minsky_shape() {
        let m = power8_minsky();
        assert_eq!(m.n_gpus(), 4);
        assert_eq!(m.n_sockets(), 2);
        assert_eq!(m.name(), "power8-minsky");
        assert_eq!(m.socket_of(GpuId(0)), SocketId(0));
        assert_eq!(m.socket_of(GpuId(1)), SocketId(0));
        assert_eq!(m.socket_of(GpuId(2)), SocketId(1));
        assert_eq!(m.socket_of(GpuId(3)), SocketId(1));
        assert_eq!(m.gpus_in_socket(SocketId(0)), vec![GpuId(0), GpuId(1)]);
    }

    #[test]
    fn minsky_pack_beats_spread() {
        let m = power8_minsky();
        assert!(m.distance(GpuId(0), GpuId(1)) < m.distance(GpuId(0), GpuId(2)));
        assert!(m.is_packed(&[GpuId(0), GpuId(1)]));
        assert!(!m.is_packed(&[GpuId(1), GpuId(2)]));
        assert_eq!(m.sockets_spanned(&[GpuId(0), GpuId(3)]), 2);
        assert_eq!(m.sockets_spanned(&[GpuId(2), GpuId(3)]), 1);
        assert_eq!(m.sockets_spanned(&[]), 0);
    }

    #[test]
    fn minsky_p2p_classification() {
        let m = power8_minsky();
        assert!(m.is_p2p(GpuId(0), GpuId(1)));
        assert!(!m.is_p2p(GpuId(0), GpuId(2)));
        assert_eq!(m.pair_bandwidth_gbs(GpuId(0), GpuId(1)), 40.0);
    }

    #[test]
    fn pcie_variant_has_no_p2p_nvlink_edges() {
        let m = power8_pcie_k80();
        // Intra-socket still cheaper than cross-socket...
        assert!(m.distance(GpuId(0), GpuId(1)) < m.distance(GpuId(0), GpuId(2)));
        // ...but bandwidth is PCIe-limited.
        assert!(m.pair_bandwidth_gbs(GpuId(0), GpuId(1)) <= 16.0);
    }

    #[test]
    fn min_max_pair_distance() {
        let m = power8_minsky();
        assert_eq!(m.min_pair_distance(), 1.0);
        assert_eq!(m.max_pair_distance(), 22.0);
    }

    #[test]
    fn dgx1_shape() {
        let d = dgx1();
        assert_eq!(d.n_gpus(), 8);
        assert_eq!(d.n_sockets(), 2);
        // Quads live on their own sockets.
        for g in 0..4u32 {
            assert_eq!(d.socket_of(GpuId(g)), SocketId(0));
            assert_eq!(d.socket_of(GpuId(g + 4)), SocketId(1));
        }
    }

    #[test]
    fn dgx1_quad_is_mutually_nvlinked() {
        let d = dgx1();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                assert_eq!(d.distance(GpuId(a), GpuId(b)), 1.0, "GPU{a}-GPU{b}");
                assert!(d.is_p2p(GpuId(a), GpuId(b)));
            }
        }
    }

    #[test]
    fn dgx1_cross_links_exist() {
        let d = dgx1();
        // Paired cross links (0,4), (1,5), (2,6), (3,7) are direct NVLink.
        for g in 0..4u32 {
            assert_eq!(d.distance(GpuId(g), GpuId(g + 4)), 1.0);
        }
        // Unpaired cross-socket GPUs must route indirectly.
        assert!(d.distance(GpuId(0), GpuId(5)) > 1.0);
    }

    #[test]
    fn pairwise_cost_matches_manual_sum() {
        let m = power8_minsky();
        let set = [GpuId(0), GpuId(1), GpuId(2)];
        let manual = m.distance(GpuId(0), GpuId(1))
            + m.distance(GpuId(0), GpuId(2))
            + m.distance(GpuId(1), GpuId(2));
        assert_eq!(m.pairwise_cost(&set), manual);
    }
}
