//! Shortest-path machinery over the physical topology graph.
//!
//! The paper defines the distance between two GPUs as "the sum of the weight
//! of the edges of the path" (§4.1.2) and uses the *combinatorial shortest
//! paths between all GPUs within the solution* as the communication cost
//! (Eq. 3). This module provides Dijkstra over the qualitative weights, an
//! all-pairs GPU distance matrix, and per-path physical characteristics
//! (bottleneck bandwidth, whether the route preserves P2P) consumed by the
//! performance model.

use crate::graph::{NodeIdx, TopoGraph};
use crate::link::LinkKind;
use crate::node::NodeKind;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `f64` cost that implements `Ord` for use inside a binary heap.
/// Costs are always finite and non-negative here.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cost(f64);

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite, non-NaN by construction.
        self.0.partial_cmp(&other.0).expect("path costs are never NaN")
    }
}

/// Full description of the cheapest route between two GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Sum of qualitative edge weights along the route (the paper's
    /// "distance").
    pub distance: f64,
    /// Vertices along the route, endpoints included.
    pub vertices: Vec<NodeIdx>,
    /// Physical links traversed, in order.
    pub links: Vec<LinkKind>,
}

impl PathInfo {
    /// Peak bandwidth of the narrowest link on the route, in GB/s.
    pub fn bottleneck_bandwidth_gbs(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.peak_bandwidth_gbs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of physical hops.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// True when the route supports direct peer-to-peer DMA: every
    /// intermediate vertex is a switch (PCIe switches forward P2P), i.e. the
    /// route never bounces through a socket, machine or network vertex, and
    /// no traversed link breaks P2P.
    pub fn is_p2p(&self, graph: &TopoGraph) -> bool {
        let through_host = self.vertices[1..self.vertices.len().saturating_sub(1)]
            .iter()
            .any(|&v| {
                !matches!(
                    graph.node(v),
                    NodeKind::Switch { .. } | NodeKind::Gpu(_)
                )
            });
        !through_host && !self.links.iter().any(|l| l.breaks_p2p())
    }
}

/// Single-source Dijkstra: returns `(distances, predecessors)` indexed by
/// vertex. Unreachable vertices get `f64::INFINITY` / `None`.
///
/// GPU vertices are terminal: paths may start or end at a GPU but never
/// transit *through* one, because P100-generation NVLink endpoints do not
/// forward traffic (the paper: non-linked DGX-1 pairs "go over the PCI-e
/// switches and the system bus", not through a neighbouring GPU).
pub fn dijkstra(graph: &TopoGraph, source: NodeIdx) -> (Vec<f64>, Vec<Option<NodeIdx>>) {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeIdx>> = vec![None; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(Cost, NodeIdx)>> = BinaryHeap::new();

    dist[source.index()] = 0.0;
    heap.push(std::cmp::Reverse((Cost(0.0), source)));

    while let Some(std::cmp::Reverse((Cost(d), u))) = heap.pop() {
        if d > dist[u.index()] {
            continue; // stale entry
        }
        if u != source && graph.node(u).is_gpu() {
            continue; // GPUs are endpoints, never routers
        }
        for edge in graph.neighbors(u) {
            let nd = d + edge.weight;
            if nd < dist[edge.to.index()] {
                dist[edge.to.index()] = nd;
                pred[edge.to.index()] = Some(u);
                heap.push(std::cmp::Reverse((Cost(nd), edge.to)));
            }
        }
    }
    (dist, pred)
}

/// Reconstructs the cheapest route from `source` to `target` with full link
/// detail. Returns `None` if `target` is unreachable.
pub fn shortest_path(graph: &TopoGraph, source: NodeIdx, target: NodeIdx) -> Option<PathInfo> {
    let (dist, pred) = dijkstra(graph, source);
    if dist[target.index()].is_infinite() {
        return None;
    }
    let mut vertices = vec![target];
    let mut cur = target;
    while let Some(p) = pred[cur.index()] {
        vertices.push(p);
        cur = p;
    }
    vertices.reverse();
    debug_assert_eq!(vertices[0], source);

    let mut links = Vec::with_capacity(vertices.len().saturating_sub(1));
    for pair in vertices.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // Among parallel edges pick the one consistent with the shortest
        // path: minimal weight, tie-broken by highest bandwidth.
        let edge = graph
            .neighbors(a)
            .iter()
            .filter(|e| e.to == b)
            .min_by(|x, y| {
                x.weight
                    .partial_cmp(&y.weight)
                    .unwrap_or(Ordering::Equal)
                    .then(
                        y.kind
                            .peak_bandwidth_gbs()
                            .partial_cmp(&x.kind.peak_bandwidth_gbs())
                            .unwrap_or(Ordering::Equal),
                    )
            })
            .expect("predecessor chain implies an edge");
        links.push(edge.kind);
    }
    Some(PathInfo {
        distance: dist[target.index()],
        vertices,
        links,
    })
}

/// Dense all-pairs GPU-to-GPU distance matrix.
///
/// `matrix[i][j]` is the qualitative distance between the i-th and j-th GPU
/// of `gpu_nodes` (diagonal is 0). Computed with one Dijkstra per GPU:
/// `O(|V_gpu| · E log V)`.
#[derive(Debug, Clone)]
pub struct GpuDistanceMatrix {
    /// The GPU vertices the matrix rows/columns refer to.
    pub gpu_nodes: Vec<NodeIdx>,
    dist: Vec<f64>,
    n: usize,
}

impl GpuDistanceMatrix {
    /// Builds the matrix for all GPU leaves of `graph`.
    pub fn build(graph: &TopoGraph) -> Self {
        let gpu_nodes = graph.gpu_nodes();
        let n = gpu_nodes.len();
        let mut dist = vec![0.0; n * n];
        for (i, &src) in gpu_nodes.iter().enumerate() {
            let (d, _) = dijkstra(graph, src);
            for (j, &dst) in gpu_nodes.iter().enumerate() {
                dist[i * n + j] = d[dst.index()];
            }
        }
        Self { gpu_nodes, dist, n }
    }

    /// Number of GPUs covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the machine has no GPUs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between the `i`-th and `j`-th GPU (matrix indices, not ids).
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.n + j]
    }

    /// The paper's Eq. 3 communication cost of an allocation: sum of pairwise
    /// distances over all unordered GPU pairs given by matrix indices.
    pub fn pairwise_cost(&self, indices: &[usize]) -> f64 {
        let mut total = 0.0;
        for (a, &i) in indices.iter().enumerate() {
            for &j in &indices[a + 1..] {
                total += self.distance(i, j);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dgx1, power8_minsky};
    use crate::ids::GpuId;

    #[test]
    fn minsky_same_socket_gpus_are_one_hop() {
        let m = power8_minsky();
        let p = shortest_path(m.graph(), m.gpu_node(GpuId(0)), m.gpu_node(GpuId(1))).unwrap();
        // Direct dual-NVLink edge, weight 1.
        assert_eq!(p.distance, 1.0);
        assert_eq!(p.hop_count(), 1);
        assert!(p.is_p2p(m.graph()));
        assert_eq!(p.bottleneck_bandwidth_gbs(), 40.0);
    }

    #[test]
    fn minsky_cross_socket_gpus_route_through_sockets() {
        let m = power8_minsky();
        let p = shortest_path(m.graph(), m.gpu_node(GpuId(0)), m.gpu_node(GpuId(2))).unwrap();
        // GPU0 -S0- (bus) -S1- GPU2: 1 + 20 + 1 = 22.
        assert_eq!(p.distance, 22.0);
        assert!(!p.is_p2p(m.graph()));
        // Bottleneck is the inter-socket bus.
        assert_eq!(p.bottleneck_bandwidth_gbs(), 32.0);
    }

    #[test]
    fn minsky_distance_matrix_is_symmetric_with_zero_diagonal() {
        let m = power8_minsky();
        let dm = GpuDistanceMatrix::build(m.graph());
        assert_eq!(dm.len(), 4);
        for i in 0..4 {
            assert_eq!(dm.distance(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(dm.distance(i, j), dm.distance(j, i));
            }
        }
    }

    #[test]
    fn minsky_pack_cost_lower_than_spread_cost() {
        let m = power8_minsky();
        let dm = GpuDistanceMatrix::build(m.graph());
        let pack = dm.pairwise_cost(&[0, 1]); // same socket
        let spread = dm.pairwise_cost(&[0, 2]); // cross socket
        assert!(pack < spread, "pack {pack} !< spread {spread}");
    }

    #[test]
    fn eq3_cost_sums_all_pairs() {
        let m = power8_minsky();
        let dm = GpuDistanceMatrix::build(m.graph());
        let all = dm.pairwise_cost(&[0, 1, 2, 3]);
        let manual: f64 = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .map(|(i, j)| dm.distance(i, j))
            .sum();
        assert_eq!(all, manual);
    }

    #[test]
    fn dgx1_cube_neighbors_are_p2p() {
        let d = dgx1();
        // GPU0-GPU1 share an NVLink cube edge.
        let p = shortest_path(d.graph(), d.gpu_node(GpuId(0)), d.gpu_node(GpuId(1))).unwrap();
        assert_eq!(p.distance, 1.0);
        assert!(p.is_p2p(d.graph()));
    }

    #[test]
    fn dgx1_non_nvlink_pair_routes_via_pcie_switches() {
        let d = dgx1();
        // GPU0 and GPU3's connectivity: in our cube-mesh GPU0-GPU3 has a
        // direct NVLink (face diagonal) but GPU1-GPU4 does not (cross
        // socket); it must go over switches + sockets.
        let p = shortest_path(d.graph(), d.gpu_node(GpuId(1)), d.gpu_node(GpuId(4))).unwrap();
        assert!(p.distance > 1.0);
    }

    #[test]
    fn unreachable_returns_none() {
        use crate::graph::TopoGraph;
        use crate::node::NodeKind;
        let mut g = TopoGraph::new();
        let a = g.add_node(NodeKind::Gpu(GpuId(0)));
        let b = g.add_node(NodeKind::Gpu(GpuId(1)));
        assert!(shortest_path(&g, a, b).is_none());
    }
}
