//! Typed vertices of the multi-level physical topology graph.

use crate::ids::{GpuId, MachineId, SocketId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a vertex plays in the multi-level graph of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// The cluster network root (level 0).
    Network,
    /// A machine vertex (`M{X}` in the paper's notation).
    Machine(MachineId),
    /// A CPU socket vertex (`S{Y}`).
    Socket(SocketId),
    /// An intermediate PCIe or NVLink switch below a socket.
    Switch {
        /// The socket this switch hangs off.
        socket: SocketId,
        /// Index of the switch within its socket.
        index: u32,
    },
    /// A GPU leaf vertex (`GPU{Z}`).
    Gpu(GpuId),
}

impl NodeKind {
    /// True for GPU leaves; the mapping algorithm only ever assigns tasks to
    /// these.
    #[inline]
    pub fn is_gpu(self) -> bool {
        matches!(self, NodeKind::Gpu(_))
    }

    /// The GPU id if this is a GPU vertex.
    #[inline]
    pub fn as_gpu(self) -> Option<GpuId> {
        match self {
            NodeKind::Gpu(g) => Some(g),
            _ => None,
        }
    }

    /// Numeric level in the hierarchy: network 0, machine 1, socket 2,
    /// switch 3, GPU 4. Used to sanity-check that edge weights grow with
    /// proximity to the root.
    pub fn level(self) -> u8 {
        match self {
            NodeKind::Network => 0,
            NodeKind::Machine(_) => 1,
            NodeKind::Socket(_) => 2,
            NodeKind::Switch { .. } => 3,
            NodeKind::Gpu(_) => 4,
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Network => write!(f, "Net"),
            NodeKind::Machine(m) => write!(f, "{m}"),
            NodeKind::Socket(s) => write!(f, "{s}"),
            NodeKind::Switch { socket, index } => write!(f, "{socket}.SW{index}"),
            NodeKind::Gpu(g) => write!(f, "{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_detection() {
        assert!(NodeKind::Gpu(GpuId(0)).is_gpu());
        assert!(!NodeKind::Socket(SocketId(0)).is_gpu());
        assert_eq!(NodeKind::Gpu(GpuId(3)).as_gpu(), Some(GpuId(3)));
        assert_eq!(NodeKind::Network.as_gpu(), None);
    }

    #[test]
    fn levels_follow_figure_seven() {
        assert_eq!(NodeKind::Network.level(), 0);
        assert_eq!(NodeKind::Machine(MachineId(0)).level(), 1);
        assert_eq!(NodeKind::Socket(SocketId(0)).level(), 2);
        assert_eq!(
            NodeKind::Switch {
                socket: SocketId(0),
                index: 0
            }
            .level(),
            3
        );
        assert_eq!(NodeKind::Gpu(GpuId(0)).level(), 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NodeKind::Network.to_string(), "Net");
        assert_eq!(NodeKind::Machine(MachineId(1)).to_string(), "M1");
        assert_eq!(
            NodeKind::Switch {
                socket: SocketId(1),
                index: 0
            }
            .to_string(),
            "S1.SW0"
        );
    }
}
