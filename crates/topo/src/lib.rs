//! # gts-topo — GPU hardware topology model
//!
//! Models the physical connectivity of multi-GPU machines and clusters as the
//! multi-level weighted graph described in §4.1.2 / Fig. 7 of Amaral et al.,
//! *Topology-Aware GPU Scheduling for Learning Workloads in Cloud
//! Environments* (SC'17):
//!
//! * the first level is the **network**, followed by **machine**, **socket**,
//!   optional **switch** levels (PCIe / NVLink switches), and finally **GPUs**;
//! * GPUs may additionally be connected directly to each other (NVLink P2P),
//!   giving some GPU pairs multiple paths;
//! * edge weights are *qualitative distances*: edges right above the GPU level
//!   weigh 1, switch-level edges 10, socket-level 20, machine-level 40 and
//!   network-level 100 — higher levels always weigh more.
//!
//! The crate provides:
//!
//! * [`graph::TopoGraph`] — a general undirected weighted graph with typed
//!   vertices ([`node::NodeKind`]) and typed links ([`link::LinkKind`]);
//! * [`builders`] — ready-made machine models: IBM Power8 "Minsky"
//!   (NVLink, Fig. 1 left), NVIDIA DGX-1 (hybrid cube-mesh, Fig. 1 right),
//!   a PCIe-only Power8/K80 variant (§3.2) and parametric synthetic machines;
//! * [`paths`] — Dijkstra shortest paths, all-pairs GPU distance matrices and
//!   bottleneck-bandwidth queries used by the performance model;
//! * [`machine::MachineTopology`] and [`cluster::ClusterTopology`] — the
//!   physical graph `P` consumed by the mapping algorithm.

#![warn(missing_docs)]

pub mod builders;
pub mod cluster;
pub mod discovery;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod link;
pub mod machine;
pub mod node;
pub mod numa;
pub mod paths;

pub use builders::{dgx1, dgx2, power8_minsky, power8_pcie_k80, power9_ac922, symmetric_machine, LinkProfile};
pub use cluster::{ClusterTopology, GlobalGpuId};
pub use discovery::{parse_topo_matrix, to_topo_matrix, DiscoveryError};
pub use dot::to_dot;
pub use graph::{EdgeRef, NodeIdx, TopoGraph};
pub use ids::{GpuId, MachineId, SocketId};
pub use link::LinkKind;
pub use machine::MachineTopology;
pub use node::NodeKind;
pub use numa::{NumaInfo, NumaNode, NumaParseError};
