//! Cluster-level topology: machines joined by a network.
//!
//! The paper's simulations (§5.3–§5.5) use clusters of homogeneous machines,
//! and jobs are preferentially placed within one machine. We therefore keep
//! one shared [`MachineTopology`] per machine *model* (all intra-machine
//! queries hit the shared distance matrix) and synthesize cross-machine
//! distances from the Fig. 7 level weights instead of materializing one
//! monolithic graph for a 1 000-machine cluster.

use crate::ids::{GpuId, MachineId};
use crate::link::level_weight;
use crate::machine::MachineTopology;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A GPU addressed cluster-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalGpuId {
    /// Host machine.
    pub machine: MachineId,
    /// GPU within the machine.
    pub gpu: GpuId,
}

impl fmt::Display for GlobalGpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.machine, self.gpu)
    }
}

/// A cluster of machines behind a common network root, optionally grouped
/// into racks (top-of-rack switch per rack, aggregation layer between
/// racks).
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    machines: Vec<Arc<MachineTopology>>,
    /// Rack id per machine; `None` = a single flat fabric.
    racks: Option<Vec<u32>>,
    /// Dense topology-class id per machine: machines sharing one
    /// [`MachineTopology`] allocation share a class. Homogeneous clusters
    /// collapse to a single class, which is what lets the placement engine
    /// memoize per *machine state* instead of per machine.
    class_of: Vec<u32>,
}

/// Dense class ids from shared-allocation identity: two machines belong to
/// the same class iff they point at the same [`MachineTopology`].
fn classes_of(machines: &[Arc<MachineTopology>]) -> Vec<u32> {
    let mut reps: Vec<*const MachineTopology> = Vec::new();
    machines
        .iter()
        .map(|m| {
            let p = Arc::as_ptr(m);
            match reps.iter().position(|&r| std::ptr::eq(r, p)) {
                Some(i) => i as u32,
                None => {
                    reps.push(p);
                    (reps.len() - 1) as u32
                }
            }
        })
        .collect()
}

impl ClusterTopology {
    /// A cluster of `n` identical machines on one flat fabric.
    pub fn homogeneous(machine: MachineTopology, n: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one machine");
        let shared = Arc::new(machine);
        let machines: Vec<Arc<MachineTopology>> =
            (0..n).map(|_| Arc::clone(&shared)).collect();
        let class_of = classes_of(&machines);
        Self { machines, racks: None, class_of }
    }

    /// A cluster of identical machines arranged in racks: `n_racks` racks of
    /// `machines_per_rack` machines each. Machine ids are rack-major
    /// (machines 0..per_rack in rack 0, and so on).
    pub fn homogeneous_racked(
        machine: MachineTopology,
        n_racks: usize,
        machines_per_rack: usize,
    ) -> Self {
        assert!(n_racks > 0 && machines_per_rack > 0, "racks and machines must be positive");
        let shared = Arc::new(machine);
        let n = n_racks * machines_per_rack;
        let machines: Vec<Arc<MachineTopology>> =
            (0..n).map(|_| Arc::clone(&shared)).collect();
        let class_of = classes_of(&machines);
        Self {
            machines,
            racks: Some((0..n).map(|i| (i / machines_per_rack) as u32).collect()),
            class_of,
        }
    }

    /// A cluster from explicit (possibly heterogeneous) machines on one
    /// flat fabric.
    pub fn from_machines(machines: Vec<Arc<MachineTopology>>) -> Self {
        assert!(!machines.is_empty(), "a cluster needs at least one machine");
        let class_of = classes_of(&machines);
        Self { machines, racks: None, class_of }
    }

    /// The machine's topology class: machines sharing one
    /// [`MachineTopology`] allocation report the same dense id. Placements
    /// on same-class machines with identical occupancy are interchangeable,
    /// which the evaluation engine exploits for memoization.
    pub fn machine_class(&self, id: MachineId) -> u32 {
        self.class_of[id.index()]
    }

    /// Number of distinct topology classes (1 for homogeneous clusters).
    pub fn n_machine_classes(&self) -> usize {
        self.class_of.iter().copied().max().map_or(0, |m| m as usize + 1)
    }

    /// The rack a machine sits in (0 on flat fabrics).
    pub fn rack_of(&self, machine: MachineId) -> u32 {
        self.racks
            .as_ref()
            .map(|r| r[machine.index()])
            .unwrap_or(0)
    }

    /// Number of racks (1 on flat fabrics).
    pub fn n_racks(&self) -> usize {
        self.racks
            .as_ref()
            .map(|r| r.iter().copied().max().map_or(1, |m| m as usize + 1))
            .unwrap_or(1)
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }

    /// Total GPU count across the cluster.
    pub fn n_gpus(&self) -> usize {
        self.machines.iter().map(|m| m.n_gpus()).sum()
    }

    /// Machine ids, ascending.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.machines.len() as u32).map(MachineId)
    }

    /// Topology of one machine.
    pub fn machine(&self, id: MachineId) -> &MachineTopology {
        &self.machines[id.index()]
    }

    /// Shared handle to one machine's topology.
    pub fn machine_arc(&self, id: MachineId) -> Arc<MachineTopology> {
        Arc::clone(&self.machines[id.index()])
    }

    /// All GPUs in the cluster, machine-major order.
    pub fn gpus(&self) -> impl Iterator<Item = GlobalGpuId> + '_ {
        self.machines().flat_map(move |m| {
            self.machine(m).gpus().map(move |g| GlobalGpuId { machine: m, gpu: g })
        })
    }

    /// Qualitative distance between any two GPUs in the cluster.
    ///
    /// Same machine → the machine's distance matrix. Different machines →
    /// attach-cost of each GPU up to its machine root plus two top-of-rack
    /// hops, mirroring what a fully materialized Fig. 7 graph would
    /// produce: `d(a, Ma) + 100 + 100 + d(b, Mb)` where `d(g, M) = 1 + 40`.
    /// Machines in different racks additionally cross the aggregation
    /// layer (two hops at weight 200).
    pub fn distance(&self, a: GlobalGpuId, b: GlobalGpuId) -> f64 {
        if a.machine == b.machine {
            return self.machine(a.machine).distance(a.gpu, b.gpu);
        }
        let to_root = level_weight::GPU + level_weight::MACHINE;
        let mut d = 2.0 * to_root + 2.0 * level_weight::NETWORK;
        if self.rack_of(a.machine) != self.rack_of(b.machine) {
            d += 2.0 * level_weight::AGGREGATION;
        }
        d
    }

    /// Eq. 3 cost over an arbitrary cluster-wide GPU set.
    pub fn pairwise_cost(&self, gpus: &[GlobalGpuId]) -> f64 {
        let mut total = 0.0;
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                total += self.distance(a, b);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::power8_minsky;

    fn cluster(n: usize) -> ClusterTopology {
        ClusterTopology::homogeneous(power8_minsky(), n)
    }

    #[test]
    fn counts() {
        let c = cluster(5);
        assert_eq!(c.n_machines(), 5);
        assert_eq!(c.n_gpus(), 20);
        assert_eq!(c.gpus().count(), 20);
    }

    #[test]
    fn intra_machine_distance_delegates() {
        let c = cluster(2);
        let a = GlobalGpuId { machine: MachineId(0), gpu: GpuId(0) };
        let b = GlobalGpuId { machine: MachineId(0), gpu: GpuId(1) };
        assert_eq!(c.distance(a, b), 1.0);
    }

    #[test]
    fn cross_machine_distance_dominates_everything_intra() {
        let c = cluster(2);
        let a = GlobalGpuId { machine: MachineId(0), gpu: GpuId(0) };
        let b = GlobalGpuId { machine: MachineId(1), gpu: GpuId(0) };
        let cross = c.distance(a, b);
        assert_eq!(cross, 2.0 * 41.0 + 200.0);
        assert!(cross > c.machine(MachineId(0)).max_pair_distance());
    }

    #[test]
    fn distance_is_symmetric() {
        let c = cluster(3);
        let a = GlobalGpuId { machine: MachineId(0), gpu: GpuId(3) };
        let b = GlobalGpuId { machine: MachineId(2), gpu: GpuId(1) };
        assert_eq!(c.distance(a, b), c.distance(b, a));
        assert_eq!(c.distance(a, a), 0.0);
    }

    #[test]
    fn pairwise_cost_mixes_intra_and_cross() {
        let c = cluster(2);
        let set = [
            GlobalGpuId { machine: MachineId(0), gpu: GpuId(0) },
            GlobalGpuId { machine: MachineId(0), gpu: GpuId(1) },
            GlobalGpuId { machine: MachineId(1), gpu: GpuId(0) },
        ];
        let expected = 1.0 + 282.0 + 282.0;
        assert_eq!(c.pairwise_cost(&set), expected);
    }

    #[test]
    fn homogeneous_cluster_shares_topology_memory() {
        let c = cluster(1000);
        assert_eq!(c.n_gpus(), 4000);
        // All point at the same allocation.
        let first = Arc::as_ptr(&c.machine_arc(MachineId(0)));
        let last = Arc::as_ptr(&c.machine_arc(MachineId(999)));
        assert_eq!(first, last);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_rejected() {
        ClusterTopology::from_machines(Vec::new());
    }

    #[test]
    fn machine_classes_track_shared_topologies() {
        let c = cluster(5);
        assert_eq!(c.n_machine_classes(), 1);
        assert_eq!(c.machine_class(MachineId(0)), c.machine_class(MachineId(4)));

        // Distinct allocations are distinct classes even when structurally
        // identical — class identity is allocation identity, never a deep
        // comparison.
        let hetero = ClusterTopology::from_machines(vec![
            Arc::new(power8_minsky()),
            Arc::new(power8_minsky()),
        ]);
        assert_eq!(hetero.n_machine_classes(), 2);
        assert_ne!(
            hetero.machine_class(MachineId(0)),
            hetero.machine_class(MachineId(1))
        );

        // Repeated handles collapse back onto their first class id.
        let shared = c.machine_arc(MachineId(0));
        let mixed = ClusterTopology::from_machines(vec![
            Arc::clone(&shared),
            Arc::new(power8_minsky()),
            shared,
        ]);
        assert_eq!(mixed.n_machine_classes(), 2);
        assert_eq!(mixed.machine_class(MachineId(0)), 0);
        assert_eq!(mixed.machine_class(MachineId(1)), 1);
        assert_eq!(mixed.machine_class(MachineId(2)), 0);
    }

    #[test]
    fn racked_cluster_distances() {
        let c = ClusterTopology::homogeneous_racked(power8_minsky(), 2, 2);
        assert_eq!(c.n_machines(), 4);
        assert_eq!(c.n_racks(), 2);
        assert_eq!(c.rack_of(MachineId(0)), 0);
        assert_eq!(c.rack_of(MachineId(1)), 0);
        assert_eq!(c.rack_of(MachineId(2)), 1);

        let g = |m: u32| GlobalGpuId { machine: MachineId(m), gpu: GpuId(0) };
        let same_rack = c.distance(g(0), g(1));
        let cross_rack = c.distance(g(0), g(2));
        assert_eq!(same_rack, 282.0);
        assert_eq!(cross_rack, 282.0 + 400.0);
        // Flat clusters never pay the aggregation penalty.
        let flat = ClusterTopology::homogeneous(power8_minsky(), 4);
        assert_eq!(flat.distance(g(0), g(2)), 282.0);
        assert_eq!(flat.n_racks(), 1);
    }
}
