//! NUMA information from `numactl --hardware`.
//!
//! §5.1: the prototype runs "the command `numactl --hardware` to include
//! socket distance and CPU locality in the model" and, "for preventing
//! performance variability related to NUMA remote memory access, the
//! applications with only GPUs in the same socket are bound to the socket
//! using the command `numactl`". This module parses that output and
//! produces the binding the enforcement layer would apply.

use crate::ids::SocketId;
use std::fmt;

/// One NUMA node's resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaNode {
    /// Node id (socket id on the paper's systems).
    pub id: u32,
    /// CPUs local to the node.
    pub cpus: Vec<u32>,
    /// Memory size in MB (0 when the line is absent).
    pub size_mb: u64,
}

/// Parsed `numactl --hardware` output.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaInfo {
    /// Nodes, ascending id.
    pub nodes: Vec<NumaNode>,
    /// ACPI SLIT distances, `distances[i][j]` (10 = local).
    pub distances: Vec<Vec<u32>>,
}

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumaParseError {
    /// No `node # cpus:` lines found.
    NoNodes,
    /// The distance matrix is missing or ragged.
    BadDistances,
    /// A malformed field.
    Malformed {
        /// The offending line.
        line: String,
    },
}

impl fmt::Display for NumaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumaParseError::NoNodes => write!(f, "no NUMA node cpu lines found"),
            NumaParseError::BadDistances => write!(f, "missing or ragged distance matrix"),
            NumaParseError::Malformed { line } => write!(f, "malformed line: {line}"),
        }
    }
}

impl std::error::Error for NumaParseError {}

impl NumaInfo {
    /// Parses `numactl --hardware` text.
    pub fn parse(text: &str) -> Result<Self, NumaParseError> {
        let mut nodes: Vec<NumaNode> = Vec::new();
        let mut distances: Vec<Vec<u32>> = Vec::new();
        let mut in_distances = false;

        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with("node distances") {
                in_distances = true;
                continue;
            }
            if in_distances {
                // Header row ("node   0   1") or data row ("  0:  10  40").
                if let Some((label, rest)) = line.split_once(':') {
                    if label.trim().parse::<u32>().is_ok() {
                        let row: Result<Vec<u32>, _> =
                            rest.split_whitespace().map(|t| t.parse()).collect();
                        let row = row.map_err(|_| NumaParseError::Malformed {
                            line: line.to_string(),
                        })?;
                        distances.push(row);
                    }
                }
                continue;
            }
            // "node 0 cpus: 0 1 2 3" / "node 0 size: 261788 MB".
            let mut parts = line.split_whitespace();
            if parts.next() != Some("node") {
                continue;
            }
            let Some(id_str) = parts.next() else { continue };
            let Ok(id) = id_str.parse::<u32>() else { continue };
            match parts.next() {
                Some("cpus:") => {
                    let cpus: Result<Vec<u32>, _> = parts.map(|t| t.parse()).collect();
                    let cpus = cpus.map_err(|_| NumaParseError::Malformed {
                        line: line.to_string(),
                    })?;
                    nodes.push(NumaNode { id, cpus, size_mb: 0 });
                }
                Some("size:") => {
                    if let (Some(v), Some(node)) =
                        (parts.next(), nodes.iter_mut().find(|n| n.id == id))
                    {
                        node.size_mb = v.parse().map_err(|_| NumaParseError::Malformed {
                            line: line.to_string(),
                        })?;
                    }
                }
                _ => {}
            }
        }

        if nodes.is_empty() {
            return Err(NumaParseError::NoNodes);
        }
        nodes.sort_by_key(|n| n.id);
        if distances.len() != nodes.len()
            || distances.iter().any(|r| r.len() != nodes.len())
        {
            return Err(NumaParseError::BadDistances);
        }
        Ok(Self { nodes, distances })
    }

    /// Number of NUMA nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// SLIT distance between two nodes.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.distances[a][b]
    }

    /// CPUs of a node, if it exists.
    pub fn cpus_of(&self, node: u32) -> Option<&[u32]> {
        self.nodes.iter().find(|n| n.id == node).map(|n| n.cpus.as_slice())
    }

    /// The §5.1 enforcement command for a job bound to one socket, e.g.
    /// `numactl --cpunodebind=0 --membind=0`.
    pub fn bind_command(&self, socket: SocketId) -> String {
        format!(
            "numactl --cpunodebind={id} --membind={id}",
            id = socket.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINSKY_NUMACTL: &str = "\
available: 2 nodes (0-1)
node 0 cpus: 0 1 2 3 4 5 6 7
node 0 size: 261788 MB
node 0 free: 240211 MB
node 1 cpus: 8 9 10 11 12 13 14 15
node 1 size: 261788 MB
node 1 free: 251923 MB
node distances:
node   0   1
  0:  10  40
  1:  40  10
";

    #[test]
    fn parses_the_minsky_layout() {
        let info = NumaInfo::parse(MINSKY_NUMACTL).unwrap();
        assert_eq!(info.n_nodes(), 2);
        assert_eq!(info.cpus_of(0).unwrap(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(info.cpus_of(1).unwrap().len(), 8);
        assert_eq!(info.nodes[0].size_mb, 261788);
        assert_eq!(info.distance(0, 0), 10);
        assert_eq!(info.distance(0, 1), 40);
        assert_eq!(info.distance(1, 0), 40);
        assert!(info.cpus_of(9).is_none());
    }

    #[test]
    fn remote_distance_exceeds_local() {
        let info = NumaInfo::parse(MINSKY_NUMACTL).unwrap();
        for i in 0..info.n_nodes() {
            for j in 0..info.n_nodes() {
                if i == j {
                    assert_eq!(info.distance(i, j), 10);
                } else {
                    assert!(info.distance(i, j) > 10);
                }
            }
        }
    }

    #[test]
    fn bind_command_matches_the_paper_usage() {
        let info = NumaInfo::parse(MINSKY_NUMACTL).unwrap();
        assert_eq!(
            info.bind_command(SocketId(1)),
            "numactl --cpunodebind=1 --membind=1"
        );
    }

    #[test]
    fn error_cases() {
        assert_eq!(NumaInfo::parse("nonsense"), Err(NumaParseError::NoNodes));
        let no_matrix = "node 0 cpus: 0 1\n";
        assert_eq!(
            NumaInfo::parse(no_matrix),
            Err(NumaParseError::BadDistances)
        );
        let ragged = "\
node 0 cpus: 0 1
node 1 cpus: 2 3
node distances:
node   0   1
  0:  10  40
";
        assert_eq!(NumaInfo::parse(ragged), Err(NumaParseError::BadDistances));
        let bad_cpu = "node 0 cpus: a b\n";
        assert!(matches!(
            NumaInfo::parse(bad_cpu),
            Err(NumaParseError::Malformed { .. })
        ));
    }

    #[test]
    fn four_node_matrix() {
        let text = "\
node 0 cpus: 0
node 1 cpus: 1
node 2 cpus: 2
node 3 cpus: 3
node distances:
node   0   1   2   3
  0:  10  20  40  40
  1:  20  10  40  40
  2:  40  40  10  20
  3:  40  40  20  10
";
        let info = NumaInfo::parse(text).unwrap();
        assert_eq!(info.n_nodes(), 4);
        assert_eq!(info.distance(2, 3), 20);
    }
}
