//! Ready-made machine topologies from the paper, plus a parametric builder.
//!
//! All builders follow the multi-level encoding of Fig. 7: a machine vertex,
//! socket vertices joined by the inter-socket bus (weight 20), optional
//! switch vertices (weight 10 to their socket), GPU attachment edges
//! (weight 1) and direct GPU↔GPU NVLink edges (weight 1).

use crate::graph::{NodeIdx, TopoGraph};
use crate::ids::{GpuId, MachineId, SocketId};
use crate::link::{level_weight, LinkKind};
use crate::machine::MachineTopology;
use crate::node::NodeKind;

/// How GPUs connect to their host and to each other in a parametric machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Link used for GPU → host (socket or switch) attachment.
    pub host_link: LinkKind,
    /// Direct link between sibling GPUs on the same socket, if any.
    pub peer_link: Option<LinkKind>,
}

impl LinkProfile {
    /// Power8 Minsky: dual-lane NVLink everywhere (40 GB/s bricks).
    pub fn nvlink_dual() -> Self {
        Self {
            host_link: LinkKind::NvLink { lanes: 2 },
            peer_link: Some(LinkKind::NvLink { lanes: 2 }),
        }
    }

    /// PCIe gen3 host attachment, no direct GPU links (K80-era machine).
    pub fn pcie_gen3() -> Self {
        Self {
            host_link: LinkKind::PciE { gen: 3 },
            peer_link: None,
        }
    }
}

pub(crate) struct MachineBuilder {
    graph: TopoGraph,
    machine: NodeIdx,
    pub(crate) sockets: Vec<NodeIdx>,
    pub(crate) gpus: Vec<NodeIdx>,
    socket_of: Vec<SocketId>,
}

impl MachineBuilder {
    pub(crate) fn new(n_sockets: usize) -> Self {
        let mut graph = TopoGraph::with_capacity(1 + n_sockets);
        let machine = graph.add_node(NodeKind::Machine(MachineId(0)));
        let sockets: Vec<NodeIdx> = (0..n_sockets)
            .map(|s| graph.add_node(NodeKind::Socket(SocketId(s as u32))))
            .collect();
        for &s in &sockets {
            graph.add_edge(machine, s, level_weight::MACHINE, LinkKind::Containment);
        }
        // Inter-socket bus: full mesh (2 sockets on all paper systems).
        for i in 0..sockets.len() {
            for j in (i + 1)..sockets.len() {
                graph.add_edge(
                    sockets[i],
                    sockets[j],
                    level_weight::SOCKET,
                    LinkKind::InterSocket,
                );
            }
        }
        Self {
            graph,
            machine,
            sockets,
            gpus: Vec::new(),
            socket_of: Vec::new(),
        }
    }

    pub(crate) fn add_gpu(&mut self, socket: SocketId, attach_to: NodeIdx, link: LinkKind) -> NodeIdx {
        let id = GpuId(self.gpus.len() as u32);
        let node = self.graph.add_node(NodeKind::Gpu(id));
        self.graph
            .add_edge(node, attach_to, level_weight::GPU, link);
        self.gpus.push(node);
        self.socket_of.push(socket);
        node
    }

    pub(crate) fn add_switch(&mut self, socket: SocketId, index: u32, link: LinkKind) -> NodeIdx {
        let node = self.graph.add_node(NodeKind::Switch { socket, index });
        self.graph.add_edge(
            self.sockets[socket.index()],
            node,
            level_weight::SWITCH,
            link,
        );
        node
    }

    pub(crate) fn peer_edge(&mut self, a: NodeIdx, b: NodeIdx, link: LinkKind) {
        self.graph.add_edge(a, b, level_weight::GPU, link);
    }

    pub(crate) fn finish(self, name: &str) -> MachineTopology {
        MachineTopology::from_parts(
            name,
            self.graph,
            self.machine,
            self.sockets,
            self.gpus,
            self.socket_of,
        )
    }
}

/// IBM Power8 S822LC "Minsky" (§3.1, Fig. 1 left): 2 sockets, 2 × Tesla P100
/// per socket. Intra-socket CPU↔GPU and GPU↔GPU links are dual-lane NVLink
/// (40 GB/s unidirectional); sockets are joined by the X-Bus.
///
/// ```
/// use gts_topo::{power8_minsky, GpuId};
///
/// let m = power8_minsky();
/// assert_eq!(m.n_gpus(), 4);
/// // NVLink siblings are one hop apart; cross-socket pairs ride the bus.
/// assert_eq!(m.distance(GpuId(0), GpuId(1)), 1.0);
/// assert_eq!(m.distance(GpuId(0), GpuId(2)), 22.0);
/// assert!(m.is_p2p(GpuId(0), GpuId(1)));
/// ```
pub fn power8_minsky() -> MachineTopology {
    let mut b = MachineBuilder::new(2);
    let nv = LinkKind::NvLink { lanes: 2 };
    let mut pairs = Vec::new();
    for s in 0..2u32 {
        let socket = SocketId(s);
        let sock_node = b.sockets[s as usize];
        let g0 = b.add_gpu(socket, sock_node, nv);
        let g1 = b.add_gpu(socket, sock_node, nv);
        pairs.push((g0, g1));
    }
    for (g0, g1) in pairs {
        b.peer_edge(g0, g1, nv);
    }
    b.finish("power8-minsky")
}

/// The PCIe-only Power8 comparison machine of §3.2: same shape as Minsky
/// but K80-era GPUs behind one PCIe gen3 switch per socket and no NVLink.
/// Same-switch peers can still do P2P DMA (through the switch, at PCIe
/// bandwidth); cross-socket traffic bounces through host memory.
pub fn power8_pcie_k80() -> MachineTopology {
    let mut b = MachineBuilder::new(2);
    let pcie = LinkKind::PciE { gen: 3 };
    for s in 0..2u32 {
        let socket = SocketId(s);
        let sw = b.add_switch(socket, 0, pcie);
        b.add_gpu(socket, sw, pcie);
        b.add_gpu(socket, sw, pcie);
    }
    b.finish("power8-pcie-k80")
}

/// NVIDIA DGX-1 (Fig. 1 right): 8 × P100 over a hybrid cube-mesh. Each
/// socket hosts two PCIe switches with two GPUs each; NVLink forms two
/// fully-connected quads (GPUs 0–3, GPUs 4–7) plus the four cross-socket
/// pairs (0,4), (1,5), (2,6), (3,7) — the "12 cube edges + 2 face diagonals
/// per side" wiring, single-lane per link.
pub fn dgx1() -> MachineTopology {
    let mut b = MachineBuilder::new(2);
    let nv1 = LinkKind::NvLink { lanes: 1 };
    let pcie = LinkKind::PciE { gen: 3 };

    // PCIe fabric: socket s has switches 2s, 2s+1, each with two GPUs.
    for s in 0..2u32 {
        let socket = SocketId(s);
        for sw in 0..2u32 {
            let sw_node = b.add_switch(socket, sw, pcie);
            b.add_gpu(socket, sw_node, pcie);
            b.add_gpu(socket, sw_node, pcie);
        }
    }
    // NVLink mesh.
    let quad = |base: usize| [(base, base + 1), (base, base + 2), (base, base + 3),
                              (base + 1, base + 2), (base + 1, base + 3), (base + 2, base + 3)];
    for (a, bb) in quad(0).into_iter().chain(quad(4)) {
        b.peer_edge(b.gpus[a], b.gpus[bb], nv1);
    }
    for g in 0..4usize {
        b.peer_edge(b.gpus[g], b.gpus[g + 4], nv1);
    }
    b.finish("dgx-1")
}

/// IBM Power9 AC922 ("Summit node"-style): 2 sockets × 3 Tesla V100, with
/// tri-lane NVLink bricks between the CPU and its GPUs and among the three
/// sibling GPUs. The immediate successor of the paper's testbed; included
/// to show the model generalizes beyond the evaluated machines.
pub fn power9_ac922() -> MachineTopology {
    let mut b = MachineBuilder::new(2);
    let nv3 = LinkKind::NvLink { lanes: 3 };
    for s in 0..2u32 {
        let socket = SocketId(s);
        let sock_node = b.sockets[s as usize];
        let local: Vec<NodeIdx> = (0..3)
            .map(|_| b.add_gpu(socket, sock_node, nv3))
            .collect();
        for i in 0..local.len() {
            for j in (i + 1)..local.len() {
                b.peer_edge(local[i], local[j], nv3);
            }
        }
    }
    b.finish("power9-ac922")
}

/// NVIDIA DGX-2-style machine: 16 V100s on an NVSwitch plane that gives
/// every GPU pair full-bandwidth P2P. Modeled as one switch vertex per
/// 8-GPU baseboard carrying six-lane NVLink, with the plane bridged at the
/// GPU-adjacent weight — every pair is switch-routed P2P, so the topology
/// is communication-flat and only interference/fragmentation differentiate
/// placements.
pub fn dgx2() -> MachineTopology {
    let mut b = MachineBuilder::new(2);
    let nv6 = LinkKind::NvLink { lanes: 6 };
    let mut switches = Vec::new();
    for s in 0..2u32 {
        let socket = SocketId(s);
        let sw = b.add_switch(socket, 0, nv6);
        switches.push(sw);
        for _ in 0..8 {
            b.add_gpu(socket, sw, nv6);
        }
    }
    b.peer_edge(switches[0], switches[1], nv6);
    b.finish("dgx-2")
}

/// Parametric symmetric machine: `n_sockets` sockets × `gpus_per_socket`
/// GPUs, attached per `profile`. When `profile.peer_link` is set, sibling
/// GPUs on a socket get a full NVLink mesh (as on Minsky).
///
/// # Panics
///
/// Panics if `n_sockets == 0` or `gpus_per_socket == 0`.
pub fn symmetric_machine(
    name: &str,
    n_sockets: usize,
    gpus_per_socket: usize,
    profile: LinkProfile,
) -> MachineTopology {
    assert!(n_sockets > 0, "a machine needs at least one socket");
    assert!(gpus_per_socket > 0, "a machine needs at least one GPU per socket");
    let mut b = MachineBuilder::new(n_sockets);
    for s in 0..n_sockets {
        let socket = SocketId(s as u32);
        let sock_node = b.sockets[s];
        let mut local = Vec::with_capacity(gpus_per_socket);
        for _ in 0..gpus_per_socket {
            local.push(b.add_gpu(socket, sock_node, profile.host_link));
        }
        if let Some(peer) = profile.peer_link {
            for i in 0..local.len() {
                for j in (i + 1)..local.len() {
                    b.peer_edge(local[i], local[j], peer);
                }
            }
        }
    }
    b.finish(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minsky_matches_fig7_weights() {
        let m = power8_minsky();
        assert!(m.graph().validate_level_weights().is_ok());
        // 1 machine + 2 sockets + 4 GPUs.
        assert_eq!(m.graph().node_count(), 7);
        // 2 containment + 1 bus + 4 attach + 2 peer = 9 edges.
        assert_eq!(m.graph().edge_count(), 9);
    }

    #[test]
    fn dgx1_matches_fig1_wiring() {
        let d = dgx1();
        assert!(d.graph().validate_level_weights().is_ok());
        // 1 machine + 2 sockets + 4 switches + 8 GPUs.
        assert_eq!(d.graph().node_count(), 15);
        // 2 containment + 1 bus + 4 socket-switch + 8 attach + 16 NVLink.
        assert_eq!(d.graph().edge_count(), 31);
        // Every GPU has exactly 4 NVLink neighbours (hybrid cube-mesh).
        for g in d.gpus() {
            let nvlinks = d
                .graph()
                .neighbors(d.gpu_node(g))
                .iter()
                .filter(|e| matches!(e.kind, LinkKind::NvLink { .. }))
                .count();
            assert_eq!(nvlinks, 4, "{g} should have 4 NVLink lanes");
        }
    }

    #[test]
    fn dgx1_unpaired_cross_socket_goes_over_pcie_and_bus() {
        let d = dgx1();
        // GPU1→GPU4 has no direct link and GPUs don't forward: the route is
        // GPU1 - SW - S0 - S1 - SW - GPU4 = 1 + 10 + 20 + 10 + 1 = 42.
        assert_eq!(d.distance(GpuId(1), GpuId(4)), 42.0);
        assert!(!d.is_p2p(GpuId(1), GpuId(4)));
    }

    #[test]
    fn dgx1_same_switch_pcie_route() {
        let d = dgx1();
        // GPU0/GPU1 share a switch, but the direct NVLink (weight 1) wins
        // over the PCIe route (1+1=2).
        let p = d.path(GpuId(0), GpuId(1));
        assert_eq!(p.distance, 1.0);
    }

    #[test]
    fn pcie_machine_same_switch_peers_keep_p2p_at_pcie_speed() {
        let m = power8_pcie_k80();
        let p = m.path(GpuId(0), GpuId(1));
        assert_eq!(p.distance, 2.0); // GPU0 - SW - GPU1
        assert!(p.is_p2p(m.graph()), "switch routes forward P2P");
        assert_eq!(p.bottleneck_bandwidth_gbs(), 16.0);
    }

    #[test]
    fn pcie_machine_cross_socket_bounces_through_host() {
        let m = power8_pcie_k80();
        let p = m.path(GpuId(0), GpuId(2));
        // GPU0 - SW - S0 - S1 - SW - GPU2 = 1 + 10 + 20 + 10 + 1.
        assert_eq!(p.distance, 42.0);
        assert!(!p.is_p2p(m.graph()));
        assert_eq!(p.bottleneck_bandwidth_gbs(), 16.0);
    }

    #[test]
    fn ac922_has_three_gpu_nvlink_triads() {
        let m = power9_ac922();
        assert_eq!(m.n_gpus(), 6);
        assert_eq!(m.n_sockets(), 2);
        assert!(m.graph().validate_level_weights().is_ok());
        // Triad members are one NVLink hop apart at 60 GB/s.
        for a in 0..3u32 {
            for bb in 0..3u32 {
                if a != bb {
                    assert_eq!(m.distance(GpuId(a), GpuId(bb)), 1.0);
                    assert_eq!(m.pair_bandwidth_gbs(GpuId(a), GpuId(bb)), 60.0);
                }
            }
        }
        // Cross socket goes over the bus.
        assert_eq!(m.distance(GpuId(0), GpuId(3)), 22.0);
        assert!(!m.is_p2p(GpuId(0), GpuId(3)));
    }

    #[test]
    fn dgx2_is_communication_flat() {
        let m = dgx2();
        assert_eq!(m.n_gpus(), 16);
        assert!(m.graph().validate_level_weights().is_ok());
        // Same baseboard: GPU-SW-GPU = 2; across the plane: +1 bridge hop.
        assert_eq!(m.distance(GpuId(0), GpuId(1)), 2.0);
        assert_eq!(m.distance(GpuId(0), GpuId(8)), 3.0);
        // Every pair is switch-routed P2P at NVSwitch bandwidth.
        for a in [0u32, 3, 8, 15] {
            for bb in [1u32, 7, 9, 14] {
                if a != bb {
                    assert!(m.is_p2p(GpuId(a), GpuId(bb)), "GPU{a}-GPU{bb}");
                    assert_eq!(m.pair_bandwidth_gbs(GpuId(a), GpuId(bb)), 120.0);
                }
            }
        }
    }

    #[test]
    fn symmetric_machine_scales() {
        let m = symmetric_machine("big", 4, 4, LinkProfile::nvlink_dual());
        assert_eq!(m.n_gpus(), 16);
        assert_eq!(m.n_sockets(), 4);
        assert!(m.graph().validate_level_weights().is_ok());
        // Sibling GPUs are 1 apart, cross-socket 22.
        assert_eq!(m.distance(GpuId(0), GpuId(1)), 1.0);
        assert_eq!(m.distance(GpuId(0), GpuId(4)), 22.0);
    }

    #[test]
    fn symmetric_pcie_machine_has_no_peer_links() {
        let m = symmetric_machine("pcie", 2, 2, LinkProfile::pcie_gen3());
        assert_eq!(m.distance(GpuId(0), GpuId(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn zero_sockets_rejected() {
        symmetric_machine("bad", 0, 2, LinkProfile::pcie_gen3());
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        symmetric_machine("bad", 2, 0, LinkProfile::pcie_gen3());
    }
}
