//! Physical interconnect link types and their characteristics.
//!
//! The paper's testbed (§3.1) exposes three classes of links: NVIDIA NVLink
//! (NVHS, 20 GB/s unidirectional per lane, bondable into multi-lane bricks),
//! PCI-Express gen3 x16 (≈16 GB/s unidirectional) and the inter-socket system
//! bus (X-Bus on Power8, QPI on x86). Clusters add a network level.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of physical link an edge in the topology graph represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// NVLink brick with the given number of bonded lanes (Power8 Minsky uses
    /// dual-lane bricks: 2 × 20 GB/s = 40 GB/s unidirectional; DGX-1 cube
    /// edges are single-lane).
    NvLink {
        /// Number of bonded NVLink lanes (1 or 2 on the paper's systems).
        lanes: u8,
    },
    /// PCI-Express link of a given generation, x16 width assumed.
    PciE {
        /// PCIe generation (gen 3 on all of the paper's systems).
        gen: u8,
    },
    /// The inter-socket system bus (X-Bus on Power8, QPI on Intel).
    InterSocket,
    /// The data-center network connecting machines (cluster level).
    Network,
    /// Logical containment edge that carries no data traffic by itself
    /// (e.g. machine → socket in the multi-level graph). Distance-only.
    Containment,
}

impl LinkKind {
    /// Unidirectional peak bandwidth in GB/s, as reported in §1 and §3.1.
    ///
    /// `Containment` edges are modeled with the bandwidth of the level they
    /// bridge being accounted on the real links; we give them `f64::INFINITY`
    /// so they never become the bottleneck of a path.
    pub fn peak_bandwidth_gbs(self) -> f64 {
        match self {
            LinkKind::NvLink { lanes } => 20.0 * f64::from(lanes),
            LinkKind::PciE { gen } => match gen {
                1 => 4.0,
                2 => 8.0,
                _ => 16.0,
            },
            // Power8 X-Bus: ~38.4 GB/s raw but heavily shared; the paper
            // treats cross-socket hops as the slow path. We use an effective
            // figure of 32 GB/s peak (contention handled by the perf model).
            LinkKind::InterSocket => 32.0,
            // 10 GbE-class fabric ≈ 1.25 GB/s; clusters in the paper never
            // span a job across machines unless the job opts in.
            LinkKind::Network => 1.25,
            LinkKind::Containment => f64::INFINITY,
        }
    }

    /// Whether traffic between two GPUs routed over this link must bounce
    /// through host memory (i.e. breaks direct P2P). True for the
    /// inter-socket bus and the network.
    pub fn breaks_p2p(self) -> bool {
        matches!(self, LinkKind::InterSocket | LinkKind::Network)
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::NvLink { lanes } => write!(f, "NVLink x{lanes}"),
            LinkKind::PciE { gen } => write!(f, "PCIe gen{gen} x16"),
            LinkKind::InterSocket => write!(f, "inter-socket bus"),
            LinkKind::Network => write!(f, "network"),
            LinkKind::Containment => write!(f, "containment"),
        }
    }
}

/// Qualitative level weights for the multi-level physical graph (Fig. 7).
///
/// "Since the distances are qualitative, there are no constraints on how the
/// weights are defined, except that higher levels will have larger weights."
/// These constants mirror the figure: GPU-adjacent edges weigh 1, switch
/// edges 10, socket edges 20, machine edges 40 and the network edge 100.
pub mod level_weight {
    /// Weight of edges incident to the GPU level (GPU↔GPU NVLink, GPU↔switch,
    /// GPU↔socket attachment).
    pub const GPU: f64 = 1.0;
    /// Weight of edges between a switch and the socket above it.
    pub const SWITCH: f64 = 10.0;
    /// Weight of edges between sockets and the machine vertex (and the
    /// socket↔socket bus).
    pub const SOCKET: f64 = 20.0;
    /// Weight of edges between machine vertices and the network vertex.
    pub const MACHINE: f64 = 40.0;
    /// Weight of the network level itself (crossing the top-of-rack
    /// fabric).
    pub const NETWORK: f64 = 100.0;
    /// Weight of crossing the aggregation layer between racks.
    pub const AGGREGATION: f64 = 200.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_bandwidth_scales_with_lanes() {
        assert_eq!(LinkKind::NvLink { lanes: 1 }.peak_bandwidth_gbs(), 20.0);
        assert_eq!(LinkKind::NvLink { lanes: 2 }.peak_bandwidth_gbs(), 40.0);
    }

    #[test]
    fn pcie_gen3_matches_paper_figure() {
        assert_eq!(LinkKind::PciE { gen: 3 }.peak_bandwidth_gbs(), 16.0);
        assert_eq!(LinkKind::PciE { gen: 2 }.peak_bandwidth_gbs(), 8.0);
        assert_eq!(LinkKind::PciE { gen: 1 }.peak_bandwidth_gbs(), 4.0);
    }

    #[test]
    fn p2p_break_classification() {
        assert!(LinkKind::InterSocket.breaks_p2p());
        assert!(LinkKind::Network.breaks_p2p());
        assert!(!LinkKind::NvLink { lanes: 2 }.breaks_p2p());
        assert!(!LinkKind::PciE { gen: 3 }.breaks_p2p());
        assert!(!LinkKind::Containment.breaks_p2p());
    }

    #[test]
    fn containment_never_bottlenecks() {
        assert!(LinkKind::Containment.peak_bandwidth_gbs().is_infinite());
    }

    #[test]
    fn level_weights_strictly_increase_with_level() {
        use level_weight::*;
        let ladder = [GPU, SWITCH, SOCKET, MACHINE, NETWORK];
        for w in ladder.windows(2) {
            assert!(w[0] < w[1], "level weights must increase: {ladder:?}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(LinkKind::NvLink { lanes: 2 }.to_string(), "NVLink x2");
        assert_eq!(LinkKind::PciE { gen: 3 }.to_string(), "PCIe gen3 x16");
    }
}
