//! Graphviz DOT export of the multi-level physical graph — Fig. 7 as an
//! artifact you can render.

use crate::graph::TopoGraph;
use crate::link::LinkKind;
use crate::node::NodeKind;
use std::fmt::Write;

/// Renders the graph in Graphviz DOT format. Vertex shapes encode levels
/// (network/machine/socket boxes, switch diamonds, GPU ellipses); edge
/// labels carry the qualitative weight, with NVLink edges drawn bold and
/// the inter-socket bus dashed.
pub fn to_dot(graph: &TopoGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{name}\" {{");
    let _ = writeln!(out, "  layout=dot; rankdir=TB; splines=true;");
    for (idx, kind) in graph.nodes() {
        let (shape, style) = match kind {
            NodeKind::Network => ("box", "filled,bold"),
            NodeKind::Machine(_) => ("box", "filled"),
            NodeKind::Socket(_) => ("box", "rounded,filled"),
            NodeKind::Switch { .. } => ("diamond", "filled"),
            NodeKind::Gpu(_) => ("ellipse", "filled"),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\" shape={} style=\"{}\"];",
            idx.0, kind, shape, style
        );
    }
    for (a, b, edge) in graph.edges() {
        let attrs = match edge.kind {
            LinkKind::NvLink { .. } => "penwidth=2.2",
            LinkKind::InterSocket => "style=dashed",
            LinkKind::Network => "style=dotted",
            LinkKind::PciE { .. } => "penwidth=1.2",
            LinkKind::Containment => "style=invis,constraint=true",
        };
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{}\" tooltip=\"{}\" {}];",
            a.0, b.0, edge.weight, edge.kind, attrs
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dgx1, power8_minsky};

    #[test]
    fn minsky_dot_contains_every_vertex_and_edge() {
        let m = power8_minsky();
        let dot = to_dot(m.graph(), "minsky");
        assert!(dot.starts_with("graph \"minsky\" {"));
        assert!(dot.trim_end().ends_with('}'));
        for label in ["M0", "S0", "S1", "GPU0", "GPU3"] {
            assert!(dot.contains(&format!("label=\"{label}\"")), "missing {label}");
        }
        // 9 edges → 9 `--` lines.
        assert_eq!(dot.matches(" -- ").count(), m.graph().edge_count());
        // NVLink edges are bold; the bus is dashed.
        assert!(dot.contains("penwidth=2.2"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn dgx1_dot_shows_switch_diamonds() {
        let d = dgx1();
        let dot = to_dot(d.graph(), "dgx-1");
        assert!(dot.contains("shape=diamond"));
        assert_eq!(dot.matches(" -- ").count(), d.graph().edge_count());
        // Weight labels present.
        assert!(dot.contains("label=\"10\""));
        assert!(dot.contains("label=\"20\""));
    }
}
