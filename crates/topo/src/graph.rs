//! General undirected weighted graph used for physical topologies.
//!
//! A small purpose-built adjacency-list graph: vertex payloads are
//! [`NodeKind`]s, edges carry a qualitative distance weight plus the
//! [`LinkKind`] of the physical interconnect they represent. The graph is
//! append-only (topologies are immutable once built), which lets queries hand
//! out indices that remain valid for the lifetime of the graph.

use crate::link::LinkKind;
use crate::node::NodeKind;
use serde::{Deserialize, Serialize};

/// Index of a vertex inside a [`TopoGraph`]. Plain `usize` newtype so it can
/// index vectors directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A half-edge stored in a vertex's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeRef {
    /// The vertex on the other end.
    pub to: NodeIdx,
    /// Qualitative distance weight (see [`crate::link::level_weight`]).
    pub weight: f64,
    /// The physical link this edge models.
    pub kind: LinkKind,
}

/// Undirected weighted multigraph over typed topology vertices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoGraph {
    nodes: Vec<NodeKind>,
    adjacency: Vec<Vec<EdgeRef>>,
    edge_count: usize,
}

impl TopoGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            adjacency: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with capacity for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(n),
            adjacency: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Adds a vertex and returns its index.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeIdx {
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.adjacency.push(Vec::new());
        idx
    }

    /// Adds an undirected edge between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds, if `a == b` (the topology
    /// has no self-loops) or if `weight` is not finite and positive.
    pub fn add_edge(&mut self, a: NodeIdx, b: NodeIdx, weight: f64, kind: LinkKind) {
        assert!(a.index() < self.nodes.len(), "edge endpoint {a:?} out of bounds");
        assert!(b.index() < self.nodes.len(), "edge endpoint {b:?} out of bounds");
        assert_ne!(a, b, "self-loops are not allowed in a physical topology");
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weight must be finite and positive, got {weight}"
        );
        self.adjacency[a.index()].push(EdgeRef { to: b, weight, kind });
        self.adjacency[b.index()].push(EdgeRef { to: a, weight, kind });
        self.edge_count += 1;
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The payload of vertex `idx`.
    #[inline]
    pub fn node(&self, idx: NodeIdx) -> NodeKind {
        self.nodes[idx.index()]
    }

    /// Adjacency list of vertex `idx`.
    #[inline]
    pub fn neighbors(&self, idx: NodeIdx) -> &[EdgeRef] {
        &self.adjacency[idx.index()]
    }

    /// Degree of vertex `idx`.
    #[inline]
    pub fn degree(&self, idx: NodeIdx) -> usize {
        self.adjacency[idx.index()].len()
    }

    /// Iterates over all vertices as `(index, kind)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIdx, NodeKind)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &k)| (NodeIdx(i as u32), k))
    }

    /// Iterates over every undirected edge exactly once as `(a, b, edge)`
    /// with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeIdx, NodeIdx, EdgeRef)> + '_ {
        self.adjacency.iter().enumerate().flat_map(move |(i, adj)| {
            let a = NodeIdx(i as u32);
            adj.iter()
                .filter(move |e| a < e.to)
                .map(move |&e| (a, e.to, e))
        })
    }

    /// Indices of all GPU leaf vertices, in insertion order.
    pub fn gpu_nodes(&self) -> Vec<NodeIdx> {
        self.nodes()
            .filter(|(_, k)| k.is_gpu())
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns true if an edge of any kind directly connects `a` and `b`.
    pub fn has_edge(&self, a: NodeIdx, b: NodeIdx) -> bool {
        self.adjacency[a.index()].iter().any(|e| e.to == b)
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_edge_weight(&self) -> f64 {
        self.edges().map(|(_, _, e)| e.weight).sum()
    }

    /// Checks the multi-level weight discipline of §4.1.2: for every edge,
    /// the weight must be no smaller than the weight of any edge strictly
    /// deeper in the hierarchy. Returns a description of the first violation.
    ///
    /// This is a structural lint used by tests and by the synthetic builders;
    /// the mapping algorithm itself only requires the weights to be positive.
    pub fn validate_level_weights(&self) -> Result<(), String> {
        // Collect min weight per level-pair depth: depth of an edge is the
        // minimum level of its endpoints (closer to root = smaller).
        let mut deepest_weight_at: Vec<(u8, f64)> = self
            .edges()
            .map(|(a, b, e)| {
                let depth = self.node(a).level().min(self.node(b).level());
                (depth, e.weight)
            })
            .collect();
        deepest_weight_at.sort_by_key(|x| x.0);
        // Max weight among deeper edges must not exceed min weight among
        // shallower edges.
        for (i, &(depth_i, w_i)) in deepest_weight_at.iter().enumerate() {
            for &(depth_j, w_j) in &deepest_weight_at[i + 1..] {
                if depth_j > depth_i && w_j > w_i {
                    return Err(format!(
                        "edge at depth {depth_j} has weight {w_j} > weight {w_i} of an edge at shallower depth {depth_i}"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for TopoGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GpuId, SocketId};
    use crate::link::level_weight;

    fn tiny() -> (TopoGraph, NodeIdx, NodeIdx, NodeIdx) {
        let mut g = TopoGraph::new();
        let s = g.add_node(NodeKind::Socket(SocketId(0)));
        let g0 = g.add_node(NodeKind::Gpu(GpuId(0)));
        let g1 = g.add_node(NodeKind::Gpu(GpuId(1)));
        g.add_edge(s, g0, level_weight::GPU, LinkKind::NvLink { lanes: 2 });
        g.add_edge(s, g1, level_weight::GPU, LinkKind::NvLink { lanes: 2 });
        g.add_edge(g0, g1, level_weight::GPU, LinkKind::NvLink { lanes: 2 });
        (g, s, g0, g1)
    }

    #[test]
    fn counts_and_degrees() {
        let (g, s, g0, g1) = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(s), 2);
        assert_eq!(g.degree(g0), 2);
        assert_eq!(g.degree(g1), 2);
    }

    #[test]
    fn edges_iterated_once_each() {
        let (g, ..) = tiny();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn gpu_nodes_found_in_order() {
        let (g, _, g0, g1) = tiny();
        assert_eq!(g.gpu_nodes(), vec![g0, g1]);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let (g, s, g0, g1) = tiny();
        assert!(g.has_edge(g0, g1));
        assert!(g.has_edge(g1, g0));
        assert!(g.has_edge(s, g0));
        assert!(!g.has_edge(s, s));
    }

    #[test]
    fn total_edge_weight_sums_once() {
        let (g, ..) = tiny();
        assert!((g.total_edge_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = TopoGraph::new();
        let n = g.add_node(NodeKind::Gpu(GpuId(0)));
        g.add_edge(n, n, 1.0, LinkKind::Containment);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_weight_panics() {
        let mut g = TopoGraph::new();
        let a = g.add_node(NodeKind::Gpu(GpuId(0)));
        let b = g.add_node(NodeKind::Gpu(GpuId(1)));
        g.add_edge(a, b, 0.0, LinkKind::Containment);
    }

    #[test]
    fn level_weight_validation_accepts_paper_weights() {
        let (g, ..) = tiny();
        assert!(g.validate_level_weights().is_ok());
    }

    #[test]
    fn level_weight_validation_rejects_inversions() {
        let mut g = TopoGraph::new();
        let net = g.add_node(NodeKind::Network);
        let m = g.add_node(NodeKind::Machine(crate::ids::MachineId(0)));
        let s = g.add_node(NodeKind::Socket(SocketId(0)));
        let gpu = g.add_node(NodeKind::Gpu(GpuId(0)));
        // Network edge lighter than the GPU edge: inversion.
        g.add_edge(net, m, 1.0, LinkKind::Network);
        g.add_edge(m, s, 20.0, LinkKind::Containment);
        g.add_edge(s, gpu, 50.0, LinkKind::NvLink { lanes: 2 });
        assert!(g.validate_level_weights().is_err());
    }
}
