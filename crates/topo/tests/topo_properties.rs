//! Property-based invariants of the topology substrate.

use gts_topo::{
    dgx1, power8_minsky, symmetric_machine, GpuId, LinkProfile, MachineTopology,
};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineTopology> {
    (1usize..=4, 1usize..=6, prop::bool::ANY).prop_map(|(sockets, gpus, nvlink)| {
        let profile = if nvlink {
            LinkProfile::nvlink_dual()
        } else {
            LinkProfile::pcie_gen3()
        };
        symmetric_machine("prop", sockets, gpus, profile)
    })
}

proptest! {
    #[test]
    fn distances_are_a_metric(m in arb_machine()) {
        let n = m.n_gpus();
        for i in 0..n {
            for j in 0..n {
                let a = GpuId(i as u32);
                let b = GpuId(j as u32);
                let d = m.distance(a, b);
                // Symmetry and identity.
                prop_assert_eq!(d, m.distance(b, a));
                if i == j {
                    prop_assert_eq!(d, 0.0);
                } else {
                    prop_assert!(d > 0.0);
                }
                // Triangle inequality (shortest paths are a metric, even
                // with the GPU-transit restriction, because the middle GPU
                // only weakens the bound).
                for k in 0..n {
                    let c = GpuId(k as u32);
                    prop_assert!(m.distance(a, b) <= m.distance(a, c) + m.distance(c, b) + 2.0);
                }
            }
        }
    }

    #[test]
    fn same_socket_is_never_farther_than_cross_socket(m in arb_machine()) {
        let n = m.n_gpus();
        let mut intra: f64 = 0.0;
        let mut cross = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let a = GpuId(i as u32);
                let b = GpuId(j as u32);
                let d = m.distance(a, b);
                if m.socket_of(a) == m.socket_of(b) {
                    intra = intra.max(d);
                } else {
                    cross = cross.min(d);
                }
            }
        }
        // Vacuously true when one of the classes is empty.
        prop_assert!(intra <= cross);
    }

    #[test]
    fn level_weights_validate(m in arb_machine()) {
        prop_assert!(m.graph().validate_level_weights().is_ok());
    }

    #[test]
    fn pairwise_cost_is_monotone_in_set_growth(m in arb_machine()) {
        let all: Vec<GpuId> = m.gpus().collect();
        for take in 1..=all.len() {
            let cost_small = m.pairwise_cost(&all[..take - 1]);
            let cost_big = m.pairwise_cost(&all[..take]);
            prop_assert!(cost_big >= cost_small);
        }
    }

    #[test]
    fn packed_sets_span_one_socket(m in arb_machine(), seed in 0usize..32) {
        let socket = gts_topo::SocketId((seed % m.n_sockets()) as u32);
        let set = m.gpus_in_socket(socket);
        prop_assert!(m.is_packed(&set));
        if !set.is_empty() {
            prop_assert_eq!(m.sockets_spanned(&set), 1);
        }
    }
}

#[test]
fn fixed_machines_are_metric_too() {
    for m in [power8_minsky(), dgx1()] {
        let n = m.n_gpus();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    m.distance(GpuId(i as u32), GpuId(j as u32)),
                    m.distance(GpuId(j as u32), GpuId(i as u32))
                );
            }
        }
    }
}
