//! Quality guarantees for the mapping engine, checked against brute force.
#![allow(clippy::needless_range_loop)] // symmetric matrix fills read clearer indexed

use gts_map::{drb_map, fm_bipartition, AffinityGraph, PlacementOracle, UtilityWeights};
use gts_job::JobGraph;
use gts_topo::{power8_minsky, symmetric_machine, GpuId, LinkProfile, MachineTopology};
use proptest::prelude::*;

/// Exhaustive minimum cut over all left-parts of exactly `target` vertices.
fn exhaustive_min_cut(g: &AffinityGraph, target: usize) -> f64 {
    let n = g.len();
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != target {
            continue;
        }
        let side: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        best = best.min(g.cut(&side));
    }
    best
}

struct IdleOracle<'a> {
    machine: &'a MachineTopology,
}

impl PlacementOracle for IdleOracle<'_> {
    fn distance(&self, a: GpuId, b: GpuId) -> f64 {
        self.machine.distance(a, b)
    }
    fn interference(&self, _: &[GpuId]) -> f64 {
        1.0
    }
    fn fragmentation_after(&self, _: &[GpuId]) -> f64 {
        0.5
    }
}

/// Exhaustive minimum Eq. 3 cost of any `k`-subset of the machine's GPUs.
fn exhaustive_min_eq3(machine: &MachineTopology, k: usize) -> f64 {
    let gpus: Vec<GpuId> = machine.gpus().collect();
    let n = gpus.len();
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let subset: Vec<GpuId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| gpus[i])
            .collect();
        best = best.min(machine.pairwise_cost(&subset));
    }
    best
}

#[test]
fn fm_is_optimal_on_machine_affinity_graphs() {
    // Structured topology graphs: FM must find the exact balanced min cut.
    for machine in [
        power8_minsky(),
        symmetric_machine("s23", 2, 3, LinkProfile::nvlink_dual()),
        symmetric_machine("s32", 3, 2, LinkProfile::nvlink_dual()),
        symmetric_machine("p22", 2, 2, LinkProfile::pcie_gen3()),
    ] {
        let gpus: Vec<GpuId> = machine.gpus().collect();
        let g = AffinityGraph::from_machine(&machine, &gpus);
        for target in 1..gpus.len() {
            let fm = fm_bipartition(&g, target, 4);
            let opt = exhaustive_min_cut(&g, target);
            assert!(
                fm.cut <= opt + 1e-9,
                "{}: target {target}: FM {} vs optimal {opt}",
                machine.name(),
                fm.cut
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn fm_is_near_optimal_on_random_graphs(seed in 0u64..10_000, n in 4usize..9) {
        // Random affinity graphs: FM is a heuristic, so allow slack — but it
        // must stay within 2× of the exhaustive optimum and produce exactly
        // balanced sides.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gpus: Vec<GpuId> = (0..n as u32).map(GpuId).collect();
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = rng.gen_range(1.0f64..50.0);
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }

        let g = AffinityGraph::from_distances(gpus, |i, j| dist[i][j]);
        let target = n / 2;
        let fm = fm_bipartition(&g, target, 4);
        prop_assert_eq!(fm.left().len(), target);
        let opt = exhaustive_min_cut(&g, target);
        prop_assert!(
            fm.cut <= 2.0 * opt + 1e-9,
            "FM {} vs optimal {} (seed {})", fm.cut, opt, seed
        );
        // And the reported cut is the real cut of the reported partition.
        prop_assert!((fm.cut - g.cut(&fm.side)).abs() < 1e-9);
    }

    #[test]
    fn drb_matches_the_exhaustive_eq3_optimum_on_idle_machines(
        sockets in 2usize..4, per_socket in 1usize..4, k in 1usize..7
    ) {
        let machine = symmetric_machine("q", sockets, per_socket, LinkProfile::nvlink_dual());
        let n = machine.n_gpus();
        prop_assume!(k <= n);
        let oracle = IdleOracle { machine: &machine };
        let job = JobGraph::uniform(k, 4.0);
        let all: Vec<GpuId> = machine.gpus().collect();
        let mapping = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        let cost = machine.pairwise_cost(&mapping);
        let opt = exhaustive_min_eq3(&machine, k);
        // On an idle symmetric machine with a uniform job, the DRB greedy
        // recursion should land on (or extremely near) the best subset.
        prop_assert!(
            cost <= opt * 1.05 + 1e-9,
            "DRB cost {cost} vs optimal {opt} for k={k} on {sockets}x{per_socket}"
        );
    }
}

#[test]
fn drb_is_optimal_for_every_job_size_on_minsky() {
    let machine = power8_minsky();
    let oracle = IdleOracle { machine: &machine };
    let all: Vec<GpuId> = machine.gpus().collect();
    for k in 1..=4usize {
        let job = JobGraph::uniform(k, 4.0);
        let mapping = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        let cost = machine.pairwise_cost(&mapping);
        let opt = exhaustive_min_eq3(&machine, k);
        assert!((cost - opt).abs() < 1e-9, "k={k}: {cost} vs {opt}");
    }
}

#[test]
fn drb_is_optimal_for_pipelines_on_minsky() {
    // Exhaustive over all 4! assignments of a 4-stage pipeline to the
    // 4 GPUs: DRB must match the minimum weighted Eq. 3 cost
    // (Σ w_ij · d(gpu_i, gpu_j)).
    let machine = power8_minsky();
    let oracle = IdleOracle { machine: &machine };
    let job = JobGraph::pipeline(4, 4.0);
    let all: Vec<GpuId> = machine.gpus().collect();
    let mapping = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();

    let weighted_cost = |m: &[GpuId]| -> f64 {
        job.edges()
            .map(|(i, j, w)| w * machine.distance(m[i], m[j]))
            .sum()
    };
    let got = weighted_cost(&mapping);

    // All permutations of 4 GPUs.
    let mut best = f64::INFINITY;
    let idx = [0u32, 1, 2, 3];
    for a in 0..4 {
        for b in 0..4 {
            for c in 0..4 {
                for d in 0..4 {
                    let perm = [idx[a], idx[b], idx[c], idx[d]];
                    let mut sorted = perm;
                    sorted.sort_unstable();
                    if sorted != [0, 1, 2, 3] {
                        continue;
                    }
                    let m: Vec<GpuId> = perm.iter().map(|&g| GpuId(g)).collect();
                    best = best.min(weighted_cost(&m));
                }
            }
        }
    }
    assert!((got - best).abs() < 1e-9, "DRB {got} vs optimal {best}");
}

#[test]
fn extra_fm_passes_never_worsen_the_cut() {
    for machine in [
        power8_minsky(),
        symmetric_machine("s44", 4, 4, LinkProfile::nvlink_dual()),
    ] {
        let gpus: Vec<GpuId> = machine.gpus().collect();
        let g = AffinityGraph::from_machine(&machine, &gpus);
        let mut prev = f64::INFINITY;
        for passes in [1usize, 2, 4, 8] {
            let cut = fm_bipartition(&g, gpus.len() / 2, passes).cut;
            assert!(cut <= prev + 1e-12, "{}: {passes} passes worsened the cut", machine.name());
            prev = cut;
        }
    }
}

#[test]
fn fm_regression_seed_1865() {
    // Found by proptest: single-start FM landed 2.17× off the optimum on
    // this graph; multi-start must stay within tolerance.
    use rand::{Rng, SeedableRng};
    let n = 6;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1865);
    let gpus: Vec<GpuId> = (0..n as u32).map(GpuId).collect();
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rng.gen_range(1.0f64..50.0);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    let g = AffinityGraph::from_distances(gpus, |i, j| dist[i][j]);
    let fm = fm_bipartition(&g, n / 2, 4);
    let opt = exhaustive_min_cut(&g, n / 2);
    assert!(fm.cut <= 2.0 * opt + 1e-9, "FM {} vs optimal {opt}", fm.cut);
}
