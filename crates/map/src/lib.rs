//! # gts-map — the paper's graph-mapping engine (§4.3, §4.4)
//!
//! The algorithmic core of the contribution:
//!
//! * [`affinity`] — turns a set of available GPUs into the affinity graph
//!   the partitioner consumes (affinity = inverse qualitative distance, so
//!   min-cut keeps close GPUs together);
//! * [`fm`] — the Fiduccia–Mattheyses linear-time min-cut bipartitioner \[15\]
//!   used by `physicalGraphBiPartition()`;
//! * [`drb`] — Algorithm 2, Hierarchical Static Mapping Dual Recursive
//!   Bi-Partitioning after Ercal et al. \[12\] / SCOTCH \[34\], driven by the
//!   utility-based job bipartition of Algorithm 3;
//! * [`mod@utility`] — Equations 1–5: objective, utility, communication cost,
//!   interference and fragmentation, plus the normalized per-job utility the
//!   postponement threshold compares against.
//!
//! The engine is pure: anything that needs live cluster state (running
//! jobs, free GPUs) reaches it through the [`drb::PlacementOracle`] trait,
//! implemented by `gts-sched`.

#![warn(missing_docs)]

pub mod affinity;
pub mod drb;
pub mod fm;
pub mod utility;

pub use affinity::AffinityGraph;
pub use drb::{drb_map, MappingError, PlacementOracle};
pub use fm::{fm_bipartition, fm_bipartition_with, Bipartition, FmScratch};
pub use utility::{
    eq3_comm_cost, eq4_interference, eq5_fragmentation, utility, UtilityComponents,
    UtilityWeights,
};
